"""Tests for the Warehouse facade: resolution, named sets, cube names."""

from __future__ import annotations

import pytest

from repro.errors import MdxEvaluationError, SchemaError
from repro.olap.cube import Cube
from repro.warehouse import NamedSet, Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(
        example.schema, example.cube, name="Warehouse", aliases={"WH"}
    )


class TestConstruction:
    def test_schema_mismatch_rejected(self, example, tiny_schema):
        rogue = Cube(tiny_schema)
        with pytest.raises(SchemaError):
            Warehouse(example.schema, rogue)

    def test_repr(self, warehouse):
        assert "Warehouse" in repr(warehouse)


class TestMemberResolution:
    def test_bare_member(self, warehouse):
        dim, member = warehouse.resolve_member(("Joe",))
        assert dim.name == "Organization"
        assert member.name == "Joe"

    def test_dimension_qualified(self, warehouse):
        dim, member = warehouse.resolve_member(("Organization", "FTE", "Joe"))
        assert member.name == "Joe"

    def test_dimension_name_alone_is_root(self, warehouse):
        dim, member = warehouse.resolve_member(("Organization",))
        assert member.is_root

    def test_hypothetical_parent_allowed(self, warehouse):
        # Organization.[PTE].[Joe]: Joe's skeleton parent is FTE, but PTE
        # exists, so the path is valid (instance filtering is the
        # evaluator's job).
        dim, member = warehouse.resolve_member(("Organization", "PTE", "Joe"))
        assert member.name == "Joe"

    def test_nonexistent_intermediate_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.resolve_member(("Organization", "Nowhere", "Joe"))

    def test_unknown_member_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.resolve_member(("Nobody",))

    def test_empty_path_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.resolve_member(())

    def test_ambiguity_reported_with_dimensions(self, example):
        example.location.add_member("Dup")
        example.organization.add_member("Dup", "FTE")
        warehouse = Warehouse(example.schema, example.cube)
        with pytest.raises(MdxEvaluationError, match="ambiguous"):
            warehouse.resolve_member(("Dup",))
        # Qualification resolves it.
        dim, _ = warehouse.resolve_member(("Location", "Dup"))
        assert dim.name == "Location"


class TestNamedSets:
    def test_define_and_fetch(self, warehouse):
        named = warehouse.define_named_set("Changers", ["Joe", "Lisa"])
        assert isinstance(named, NamedSet)
        assert warehouse.named_set("Changers").members == ("Joe", "Lisa")
        assert warehouse.named_sets() == [named]

    def test_unknown_member_in_set_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.define_named_set("Bad", ["Nope"])

    def test_redefinition_replaces(self, warehouse):
        warehouse.define_named_set("S", ["Joe"])
        warehouse.define_named_set("S", ["Lisa"])
        assert warehouse.named_set("S").members == ("Lisa",)

    def test_missing_set_is_none(self, warehouse):
        assert warehouse.named_set("Nope") is None


class TestCubeNames:
    def test_canonical_name_accepted(self, warehouse):
        warehouse.check_cube_name(("Warehouse",))

    def test_alias_accepted(self, warehouse):
        warehouse.check_cube_name(("WH",))
        warehouse.check_cube_name(("App", "WH"))

    def test_unknown_name_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.check_cube_name(("Another",))

    def test_empty_reference_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.check_cube_name(())

    def test_varying_accessor(self, warehouse, example):
        assert warehouse.varying("Organization") is example.org
