"""Tests for single-scan simultaneous aggregation vs brute force."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.array_cube import Axis, ChunkedCube
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.storage.cube_compute import (
    compute_group_bys,
    compute_group_bys_naive,
    full_array,
)
from repro.storage.lattice import all_group_bys


def brute_force(array: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    axes = tuple(a for a in range(array.ndim) if a not in dims)
    mask = ~np.isnan(array)
    sums = np.where(mask, array, 0.0).sum(axis=axes)
    counts = mask.sum(axis=axes)
    return np.where(counts > 0, sums, np.nan)


def load_array(array: np.ndarray, chunk_shape) -> ChunkStore:
    grid = ChunkGrid(array.shape, chunk_shape)
    store = ChunkStore(grid)
    for coord in grid.iter_chunks(grid.default_order()):
        region = tuple(
            slice(o, o + e)
            for o, e in zip(grid.chunk_origin(coord), grid.chunk_extent(coord))
        )
        data = array[region]
        if not np.isnan(data).all():
            store.load(coord, data.copy())
    return store


class TestComputeGroupBys:
    def test_matches_brute_force_all_group_bys(self):
        rng = np.random.default_rng(7)
        array = rng.normal(size=(6, 5, 4))
        array[rng.random(array.shape) < 0.3] = np.nan
        store = load_array(array, (2, 3, 2))
        results = compute_group_bys(store, all_group_bys(3))
        for dims, result in results.items():
            expected = brute_force(array, dims)
            np.testing.assert_allclose(result.data, expected, equal_nan=True)

    def test_empty_regions_stay_missing(self):
        array = np.full((4, 4), np.nan)
        array[0, 0] = 5.0
        store = load_array(array, (2, 2))
        result = compute_group_bys(store, [(0,)])[(0,)]
        assert result.data[0] == 5.0
        assert np.isnan(result.data[2])

    def test_sparse_chunks_not_read(self):
        array = np.full((4, 4), np.nan)
        array[0, 0] = 1.0
        store = load_array(array, (2, 2))
        compute_group_bys(store, [(0, 1)])
        assert store.stats.chunk_reads == 1

    def test_shared_scan_reads_each_chunk_once(self):
        rng = np.random.default_rng(3)
        array = rng.normal(size=(4, 4))
        store = load_array(array, (2, 2))
        compute_group_bys(store, all_group_bys(2))
        assert store.stats.chunk_reads == 4

    def test_naive_rescans_per_group_by(self):
        rng = np.random.default_rng(3)
        array = rng.normal(size=(4, 4))
        store = load_array(array, (2, 2))
        results = compute_group_bys_naive(store, all_group_bys(2))
        assert store.stats.chunk_reads == 4 * len(results)
        for dims, result in results.items():
            np.testing.assert_allclose(
                result.data, brute_force(array, dims), equal_nan=True
            )

    def test_apex_group_by(self):
        array = np.arange(16, dtype=float).reshape(4, 4)
        store = load_array(array, (2, 2))
        result = compute_group_bys(store, [()])[()]
        assert result.data == pytest.approx(array.sum())

    def test_memory_cells_reported(self):
        array = np.ones((4, 4))
        store = load_array(array, (2, 2))
        result = compute_group_bys(store, [(0,)], order=(0, 1))[(0,)]
        # retained dim 0 faster than aggregated dim 1 -> full extent 4
        assert result.memory_cells == 4

    def test_scan_order_does_not_change_results(self):
        rng = np.random.default_rng(11)
        array = rng.normal(size=(4, 6))
        store = load_array(array, (2, 2))
        a = compute_group_bys(store, [(0,), (1,)], order=(0, 1))
        b = compute_group_bys(store, [(0,), (1,)], order=(1, 0))
        for dims in a:
            np.testing.assert_allclose(a[dims].data, b[dims].data, equal_nan=True)

    def test_full_array_round_trip(self):
        rng = np.random.default_rng(5)
        array = rng.normal(size=(5, 3))
        array[0, 0] = np.nan
        store = load_array(array, (2, 2))
        np.testing.assert_allclose(full_array(store), array, equal_nan=True)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6)
    ),
    chunk=st.tuples(
        st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4)
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_chunked_equals_brute_force(shape, chunk, seed):
    rng = np.random.default_rng(seed)
    array = rng.normal(size=shape)
    array[rng.random(shape) < 0.4] = np.nan
    store = load_array(array, chunk)
    results = compute_group_bys(store, all_group_bys(2))
    for dims, result in results.items():
        np.testing.assert_allclose(
            result.data, brute_force(array, dims), equal_nan=True
        )


class TestChunkedCube:
    def test_build_and_read_by_labels(self):
        axes = [Axis("Product", ["p1", "p2", "p3"]), Axis("Time", ["Jan", "Feb"])]
        cube = ChunkedCube.build(
            axes,
            [(("p1", "Jan"), 10.0), (("p3", "Feb"), 7.0)],
            chunk_shape=(2, 2),
        )
        assert cube.value(("p1", "Jan")) == 10.0
        assert cube.value(("p3", "Feb")) == 7.0
        assert np.isnan(cube.value(("p2", "Jan")))

    def test_reads_count_io(self):
        axes = [Axis("Product", ["p1", "p2"]), Axis("Time", ["Jan", "Feb"])]
        cube = ChunkedCube.build(axes, [(("p1", "Jan"), 1.0)], chunk_shape=(1, 1))
        cube.value(("p1", "Jan"))
        assert cube.store.stats.chunk_reads == 1
        cube.peek_at((0, 0))
        assert cube.store.stats.chunk_reads == 1

    def test_axis_lookup(self):
        axes = [Axis("A", ["x"]), Axis("B", ["y"])]
        cube = ChunkedCube.build(axes, [], chunk_shape=(1, 1))
        assert cube.axis("B").labels == ("y",)
        assert cube.axis_position("B") == 1
        with pytest.raises(Exception):
            cube.axis("C")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(Exception):
            Axis("A", ["x", "x"])

    def test_from_semantic_cube_matches_values(self, example):
        chunked = ChunkedCube.from_cube(example.cube)
        org_axis = chunked.axis("Organization")
        assert "Organization/FTE/Joe" in org_axis
        value = chunked.value(
            ("Organization/Contractor/Joe", "NY", "Mar", "Salary")
        )
        assert value == 30.0

    def test_from_semantic_cube_time_axis_ordered(self, example):
        chunked = ChunkedCube.from_cube(example.cube)
        labels = chunked.axis("Time").labels
        assert labels.index("Jan") < labels.index("Feb") < labels.index("Jun")
