"""Tests for memory requirements and the MMST (Fig. 6 golden numbers)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.chunks import ChunkGrid
from repro.storage.lattice import all_group_bys, direct_children, direct_parents
from repro.storage.mmst import build_mmst, memory_requirement


@pytest.fixture
def fig6_grid() -> ChunkGrid:
    return ChunkGrid([16, 16, 16], [4, 4, 4])


# A group-by over two of the three dimensions has 4x4-cell plane chunks;
# the base cuboid's chunks are 4x4x4.  The paper counts memory in chunks of
# the group-by's own plane: BC needs 1 such chunk, AC needs 4, AB needs 16.
PLANE_CHUNK_CELLS = 16  # 4*4
BASE_CHUNK_CELLS = 64  # 4*4*4


class TestLattice:
    def test_all_group_bys_count(self):
        assert len(all_group_bys(3)) == 8
        assert len(all_group_bys(3, include_base=False)) == 7

    def test_parents_and_children(self):
        node = frozenset({0})
        assert set(direct_parents(node, 3)) == {
            frozenset({0, 1}),
            frozenset({0, 2}),
        }
        assert list(direct_children(frozenset({0, 1}))) == [
            frozenset({1}),
            frozenset({0}),
        ]


class TestMemoryRequirement:
    """The paper's walkthrough of Fig. 6 under scan order ABC (A fastest)."""

    ORDER = (0, 1, 2)

    def test_bc_needs_one_chunk(self, fig6_grid):
        assert (
            memory_requirement(fig6_grid, frozenset({1, 2}), self.ORDER)
            == PLANE_CHUNK_CELLS
        )

    def test_ac_needs_four_chunks(self, fig6_grid):
        assert (
            memory_requirement(fig6_grid, frozenset({0, 2}), self.ORDER)
            == 4 * PLANE_CHUNK_CELLS
        )

    def test_ab_needs_sixteen_chunks(self, fig6_grid):
        assert (
            memory_requirement(fig6_grid, frozenset({0, 1}), self.ORDER)
            == 16 * PLANE_CHUNK_CELLS
        )

    def test_base_streams_one_chunk(self, fig6_grid):
        assert (
            memory_requirement(fig6_grid, frozenset({0, 1, 2}), self.ORDER)
            == BASE_CHUNK_CELLS
        )

    def test_apex_needs_one_cell(self, fig6_grid):
        assert memory_requirement(fig6_grid, frozenset(), self.ORDER) == 1

    def test_single_dim_group_bys(self, fig6_grid):
        # A: aggregated {B, C}, slowest aggregated = C; A before C -> full 16.
        assert memory_requirement(fig6_grid, frozenset({0}), self.ORDER) == 16
        # C: aggregated {A, B}, slowest = B; C after B -> one chunk edge 4.
        assert memory_requirement(fig6_grid, frozenset({2}), self.ORDER) == 4

    def test_cardinality_order_reduces_memory(self):
        """Zhao's heuristic: scanning small dimensions first costs less."""
        grid = ChunkGrid([32, 8], [4, 4])
        big_first = sum(
            memory_requirement(grid, g, (0, 1))
            for g in all_group_bys(2, include_base=False)
        )
        small_first = sum(
            memory_requirement(grid, g, (1, 0))
            for g in all_group_bys(2, include_base=False)
        )
        assert small_first <= big_first

    def test_bad_order_rejected(self, fig6_grid):
        with pytest.raises(StorageError):
            memory_requirement(fig6_grid, frozenset({0}), (0, 0, 1))


class TestMmst:
    def test_tree_covers_all_non_base_nodes(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        assert set(tree.parent) == set(all_group_bys(3, include_base=False))

    def test_parents_are_direct_supersets(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        for node, parent in tree.parent.items():
            assert node < parent
            assert len(parent) == len(node) + 1

    def test_total_memory_positive(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        assert tree.total_memory > 0
        assert tree.requirement[frozenset({1, 2})] == PLANE_CHUNK_CELLS

    def test_single_pass_when_budget_sufficient(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        passes = tree.passes(tree.total_memory)
        assert len(passes) == 1

    def test_multiple_passes_under_tight_budget(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        biggest = max(tree.requirement.values())
        passes = tree.passes(biggest)
        assert len(passes) > 1
        for batch in passes:
            assert sum(tree.requirement[g] for g in batch) <= biggest

    def test_oversized_group_by_rejected(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        with pytest.raises(StorageError):
            tree.passes(1)

    def test_children_of(self, fig6_grid):
        tree = build_mmst(fig6_grid)
        base = frozenset({0, 1, 2})
        children = tree.children_of(base)
        assert all(len(c) == 2 for c in children)
        assert len(children) == 3
