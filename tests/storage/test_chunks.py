"""Tests for ChunkGrid geometry and scan orders."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.chunks import ChunkGrid


@pytest.fixture
def grid_4x4x4() -> ChunkGrid:
    """Fig. 6's geometry: 3 dimensions, 4 chunks each (chunk edge 4)."""
    return ChunkGrid([16, 16, 16], [4, 4, 4])


class TestGeometry:
    def test_chunk_counts(self, grid_4x4x4):
        assert grid_4x4x4.chunks_per_dim == (4, 4, 4)
        assert grid_4x4x4.n_chunks == 64
        assert grid_4x4x4.n_cells == 16**3

    def test_uneven_edge_chunks(self):
        grid = ChunkGrid([10], [4])
        assert grid.chunks_per_dim == (3,)
        assert grid.chunk_extent((2,)) == (2,)

    def test_chunk_of_cell(self, grid_4x4x4):
        assert grid_4x4x4.chunk_of_cell((0, 0, 0)) == (0, 0, 0)
        assert grid_4x4x4.chunk_of_cell((5, 11, 15)) == (1, 2, 3)

    def test_chunk_origin(self, grid_4x4x4):
        assert grid_4x4x4.chunk_origin((1, 2, 3)) == (4, 8, 12)

    def test_empty_chunk_is_all_nan(self, grid_4x4x4):
        import numpy as np

        chunk = grid_4x4x4.empty_chunk((0, 0, 0))
        assert chunk.data.shape == (4, 4, 4)
        assert np.isnan(chunk.data).all()

    def test_validation(self, grid_4x4x4):
        with pytest.raises(StorageError):
            grid_4x4x4.chunk_of_cell((0, 0))
        with pytest.raises(StorageError):
            grid_4x4x4.chunk_of_cell((16, 0, 0))
        with pytest.raises(StorageError):
            grid_4x4x4.chunk_origin((4, 0, 0))
        with pytest.raises(StorageError):
            ChunkGrid([0], [1])
        with pytest.raises(StorageError):
            ChunkGrid([4], [1, 1])
        with pytest.raises(StorageError):
            ChunkGrid([], [])


class TestScanOrder:
    def test_first_dimension_varies_fastest(self):
        grid = ChunkGrid([4, 4], [2, 2])  # 2x2 chunks
        order_ab = list(grid.iter_chunks((0, 1)))
        assert order_ab == [(0, 0), (1, 0), (0, 1), (1, 1)]
        order_ba = list(grid.iter_chunks((1, 0)))
        assert order_ba == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_linear_index_matches_iteration(self, grid_4x4x4):
        order = (0, 1, 2)
        for expected, coord in enumerate(grid_4x4x4.iter_chunks(order)):
            assert grid_4x4x4.linear_index(coord, order) == expected

    def test_fig6_numbering(self, grid_4x4x4):
        """Fig. 6 numbers chunks 1..64 in order ABC with A fastest: chunk 1
        is (a0,b0,c0), chunk 4 is (a3,b0,c0), chunk 5 is (a0,b1,c0)."""
        order = (0, 1, 2)
        assert grid_4x4x4.linear_index((0, 0, 0), order) == 0
        assert grid_4x4x4.linear_index((3, 0, 0), order) == 3
        assert grid_4x4x4.linear_index((0, 1, 0), order) == 4
        assert grid_4x4x4.linear_index((0, 0, 1), order) == 16
        assert grid_4x4x4.linear_index((3, 3, 3), order) == 63

    def test_bad_order_rejected(self, grid_4x4x4):
        with pytest.raises(StorageError):
            list(grid_4x4x4.iter_chunks((0, 0, 1)))
        with pytest.raises(StorageError):
            grid_4x4x4.linear_index((0, 0, 0), (0, 1))

    def test_default_order_ascending_cardinality(self):
        grid = ChunkGrid([8, 2, 4], [1, 1, 1])
        assert grid.default_order() == (1, 2, 0)
