"""Tests for the simulated chunk store: I/O accounting, layout, padding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.chunk_store import ChunkStore, ResidencyTracker
from repro.storage.chunks import ChunkGrid
from repro.storage.io_stats import IoCostModel, IoStats


def make_store(**model_kwargs) -> ChunkStore:
    grid = ChunkGrid([4, 4], [2, 2])
    store = ChunkStore(grid, IoCostModel(**model_kwargs))
    for i, coord in enumerate(grid.iter_chunks((0, 1))):
        store.load(coord, np.full((2, 2), float(i)))
    return store


class TestLoadRead:
    def test_round_trip(self):
        store = make_store()
        assert store.read((0, 0))[0, 0] == 0.0
        assert store.read((1, 1))[0, 0] == 3.0

    def test_missing_chunk_reads_as_nan_without_io(self):
        grid = ChunkGrid([4], [2])
        store = ChunkStore(grid)
        data = store.read((1,))
        assert np.isnan(data).all()
        assert store.stats.chunk_reads == 0

    def test_wrong_shape_rejected(self):
        grid = ChunkGrid([4], [2])
        store = ChunkStore(grid)
        with pytest.raises(StorageError):
            store.load((0,), np.zeros((3,)))

    def test_peek_does_not_count(self):
        store = make_store()
        store.peek((0, 0))
        assert store.stats.chunk_reads == 0

    def test_read_chunk_carries_origin(self):
        store = make_store()
        chunk = store.read_chunk((1, 0))
        assert chunk.origin == (2, 0)
        assert chunk.cell_slices() == (slice(2, 4), slice(0, 2))

    def test_write_counts(self):
        store = make_store()
        grid = store.grid
        store.write((0, 0), np.zeros((2, 2)))
        assert store.stats.chunk_writes == 1


class TestIoAccounting:
    def test_sequential_reads_have_no_seek(self):
        store = make_store(read_ms=1.0)
        for coord in store.grid.iter_chunks((0, 1)):
            store.read(coord)
        assert store.stats.chunk_reads == 4
        assert store.stats.simulated_ms == pytest.approx(4.0)

    def test_jump_reads_cost_seeks(self):
        store = make_store(read_ms=1.0, seek_ms_per_chunk=0.5, seek_cap_ms=100.0)
        store.read((0, 0))  # position 0
        store.read((1, 1))  # position 3: gap 3 -> seek 1.5
        assert store.stats.seek_distance == 3
        assert store.stats.simulated_ms == pytest.approx(2.0 + 1.5)

    def test_seek_cost_is_capped(self):
        model = IoCostModel(seek_ms_per_chunk=1.0, seek_cap_ms=2.5)
        assert model.seek_cost(100) == 2.5
        assert model.seek_cost(2) == 2.0
        assert model.seek_cost(1) == 0.0

    def test_reset_stats(self):
        store = make_store()
        store.read((0, 0))
        store.reset_stats()
        assert store.stats.chunk_reads == 0
        assert store.stats.simulated_ms == 0.0

    def test_snapshot(self):
        stats = IoStats()
        stats.record_read(0, IoCostModel())
        snap = stats.snapshot()
        assert snap["chunk_reads"] == 1


class TestLayout:
    def test_positions_follow_load_order(self):
        store = make_store()
        assert store.position_of((0, 0)) == 0
        assert store.position_of((1, 1)) == 3
        assert store.file_extent == 4

    def test_assign_layout_reorders(self):
        store = make_store()
        store.assign_layout((1, 0))
        # (1,0) order: (0,0),(0,1),(1,0),(1,1)
        assert store.position_of((0, 1)) == 1
        assert store.position_of((1, 0)) == 2

    def test_insert_padding_shifts_later_chunks(self):
        store = make_store()
        p_before = store.position_of((1, 1))
        store.insert_padding(after_position=0, count=10)
        assert store.position_of((0, 0)) == 0
        assert store.position_of((1, 1)) == p_before + 10
        assert store.file_extent == 14

    def test_padding_increases_seek_cost(self):
        store = make_store(read_ms=0.0, seek_ms_per_chunk=1.0, seek_cap_ms=1e9)
        store.read((0, 0))
        store.read((0, 1))
        base_seek = store.stats.seek_distance
        store.reset_stats()
        store.insert_padding(after_position=0, count=100)
        store.read((0, 0))
        store.read((0, 1))
        assert store.stats.seek_distance == base_seek + 100

    def test_negative_padding_rejected(self):
        with pytest.raises(StorageError):
            make_store().insert_padding(0, -1)

    def test_position_of_missing_chunk(self):
        grid = ChunkGrid([4], [2])
        with pytest.raises(StorageError):
            ChunkStore(grid).position_of((0,))


class TestResidencyTracker:
    def test_high_water(self):
        tracker = ResidencyTracker()
        tracker.acquire((0,))
        tracker.acquire((1,))
        tracker.release((0,))
        tracker.acquire((2,))
        assert tracker.high_water == 2
        assert tracker.resident_count == 2
        assert tracker.resident == frozenset({(1,), (2,)})

    def test_reset(self):
        tracker = ResidencyTracker()
        tracker.acquire((0,))
        tracker.reset()
        assert tracker.high_water == 0
        assert tracker.resident_count == 0

    def test_double_acquire_idempotent(self):
        tracker = ResidencyTracker()
        tracker.acquire((0,))
        tracker.acquire((0,))
        assert tracker.high_water == 1
