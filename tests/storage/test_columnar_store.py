"""Unit tests for the columnar plane primitives and the leaf store.

These pin the low-level contracts the rollup kernel builds on: liveness
is a bitmap (NaN is a legitimate live value, never a sentinel), the
dense<->sparse re-encodings are lossless, gathers cross chunk boundaries
correctly, and ``fork`` shares planes copy-on-write in both directions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.compression import (
    SPARSE_DENSITY_CEILING,
    compress_plane,
    decompress_plane,
)
from repro.storage.chunks import DensePlane, SparsePlane
from repro.storage.array_cube import ColumnarLeafStore


class TestDensePlane:
    def test_set_get_delete(self):
        plane = DensePlane.empty(8)
        assert plane.get(3) is None
        plane.set(3, 1.5)
        assert plane.get(3) == 1.5
        assert plane.n_live == 1
        plane.delete(3)
        assert plane.get(3) is None
        assert plane.n_live == 0

    def test_nan_is_a_live_value(self):
        plane = DensePlane.empty(4)
        plane.set(0, math.nan)
        got = plane.get(0)
        assert got is not None and math.isnan(got)
        assert plane.n_live == 1

    def test_gather_live_slots_order_preserved(self):
        # gather's contract: callers pass live slots only (the kernel's
        # scope masks guarantee it); values come back in slot order
        plane = DensePlane.empty(8)
        for i, v in [(1, 10.0), (4, 40.0), (6, 60.0)]:
            plane.set(i, v)
        out = plane.gather(np.array([1, 4, 6], dtype=np.int64))
        assert out.tolist() == [10.0, 40.0, 60.0]

    def test_sparse_roundtrip_lossless(self):
        plane = DensePlane.empty(16)
        plane.set(2, -1.0)
        plane.set(9, math.nan)
        plane.set(15, 0.0)
        sparse = plane.to_sparse()
        assert sparse.kind == "sparse"
        back = sparse.to_dense()
        assert back.n_live == plane.n_live
        for row in range(16):
            a, b = plane.get(row), back.get(row)
            if a is None:
                assert b is None
            elif math.isnan(a):
                assert b is not None and math.isnan(b)
            else:
                assert a == b


def _empty_sparse(capacity: int) -> SparsePlane:
    return SparsePlane(
        np.empty(0, dtype=np.int32), np.empty(0, dtype=np.float64), capacity
    )


class TestSparsePlane:
    def test_set_insert_update_delete(self):
        plane = _empty_sparse(8)
        plane.set(5, 5.0)
        plane.set(1, 1.0)
        plane.set(5, 55.0)  # update in place, no duplicate row
        assert plane.rows.tolist() == [1, 5]
        assert plane.get(5) == 55.0
        plane.delete(1)
        assert plane.get(1) is None
        assert plane.n_live == 1

    def test_gather_live_slots(self):
        plane = _empty_sparse(16)
        for i in (3, 7, 11):
            plane.set(i, float(i))
        out = plane.gather(np.array([3, 11], dtype=np.int64))
        assert out.tolist() == [3.0, 11.0]


class TestCompression:
    def test_ceiling_rule(self):
        low = DensePlane.empty(100)
        low.set(0, 1.0)  # density 0.01 <= ceiling
        assert compress_plane(low).kind == "sparse"

        high = DensePlane.empty(4)
        for i in range(4):
            high.set(i, float(i))
        assert compress_plane(high) is high  # density 1.0 stays dense
        assert SPARSE_DENSITY_CEILING == 0.25

    def test_decompress_inverts(self):
        plane = DensePlane.empty(10)
        plane.set(2, 2.0)
        sparse = compress_plane(plane, ceiling=1.0)
        dense = decompress_plane(sparse)
        assert dense.kind == "dense"
        assert dense.get(2) == 2.0 and dense.n_live == 1


class TestColumnarLeafStore:
    def _store(self, n: int = 7) -> ColumnarLeafStore:
        store = ColumnarLeafStore(plane_size=2)
        for i in range(n):
            assert store.append(float(i)) == i
        return store

    def test_append_assigns_consecutive_rows_across_planes(self):
        store = self._store(7)
        assert store.n_rows == 7
        assert store.n_planes == 4  # ceil(7 / 2)
        assert [store.get(i) for i in range(7)] == [float(i) for i in range(7)]

    def test_gather_crosses_chunk_boundaries(self):
        store = self._store(7)
        store.delete(4)
        rows = np.array([0, 1, 3, 6], dtype=np.int64)  # live rows only
        assert store.gather(rows).tolist() == [0.0, 1.0, 3.0, 6.0]

    def test_compact_seals_only_leading_planes(self):
        store = self._store(5)  # planes: [0,1] [2,3] [4,_]
        converted = store.compact(ceiling=1.0)
        assert converted == 2
        assert store.plane_kinds() == ["sparse", "sparse", "dense"]
        # values intact through the re-encode
        assert [store.get(i) for i in range(5)] == [float(i) for i in range(5)]

    def test_append_inflates_sparse_trailing_plane(self):
        store = ColumnarLeafStore(plane_size=4)
        store.append(0.0)
        store._planes[0] = store._planes[0].to_sparse()
        row = store.append(1.0)
        assert row == 1
        assert store._planes[0].kind == "dense"
        assert store.get(0) == 0.0 and store.get(1) == 1.0

    def test_fork_shares_planes_until_either_side_writes(self):
        store = self._store(6)
        fork = store.fork()
        assert all(
            a is b for a, b in zip(store._planes, fork._planes)
        )
        store.update(0, 100.0)  # parent write copies only chunk 0
        assert store._planes[0] is not fork._planes[0]
        assert store._planes[1] is fork._planes[1]
        assert fork.get(0) == 0.0 and store.get(0) == 100.0

        fork.update(3, 300.0)  # child write copies only chunk 1
        assert store._planes[1] is not fork._planes[1]
        assert store._planes[2] is fork._planes[2]
        assert store.get(3) == 3.0 and fork.get(3) == 300.0

    def test_delete_is_idempotent(self):
        store = self._store(3)
        store.delete(1)
        store.delete(1)
        assert store.n_live == 2
        assert store.get(1) is None

    def test_n_live_tracks_deletes(self):
        store = self._store(4)
        assert store.n_live == 4
        store.delete(2)
        store.delete(3)
        assert store.n_live == 2
        assert store.n_rows == 4  # rows are never reused
