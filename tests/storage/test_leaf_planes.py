"""Columnar-plane leaf sourcing: bit-identity against the dict paths.

Covers the three places leaf values are now served from the rollup
index's columnar planes instead of the semantic dict:

* :meth:`ChunkedCube.from_cube` (``use_planes`` gather vs dict fallback),
* :func:`compute_group_bys_from_cube` (shared-scan over a plane-sourced
  physical image),
* the batch evaluator's leaf point reads
  (:meth:`RollupIndex.leaf_reader`).
"""

from __future__ import annotations

import numpy as np

from repro.olap.missing import MISSING, is_missing
from repro.storage.array_cube import ChunkedCube
from repro.storage.cube_compute import (
    compute_group_bys,
    compute_group_bys_from_cube,
)
from repro.storage.lattice import all_group_bys


def _chunks(cube: ChunkedCube) -> dict:
    return {
        coord: cube.store.peek(coord) for coord in cube.store.stored_chunks()
    }


class TestFromCubePlanes:
    def test_plane_and_dict_builds_are_bit_identical(self, example):
        example.cube.rollup_index()  # make sure the planes exist
        via_planes = ChunkedCube.from_cube(example.cube, use_planes=True)
        via_dict = ChunkedCube.from_cube(example.cube, use_planes=False)
        assert [a.name for a in via_planes.axes] == [
            a.name for a in via_dict.axes
        ]
        assert [a.labels for a in via_planes.axes] == [
            a.labels for a in via_dict.axes
        ]
        plane_chunks = _chunks(via_planes)
        dict_chunks = _chunks(via_dict)
        assert sorted(plane_chunks) == sorted(dict_chunks)
        for coord, data in plane_chunks.items():
            np.testing.assert_array_equal(data, dict_chunks[coord])

    def test_plane_build_without_prebuilt_index(self, example):
        # from_cube may build the index itself; values must still match
        # the semantic dict cell for cell.
        image = ChunkedCube.from_cube(example.cube)
        for address, value in example.cube.leaf_cells():
            assert image.value(address) == value


class TestComputeGroupBysFromCube:
    def test_matches_dict_sourced_shared_scan(self, example):
        group_bys = all_group_bys(example.cube.schema.n_dims)
        results, image = compute_group_bys_from_cube(example.cube, group_bys)
        baseline_image = ChunkedCube.from_cube(example.cube, use_planes=False)
        baseline = compute_group_bys(baseline_image.store, group_bys)
        assert sorted(results) == sorted(baseline)
        for dims, result in results.items():
            np.testing.assert_array_equal(result.data, baseline[dims].data)

    def test_returns_reusable_physical_image(self, example):
        _, image = compute_group_bys_from_cube(example.cube, [(0,)])
        assert isinstance(image, ChunkedCube)
        for address, value in example.cube.leaf_cells():
            assert image.value(address) == value


class TestBatchLeafReads:
    QUERY = (
        "SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS, "
        "{[Organization].Members} ON ROWS "
        "FROM Warehouse WHERE ([NY], [Salary])"
    )

    def test_leaf_reader_mirrors_the_semantic_dict(self, example):
        cube = example.cube
        reader = cube.rollup_index().leaf_reader(cube._leaf_cells)
        assert reader is not None
        for address, value in cube.leaf_cells():
            assert reader(address) == value
        missing = ("Organization/FTE/Joe", "NY", "Jan", "Benefits")
        if missing not in cube._leaf_cells:
            assert reader(missing) is None

    def test_grid_identical_with_and_without_index(self, example):
        from repro.warehouse import Warehouse

        warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
        before = warehouse.query(self.QUERY)
        example.cube.rollup_index()
        assert example.cube.has_rollup_index
        after = warehouse.query(self.QUERY)
        assert after.rows == before.rows
        assert repr(after.cells) == repr(before.cells)
        assert any(
            not is_missing(v) and v is not MISSING
            for row in after.cells
            for v in row
        )
