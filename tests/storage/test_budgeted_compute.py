"""Tests for multi-pass group-by computation under a memory budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.storage.cube_compute import (
    compute_group_bys,
    compute_group_bys_budgeted,
)
from repro.storage.lattice import all_group_bys


@pytest.fixture
def store() -> ChunkStore:
    rng = np.random.default_rng(1)
    array = rng.normal(size=(8, 8, 8))
    array[rng.random(array.shape) < 0.2] = np.nan
    grid = ChunkGrid(array.shape, (2, 2, 2))
    store = ChunkStore(grid)
    for coord in grid.iter_chunks(grid.default_order()):
        region = tuple(
            slice(o, o + e)
            for o, e in zip(grid.chunk_origin(coord), grid.chunk_extent(coord))
        )
        store.load(coord, array[region].copy())
    return store


class TestBudgetedCompute:
    def test_results_match_single_pass(self, store):
        group_bys = all_group_bys(3)
        single = compute_group_bys(store, group_bys)
        budgeted, _ = compute_group_bys_budgeted(store, group_bys, 80)
        assert set(single) == set(budgeted)
        for dims in single:
            np.testing.assert_allclose(
                single[dims].data, budgeted[dims].data, equal_nan=True
            )

    def test_tight_budget_needs_multiple_passes(self, store):
        _, n_passes = compute_group_bys_budgeted(store, all_group_bys(3), 80)
        assert n_passes > 1

    def test_generous_budget_single_pass(self, store):
        _, n_passes = compute_group_bys_budgeted(
            store, all_group_bys(3), 10_000_000
        )
        assert n_passes == 1

    def test_passes_multiply_chunk_reads(self, store):
        group_bys = all_group_bys(3)
        store.reset_stats()
        compute_group_bys(store, group_bys)
        single_reads = store.stats.chunk_reads
        store.reset_stats()
        _, n_passes = compute_group_bys_budgeted(store, group_bys, 80)
        assert store.stats.chunk_reads == n_passes * single_reads

    def test_impossible_budget_rejected(self, store):
        with pytest.raises(StorageError):
            compute_group_bys_budgeted(store, all_group_bys(3), 1)

    def test_subset_of_group_bys(self, store):
        wanted = [(0,), (1, 2)]
        results, _ = compute_group_bys_budgeted(store, wanted, 10_000)
        assert set(results) == {(0,), (1, 2)}
