"""Shared fixtures: the paper's running example and small helper builders."""

from __future__ import annotations

import pytest

from repro.faults import FAULTS
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.schema import CubeSchema
from repro.workload.running_example import RunningExample, build_running_example


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No armed failpoint may leak from one test into the next."""
    FAULTS.clear()
    yield
    FAULTS.clear()


@pytest.fixture
def example() -> RunningExample:
    """A freshly built Fig. 1/2 running-example warehouse."""
    return build_running_example()


@pytest.fixture
def tiny_schema() -> CubeSchema:
    """A minimal 2-dimension schema (ordered Time x Measures)."""
    time = Dimension("Time", ordered=True)
    time.add_member("H1")
    time.add_children("H1", ["Jan", "Feb", "Mar"])
    time.add_member("H2")
    time.add_children("H2", ["Apr", "May", "Jun"])
    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Sales", "COGS"])
    return CubeSchema([time, measures])


@pytest.fixture
def tiny_cube(tiny_schema: CubeSchema) -> Cube:
    cube = Cube(tiny_schema)
    for index, month in enumerate(["Jan", "Feb", "Mar", "Apr", "May", "Jun"]):
        cube.set(10.0 * (index + 1), Time=month, Measures="Sales")
        cube.set(4.0 * (index + 1), Time=month, Measures="COGS")
    return cube
