"""Tests for the exception hierarchy and the public package API."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.SchemaError,
        errors.MemberNotFoundError,
        errors.DuplicateMemberError,
        errors.InvalidChangeError,
        errors.ValidityError,
        errors.RuleError,
        errors.FormulaSyntaxError,
        errors.MdxError,
        errors.MdxSyntaxError,
        errors.MdxEvaluationError,
        errors.StorageError,
        errors.QueryError,
    ]

    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)

    def test_member_not_found_carries_context(self):
        error = errors.MemberNotFoundError("Time", "Januember")
        assert error.dimension == "Time"
        assert error.member == "Januember"
        assert "Januember" in str(error)
        assert issubclass(errors.MemberNotFoundError, errors.SchemaError)

    def test_formula_error_position(self):
        error = errors.FormulaSyntaxError("bad token", position=7)
        assert "position 7" in str(error)
        assert error.position == 7

    def test_mdx_syntax_error_location(self):
        error = errors.MdxSyntaxError("oops", line=3, column=14)
        assert "line 3" in str(error)
        assert (error.line, error.column) == (3, 14)

    def test_mdx_errors_are_mdx_error(self):
        assert issubclass(errors.MdxSyntaxError, errors.MdxError)
        assert issubclass(errors.MdxEvaluationError, errors.MdxError)

    def test_catching_base_class_at_api_boundary(self, example):
        from repro import Warehouse

        warehouse = Warehouse(example.schema, example.cube)
        with pytest.raises(errors.ReproError):
            warehouse.query("SELECT {{{{ FROM nowhere")


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_key_symbols(self):
        assert repro.Semantics.FORWARD.value == "forward"
        assert repro.Mode.VISUAL.value == "visual"
        assert callable(repro.apply_scenarios)
        assert repro.MISSING is not None

    def test_core_extensions_exported(self):
        from repro.core import (
            AllocationScenario,
            CompressedPerspectiveCube,
            compress,
            execute_plan,
            optimize,
        )

        assert callable(compress)
        assert callable(optimize)
        assert callable(execute_plan)
        assert AllocationScenario is not None
        assert CompressedPerspectiveCube is not None

    def test_storage_exports(self):
        from repro.storage import (
            ChunkedCube,
            ChunkGrid,
            ChunkStore,
            compute_group_bys,
            compute_group_bys_budgeted,
        )

        assert callable(compute_group_bys)
        assert callable(compute_group_bys_budgeted)
        assert ChunkedCube and ChunkGrid and ChunkStore

    def test_mdx_exports(self):
        from repro.mdx import execute, parse_query, tokenize

        assert callable(execute)
        assert callable(parse_query)
        assert callable(tokenize)

    def test_bench_exports(self):
        from repro.bench import run_fig11, run_fig12, run_fig13

        assert callable(run_fig11)
        assert callable(run_fig12)
        assert callable(run_fig13)
