"""Property-style persistence tests: save → load → save is a fixed point.

Because :func:`repro.io.save_warehouse` is deterministic (sorted keys,
sorted cells), the strongest cheap invariant is byte-level: saving a
*reloaded* warehouse must reproduce the original ``schema.json`` and
``cells.json`` exactly — for any warehouse shape the generators produce,
including ⊥ cells, varying-dimension assignments with invalid moments,
named sets, and formula rules.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io import load_warehouse, save_warehouse
from repro.olap.missing import MISSING, is_missing
from repro.warehouse import Warehouse
from repro.workload.workforce import WorkforceConfig, build_workforce

DATA_FILES = ("schema.json", "cells.json")


def assert_save_load_save_fixed_point(warehouse, tmp_path) -> None:
    first = save_warehouse(warehouse, tmp_path / "first")
    reloaded = load_warehouse(first)
    second = save_warehouse(reloaded, tmp_path / "second")
    for name in DATA_FILES:
        assert (first / name).read_bytes() == (second / name).read_bytes(), (
            f"{name} changed across a save/load/save round trip"
        )


workforce_configs = st.builds(
    WorkforceConfig,
    n_employees=st.integers(min_value=4, max_value=24),
    n_departments=st.integers(min_value=2, max_value=5),
    n_changing=st.integers(min_value=1, max_value=4),
    max_moves=st.integers(min_value=1, max_value=5),
    n_accounts=st.integers(min_value=1, max_value=4),
    n_scenarios=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
    density=st.sampled_from([0.25, 0.5, 1.0]),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(config=workforce_configs)
def test_workforce_round_trip_is_fixed_point(config, tmp_path_factory):
    """Random warehouses (varying assignments, named sets, sparse cells)
    survive save→load→save byte-identically."""
    tmp_path = tmp_path_factory.mktemp("prop")
    workforce = build_workforce(config)
    assert_save_load_save_fixed_point(workforce.warehouse, tmp_path)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    values=st.lists(
        st.one_of(
            st.none(),  # explicit ⊥ writes (deletions)
            st.floats(
                min_value=-1e9, max_value=1e9, allow_nan=False, width=32
            ),
        ),
        min_size=6,
        max_size=6,
    )
)
def test_bottom_cells_round_trip(values, tmp_path_factory):
    """⊥ cells (absent and explicitly deleted) survive the round trip."""
    from repro.workload import build_running_example

    tmp_path = tmp_path_factory.mktemp("prop")
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
    months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun"]
    for month, value in zip(months, values):
        warehouse.cube.set(
            value if value is not None else MISSING,
            Organization="Contractor/Jane",
            Location="TX",
            Time=month,
            Measures="Benefits",
        )
    assert_save_load_save_fixed_point(warehouse, tmp_path)
    loaded = load_warehouse(tmp_path / "first")
    for month, value in zip(months, values):
        stored = loaded.cube.at(
            Organization="Contractor/Jane",
            Location="TX",
            Time=month,
            Measures="Benefits",
        )
        if value is None:
            assert is_missing(stored)
        else:
            assert stored == float(value)


def test_rules_and_named_sets_round_trip(example, tmp_path):
    example.measures.add_member("CompPerHead", "Compensation")
    example.rules.define("CompPerHead", "Salary / 1")
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
    warehouse.define_named_set("Changers", ["Joe", "Lisa"])
    assert_save_load_save_fixed_point(warehouse, tmp_path)


def test_materialized_aggregates_round_trip(example, tmp_path):
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
    q1 = example.schema.address(
        Organization="FTE", Location="NY", Time="Qtr1", Measures="Salary"
    )
    warehouse.cube.materialize_derived([q1])
    assert_save_load_save_fixed_point(warehouse, tmp_path)
