"""Tests for the failpoint registry and retry wrappers (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectedError, TransientFaultError
from repro.faults import (
    FAULTS,
    failpoint_names,
    inject_io_fault,
    with_retries,
)
from repro.storage.chunks import ChunkGrid
from repro.storage.chunk_store import ChunkStore


class TestRegistry:
    def test_unarmed_failpoint_is_noop(self):
        inject_io_fault("chunk.read")  # nothing armed: must not raise

    def test_fail_with_fires_every_hit(self):
        FAULTS.fail_with("chunk.read")
        for _ in range(3):
            with pytest.raises(FaultInjectedError) as info:
                inject_io_fault("chunk.read")
            assert info.value.failpoint == "chunk.read"

    def test_fail_after_fires_on_nth_hit_only(self):
        FAULTS.fail_after("chunk.read", 3)
        inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")  # after the nth hit: clean again

    def test_fail_transient_recovers(self):
        FAULTS.fail_transient("chunk.read", times=2)
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")

    def test_probabilistic_is_deterministic_per_seed(self):
        def schedule(seed: int) -> list[bool]:
            FAULTS.fail_probabilistic("chunk.read", 0.5, seed=seed)
            fired = []
            for _ in range(20):
                try:
                    inject_io_fault("chunk.read")
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            FAULTS.clear()
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7))

    def test_unknown_failpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            FAULTS.fail_with("no.such.failpoint")

    def test_custom_exception_factory(self):
        FAULTS.fail_with("chunk.write", lambda fp: OSError(f"boom at {fp}"))
        with pytest.raises(OSError, match="boom at chunk.write"):
            inject_io_fault("chunk.write")

    def test_clear_disarms(self):
        FAULTS.fail_with("chunk.read")
        FAULTS.clear()
        inject_io_fault("chunk.read")

    def test_fired_count(self):
        FAULTS.fail_after("chunk.read", 1)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")
        assert FAULTS.fired_count("chunk.read") == 1

    def test_all_expected_failpoints_registered(self):
        names = set(failpoint_names())
        assert {
            "chunk.read",
            "chunk.write",
            "durability.commit",
            "durability.fsync",
            "durability.rename",
            "durability.write",
            "io.load.cells",
            "io.load.schema",
            "io.save.cells",
            "io.save.commit",
            "io.save.schema",
            "mdx.cell",
        } <= names


class TestSpecParsing:
    def test_always(self):
        assert FAULTS.arm_from_spec("chunk.read:always") == ("chunk.read",)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_after(self):
        FAULTS.arm_from_spec("chunk.read:after=2")
        inject_io_fault("chunk.read")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_transient(self):
        FAULTS.arm_from_spec("chunk.read:transient=1")
        with pytest.raises(TransientFaultError):
            inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")

    def test_probabilistic_with_seed(self):
        FAULTS.arm_from_spec("chunk.read:prob=1.0@seed=3")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_multiple_entries(self):
        armed = FAULTS.arm_from_spec("chunk.read:always; chunk.write:after=5")
        assert armed == ("chunk.read", "chunk.write")

    def test_ci_matrix_marker_arms_nothing(self):
        assert FAULTS.arm_from_spec("ci-matrix") == ()
        assert FAULTS.armed() == ()

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FAULTS.arm_from_spec("chunk.read")
        with pytest.raises(ValueError, match="bad fault mode"):
            FAULTS.arm_from_spec("chunk.read:sometimes")

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "chunk.read:always")
        assert FAULTS.arm_from_env() == ("chunk.read",)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_env_empty_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FAULTS.arm_from_env() == ()


class TestRetries:
    def test_returns_value_on_success(self):
        assert with_retries(lambda: 42) == 42

    def test_transient_errors_retried_with_backoff(self):
        attempts = []
        delays = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("x.y", "transient hiccup")
            return "ok"

        FAULTS.fail_transient("chunk.read", times=2)  # irrelevant, direct raise
        result = with_retries(
            flaky, base_delay=0.001, sleep=delays.append
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert delays == [0.001, 0.002]  # exponential

    def test_terminal_fault_not_retried(self):
        attempts = []

        def crash():
            attempts.append(1)
            raise FaultInjectedError("x.y")

        with pytest.raises(FaultInjectedError):
            with_retries(crash, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhausted_retries_reraise(self):
        def always_transient():
            raise TransientFaultError("x.y")

        with pytest.raises(TransientFaultError):
            with_retries(always_transient, attempts=3, sleep=lambda _: None)

    def test_backoff_is_capped(self):
        delays = []

        def always_transient():
            raise TransientFaultError("x.y")

        with pytest.raises(TransientFaultError):
            with_retries(
                always_transient,
                attempts=6,
                base_delay=0.1,
                max_delay=0.2,
                sleep=delays.append,
            )
        assert max(delays) == 0.2


class TestRetriesTable:
    """Table-driven audit of the retry contract: exact sleep sequences,
    no sleep after the final attempt, and the *last* error re-raised."""

    @pytest.mark.parametrize(
        "attempts, failures, base, cap, expect_calls, expect_sleeps",
        [
            # succeeds immediately: one call, no sleeps
            (4, 0, 0.005, 0.25, 1, []),
            # one transient failure: sleep once at base delay
            (4, 1, 0.005, 0.25, 2, [0.005]),
            # recovers on the last allowed attempt: sleeps between
            # attempts only, exponential doubling
            (4, 3, 0.005, 0.25, 4, [0.005, 0.01, 0.02]),
            # exhausts the budget: attempts calls, but attempts-1 sleeps —
            # never a sleep after the final failure
            (3, 99, 0.005, 0.25, 3, [0.005, 0.01]),
            (1, 99, 0.005, 0.25, 1, []),
            # the cap flattens the tail of the schedule
            (5, 99, 0.1, 0.15, 5, [0.1, 0.15, 0.15, 0.15]),
        ],
    )
    def test_sleep_schedules(
        self, attempts, failures, base, cap, expect_calls, expect_sleeps
    ):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) <= failures:
                raise TransientFaultError("x.y", f"failure {len(calls)}")
            return "ok"

        should_fail = failures >= attempts
        if should_fail:
            with pytest.raises(TransientFaultError):
                with_retries(
                    flaky,
                    attempts=attempts,
                    base_delay=base,
                    max_delay=cap,
                    sleep=sleeps.append,
                )
        else:
            assert (
                with_retries(
                    flaky,
                    attempts=attempts,
                    base_delay=base,
                    max_delay=cap,
                    sleep=sleeps.append,
                )
                == "ok"
            )
        assert len(calls) == expect_calls
        assert sleeps == pytest.approx(expect_sleeps)

    def test_last_error_is_the_one_raised(self):
        errors = [
            TransientFaultError("x.y", "first"),
            TransientFaultError("x.y", "second"),
            TransientFaultError("x.y", "third"),
        ]
        iterator = iter(errors)

        def always_fail():
            raise next(iterator)

        with pytest.raises(TransientFaultError) as info:
            with_retries(always_fail, attempts=3, sleep=lambda _: None)
        assert info.value is errors[-1]

    def test_custom_retry_on_classes(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise KeyError("transient-ish")
            return "ok"

        # Not retried under the default classes...
        with pytest.raises(KeyError):
            with_retries(flaky, sleep=lambda _: None)
        # ...but retried when listed explicitly.
        calls.clear()
        result = with_retries(
            flaky, retry_on=(KeyError,), sleep=lambda _: None
        )
        assert result == "ok"
        assert len(calls) == 2

    def test_rejects_nonpositive_attempts(self):
        with pytest.raises(ValueError, match="attempts >= 1"):
            with_retries(lambda: 1, attempts=0)


def _store() -> ChunkStore:
    grid = ChunkGrid(dim_sizes=(4, 4), chunk_shape=(2, 2))
    store = ChunkStore(grid)
    store.load((0, 0), np.ones((2, 2)))
    return store


class TestChunkStoreFaults:
    def test_terminal_read_fault_propagates(self):
        store = _store()
        FAULTS.fail_with("chunk.read")
        with pytest.raises(FaultInjectedError):
            store.read((0, 0))

    def test_transient_read_fault_recovers(self):
        store = _store()
        FAULTS.fail_transient("chunk.read", times=2)
        data = store.read((0, 0))
        assert data.shape == (2, 2)
        assert store.stats.chunk_reads == 1  # the successful attempt counts once

    def test_missing_chunk_reads_empty_without_touching_faults(self):
        store = _store()
        FAULTS.fail_with("chunk.read")
        data = store.read((1, 1))  # not stored: no physical read happens
        assert np.isnan(data).all()

    def test_terminal_write_fault_propagates(self):
        store = _store()
        FAULTS.fail_with("chunk.write")
        with pytest.raises(FaultInjectedError):
            store.write((1, 0), np.zeros((2, 2)))
        assert not store.has_chunk((1, 0))  # failed write stores nothing

    def test_transient_write_fault_recovers(self):
        store = _store()
        FAULTS.fail_transient("chunk.write", times=1)
        store.write((1, 0), np.zeros((2, 2)))
        assert store.has_chunk((1, 0))


class TestConcurrentArming:
    """Satellite regression: the registry's arm/disarm/hit bookkeeping is
    atomic — a ``transient=N`` failpoint hammered from many threads fires
    *exactly* N times, never N±k from a torn read-modify-write."""

    def test_transient_budget_is_exact_across_threads(self):
        import threading

        times = 50
        FAULTS.fail_transient("mdx.cell", times=times)
        raised = []
        lock = threading.Lock()

        def hammer() -> None:
            for _ in range(200):
                try:
                    FAULTS.hit("mdx.cell")
                except TransientFaultError:
                    with lock:
                        raised.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(raised) == times
        assert FAULTS.fired_count("mdx.cell") == times

    def test_disarm_races_cleanly_with_hits(self):
        import threading

        stop = threading.Event()
        errors = []

        def toggler() -> None:
            while not stop.is_set():
                FAULTS.fail_transient("mdx.cell", times=2)
                FAULTS.disarm("mdx.cell")

        def hitter() -> None:
            while not stop.is_set():
                try:
                    FAULTS.hit("mdx.cell")
                except TransientFaultError:
                    pass
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=toggler)]
        threads += [threading.Thread(target=hitter) for _ in range(7)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
