"""Tests for the failpoint registry and retry wrappers (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectedError, TransientFaultError
from repro.faults import (
    FAULTS,
    failpoint_names,
    inject_io_fault,
    with_retries,
)
from repro.storage.chunks import ChunkGrid
from repro.storage.chunk_store import ChunkStore


class TestRegistry:
    def test_unarmed_failpoint_is_noop(self):
        inject_io_fault("chunk.read")  # nothing armed: must not raise

    def test_fail_with_fires_every_hit(self):
        FAULTS.fail_with("chunk.read")
        for _ in range(3):
            with pytest.raises(FaultInjectedError) as info:
                inject_io_fault("chunk.read")
            assert info.value.failpoint == "chunk.read"

    def test_fail_after_fires_on_nth_hit_only(self):
        FAULTS.fail_after("chunk.read", 3)
        inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")  # after the nth hit: clean again

    def test_fail_transient_recovers(self):
        FAULTS.fail_transient("chunk.read", times=2)
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")

    def test_probabilistic_is_deterministic_per_seed(self):
        def schedule(seed: int) -> list[bool]:
            FAULTS.fail_probabilistic("chunk.read", 0.5, seed=seed)
            fired = []
            for _ in range(20):
                try:
                    inject_io_fault("chunk.read")
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            FAULTS.clear()
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7))

    def test_unknown_failpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            FAULTS.fail_with("no.such.failpoint")

    def test_custom_exception_factory(self):
        FAULTS.fail_with("chunk.write", lambda fp: OSError(f"boom at {fp}"))
        with pytest.raises(OSError, match="boom at chunk.write"):
            inject_io_fault("chunk.write")

    def test_clear_disarms(self):
        FAULTS.fail_with("chunk.read")
        FAULTS.clear()
        inject_io_fault("chunk.read")

    def test_fired_count(self):
        FAULTS.fail_after("chunk.read", 1)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")
        assert FAULTS.fired_count("chunk.read") == 1

    def test_all_expected_failpoints_registered(self):
        names = set(failpoint_names())
        assert {
            "chunk.read",
            "chunk.write",
            "durability.commit",
            "durability.fsync",
            "durability.rename",
            "durability.write",
            "io.load.cells",
            "io.load.schema",
            "io.save.cells",
            "io.save.commit",
            "io.save.schema",
            "mdx.cell",
        } <= names


class TestSpecParsing:
    def test_always(self):
        assert FAULTS.arm_from_spec("chunk.read:always") == ("chunk.read",)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_after(self):
        FAULTS.arm_from_spec("chunk.read:after=2")
        inject_io_fault("chunk.read")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_transient(self):
        FAULTS.arm_from_spec("chunk.read:transient=1")
        with pytest.raises(TransientFaultError):
            inject_io_fault("chunk.read")
        inject_io_fault("chunk.read")

    def test_probabilistic_with_seed(self):
        FAULTS.arm_from_spec("chunk.read:prob=1.0@seed=3")
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_multiple_entries(self):
        armed = FAULTS.arm_from_spec("chunk.read:always; chunk.write:after=5")
        assert armed == ("chunk.read", "chunk.write")

    def test_ci_matrix_marker_arms_nothing(self):
        assert FAULTS.arm_from_spec("ci-matrix") == ()
        assert FAULTS.armed() == ()

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FAULTS.arm_from_spec("chunk.read")
        with pytest.raises(ValueError, match="bad fault mode"):
            FAULTS.arm_from_spec("chunk.read:sometimes")

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "chunk.read:always")
        assert FAULTS.arm_from_env() == ("chunk.read",)
        with pytest.raises(FaultInjectedError):
            inject_io_fault("chunk.read")

    def test_env_empty_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FAULTS.arm_from_env() == ()


class TestRetries:
    def test_returns_value_on_success(self):
        assert with_retries(lambda: 42) == 42

    def test_transient_errors_retried_with_backoff(self):
        attempts = []
        delays = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("x.y", "transient hiccup")
            return "ok"

        FAULTS.fail_transient("chunk.read", times=2)  # irrelevant, direct raise
        result = with_retries(
            flaky, base_delay=0.001, sleep=delays.append
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert delays == [0.001, 0.002]  # exponential

    def test_terminal_fault_not_retried(self):
        attempts = []

        def crash():
            attempts.append(1)
            raise FaultInjectedError("x.y")

        with pytest.raises(FaultInjectedError):
            with_retries(crash, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhausted_retries_reraise(self):
        def always_transient():
            raise TransientFaultError("x.y")

        with pytest.raises(TransientFaultError):
            with_retries(always_transient, attempts=3, sleep=lambda _: None)

    def test_backoff_is_capped(self):
        delays = []

        def always_transient():
            raise TransientFaultError("x.y")

        with pytest.raises(TransientFaultError):
            with_retries(
                always_transient,
                attempts=6,
                base_delay=0.1,
                max_delay=0.2,
                sleep=delays.append,
            )
        assert max(delays) == 0.2


def _store() -> ChunkStore:
    grid = ChunkGrid(dim_sizes=(4, 4), chunk_shape=(2, 2))
    store = ChunkStore(grid)
    store.load((0, 0), np.ones((2, 2)))
    return store


class TestChunkStoreFaults:
    def test_terminal_read_fault_propagates(self):
        store = _store()
        FAULTS.fail_with("chunk.read")
        with pytest.raises(FaultInjectedError):
            store.read((0, 0))

    def test_transient_read_fault_recovers(self):
        store = _store()
        FAULTS.fail_transient("chunk.read", times=2)
        data = store.read((0, 0))
        assert data.shape == (2, 2)
        assert store.stats.chunk_reads == 1  # the successful attempt counts once

    def test_missing_chunk_reads_empty_without_touching_faults(self):
        store = _store()
        FAULTS.fail_with("chunk.read")
        data = store.read((1, 1))  # not stored: no physical read happens
        assert np.isnan(data).all()

    def test_terminal_write_fault_propagates(self):
        store = _store()
        FAULTS.fail_with("chunk.write")
        with pytest.raises(FaultInjectedError):
            store.write((1, 0), np.zeros((2, 2)))
        assert not store.has_chunk((1, 0))  # failed write stores nothing

    def test_transient_write_fault_recovers(self):
        store = _store()
        FAULTS.fail_transient("chunk.write", times=1)
        store.write((1, 0), np.zeros((2, 2)))
        assert store.has_chunk((1, 0))
