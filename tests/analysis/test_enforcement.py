"""Enforcement wiring: the evaluator and plan executor refuse error-level
queries by default, with ``analyze=False`` as the escape hatch."""

from __future__ import annotations

import pytest

from repro.core.perspective import Semantics
from repro.core.plans import BaseCube, PerspectiveNode, execute_plan
from repro.errors import (
    AnalysisError,
    MdxAnalysisError,
    MdxEvaluationError,
    PlanAnalysisError,
    QueryError,
)

BAD_QUERY = "SELECT {[Nobody]} ON COLUMNS FROM Warehouse"
GOOD_QUERY = "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse"


class TestQueryEnforcement:
    def test_error_level_query_is_refused(self, warehouse):
        with pytest.raises(MdxAnalysisError) as excinfo:
            warehouse.query(BAD_QUERY)
        assert "WIF002" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_analysis_error_is_an_evaluation_error(self, warehouse):
        # Compatibility: callers catching MdxEvaluationError keep working,
        # and message fragments from the runtime still match.
        with pytest.raises(MdxEvaluationError, match="unknown member"):
            warehouse.query(BAD_QUERY)

    def test_escape_hatch_reaches_the_evaluator(self, warehouse):
        # With analyze=False the analyzer is skipped; the runtime raises
        # its own error instead of MdxAnalysisError.
        with pytest.raises(MdxEvaluationError) as excinfo:
            warehouse.query(BAD_QUERY, analyze=False)
        assert not isinstance(excinfo.value, AnalysisError)

    def test_clean_query_executes(self, warehouse):
        result = warehouse.query(GOOD_QUERY)
        assert len(result.columns) == 1

    def test_warnings_do_not_block(self, warehouse):
        # Shadowed slicer is a warning; the query still runs.
        report = warehouse.analyze(
            "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([MA], [Salary])"
        )
        assert report.has_warnings and not report.has_errors
        warehouse.query(
            "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([MA], [Salary])"
        )

    def test_warehouse_analyze_returns_report(self, warehouse):
        report = warehouse.analyze(BAD_QUERY)
        assert report.has_errors
        assert "WIF002" in report.codes()


class TestPlanEnforcement:
    def test_error_level_plan_is_refused(self, warehouse):
        plan = PerspectiveNode(
            BaseCube(), "Organization", (99,), Semantics.STATIC
        )
        with pytest.raises(PlanAnalysisError) as excinfo:
            execute_plan(plan, warehouse.cube)
        assert "WIF402" in str(excinfo.value)

    def test_plan_analysis_error_is_a_query_error(self, warehouse):
        plan = PerspectiveNode(
            BaseCube(), "Organization", (99,), Semantics.STATIC
        )
        with pytest.raises(QueryError):
            execute_plan(plan, warehouse.cube)

    def test_escape_hatch_reaches_the_executor(self, warehouse):
        plan = PerspectiveNode(
            BaseCube(), "Organization", (99,), Semantics.STATIC
        )
        with pytest.raises(QueryError) as excinfo:
            execute_plan(plan, warehouse.cube, analyze=False)
        assert not isinstance(excinfo.value, AnalysisError)

    def test_info_lints_do_not_block(self, warehouse):
        from repro.core.plans import EvaluateNode

        plan = EvaluateNode(EvaluateNode(BaseCube()))
        execute_plan(plan, warehouse.cube)  # runs despite WIF406


class TestFig10Clean:
    """The paper's three experiment queries must pass analysis untouched."""

    @pytest.fixture(scope="class")
    def workforce(self):
        from repro.workload.workforce import WorkforceConfig, build_workforce

        return build_workforce(
            WorkforceConfig(
                n_employees=40,
                n_departments=4,
                n_changing=6,
                n_accounts=3,
                n_scenarios=2,
                seed=11,
            )
        )

    def test_fig10_queries_are_clean(self, workforce):
        from tests.mdx.test_fig10_queries import FIG10A, FIG10B, FIG10C

        for text in (FIG10A, FIG10B, FIG10C):
            report = workforce.warehouse.analyze(text)
            assert report.is_clean, report.to_text()
