"""Unit tests for the diagnostic framework itself."""

from __future__ import annotations

import json

import pytest

from repro.analysis import CODE_CATALOG, Diagnostic, DiagnosticReport, Severity
from repro.mdx.span import SourceSpan


def test_catalog_has_at_least_eight_codes_with_defaults():
    assert len(CODE_CATALOG) >= 8
    for code, (severity, description) in CODE_CATALOG.items():
        assert code.startswith("WIF") and len(code) == 6
        assert isinstance(severity, Severity)
        assert description


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown diagnostic code"):
        Diagnostic.make("WIF999", "nope")


def test_make_uses_catalog_severity_and_allows_override():
    default = Diagnostic.make("WIF002", "m")
    assert default.severity is Severity.ERROR
    demoted = Diagnostic.make("WIF303", "m", severity=Severity.WARNING)
    assert demoted.severity is Severity.WARNING


def test_text_rendering_shares_span_format():
    diag = Diagnostic.make("WIF002", "unknown member", SourceSpan(3, 14))
    assert diag.to_text() == "WIF002 error (line 3, column 14): unknown member"
    assert str(SourceSpan(3, 14)) == "line 3, column 14"


def test_exit_code_contract():
    clean = DiagnosticReport()
    assert clean.exit_code() == 0
    assert clean.exit_code(strict=True) == 0

    warned = DiagnosticReport()
    warned.add("WIF104", "dupes")
    assert warned.exit_code() == 0
    assert warned.exit_code(strict=True) == 1

    failed = DiagnosticReport()
    failed.add("WIF104", "dupes")
    failed.add("WIF002", "unknown")
    assert failed.exit_code() == 2
    assert failed.exit_code(strict=True) == 2


def test_sorted_orders_severity_then_position():
    report = DiagnosticReport()
    report.add("WIF104", "warning late", SourceSpan(9, 1))
    report.add("WIF404", "info", severity=Severity.INFO)
    report.add("WIF002", "error late", SourceSpan(5, 2))
    report.add("WIF002", "error early", SourceSpan(1, 1))
    codes = [d.message for d in report.sorted()]
    assert codes == ["error early", "error late", "warning late", "info"]


def test_json_payload():
    report = DiagnosticReport()
    report.add("WIF002", "unknown member", SourceSpan(2, 9), subject="[Nope]")
    payload = json.loads(report.to_json())
    assert payload["errors"] == 1 and payload["warnings"] == 0
    (entry,) = payload["diagnostics"]
    assert entry == {
        "code": "WIF002",
        "severity": "error",
        "message": "unknown member",
        "line": 2,
        "column": 9,
        "subject": "[Nope]",
    }


def test_report_collection_protocol():
    report = DiagnosticReport()
    assert report.is_clean and len(report) == 0
    report.add("WIF104", "one")
    other = DiagnosticReport()
    other.add("WIF002", "two")
    report.extend(other)
    assert len(report) == 2
    assert report.codes() == {"WIF104", "WIF002"}
    assert report.has_errors and report.has_warnings
    assert "WIF104" in report.to_text() and "two" in report.to_text()
