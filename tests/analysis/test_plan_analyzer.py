"""Coverage of the plan-level diagnostic codes (WIF4xx)."""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_plan
from repro.core.perspective import Semantics
from repro.core.plans import (
    And,
    BaseCube,
    EvaluateNode,
    MemberEquals,
    MemberIn,
    Not,
    Or,
    PerspectiveNode,
    SelectNode,
    SplitNode,
    ValidityIntersects,
)
from repro.workload import build_running_example


@pytest.fixture(scope="module")
def example():
    return build_running_example()


def codes_of(plan, example, varying=None):
    return analyze_plan(plan, example.schema, varying).codes()


class TestErrors:
    def test_wif401_unknown_dimension(self, example):
        plan = SelectNode(BaseCube(), "Nowhere", MemberEquals("NY"))
        assert "WIF401" in codes_of(plan, example)

    def test_wif401_perspective_over_non_varying(self, example):
        plan = PerspectiveNode(BaseCube(), "Location", (0,), Semantics.STATIC)
        assert "WIF401" in codes_of(plan, example)

    def test_wif401_split_over_non_varying(self, example):
        plan = SplitNode(BaseCube(), "Time", (("Joe", "FTE", "PTE", "Feb"),))
        assert "WIF401" in codes_of(plan, example)

    def test_wif402_moments_outside_universe(self, example):
        plan = PerspectiveNode(
            BaseCube(), "Organization", (0, 99), Semantics.STATIC
        )
        assert "WIF402" in codes_of(plan, example)

    def test_wif402_empty_perspectives(self, example):
        plan = PerspectiveNode(BaseCube(), "Organization", (), Semantics.STATIC)
        assert "WIF402" in codes_of(plan, example)

    def test_wif407_bad_old_parent(self, example):
        plan = SplitNode(
            BaseCube(), "Organization", (("Joe", "FTE", "PTE", "Mar"),)
        )
        report = analyze_plan(plan, example.schema)
        assert "WIF407" in report.codes()
        assert report.has_errors

    def test_wif407_unknown_names(self, example):
        plan = SplitNode(
            BaseCube(), "Organization", (("Nobody", "FTE", "PTE", "Feb"),)
        )
        assert "WIF407" in codes_of(plan, example)
        plan = SplitNode(
            BaseCube(), "Organization", (("Joe", "FTE", "PTE", "Noon"),)
        )
        assert "WIF407" in codes_of(plan, example)

    def test_wif407_cyclic_relation(self, example):
        plan = SplitNode(
            BaseCube(),
            "Organization",
            (
                ("FTE", "Organization", "PTE", "Jan"),
                ("PTE", "Organization", "FTE", "Jan"),
            ),
        )
        assert "WIF407" in codes_of(plan, example)

    def test_clean_split_has_no_errors(self, example):
        plan = SplitNode(
            BaseCube(), "Organization", (("Joe", "FTE", "PTE", "Mar"),)
        )
        # Fix the old parent (Contractor at Mar) and the plan is clean.
        good = SplitNode(
            BaseCube(), "Organization", (("Joe", "Contractor", "PTE", "Mar"),)
        )
        assert analyze_plan(good, example.schema).is_clean
        assert not analyze_plan(plan, example.schema).is_clean


class TestWarnings:
    def test_wif403_dead_member_equals(self, example):
        plan = SelectNode(BaseCube(), "Location", MemberEquals("Nowhere"))
        report = analyze_plan(plan, example.schema)
        assert "WIF403" in report.codes()
        assert not report.has_errors  # runnable, just useless

    def test_wif403_contradictory_and(self, example):
        plan = SelectNode(
            BaseCube(),
            "Location",
            And(MemberEquals("NY"), MemberEquals("MA")),
        )
        assert "WIF403" in codes_of(plan, example)

    def test_wif403_dead_member_in_and_or(self, example):
        dead = SelectNode(
            BaseCube(), "Location", MemberIn({"Nope1", "Nope2"})
        )
        assert "WIF403" in codes_of(dead, example)
        alive = SelectNode(
            BaseCube(), "Location", MemberIn({"Nope1", "NY"})
        )
        assert "WIF403" not in codes_of(alive, example)
        dead_or = SelectNode(
            BaseCube(),
            "Location",
            Or(MemberEquals("Nope1"), MemberEquals("Nope2")),
        )
        assert "WIF403" in codes_of(dead_or, example)

    def test_wif403_validity_outside_universe(self, example):
        plan = SelectNode(
            BaseCube(), "Organization", ValidityIntersects({99})
        )
        assert "WIF403" in codes_of(plan, example)

    def test_not_is_never_proven_dead(self, example):
        plan = SelectNode(
            BaseCube(), "Location", Not(MemberEquals("Nowhere"))
        )
        assert "WIF403" not in codes_of(plan, example)

    def test_dynamic_over_unordered_parameter_is_warning(self):
        from repro.olap.cube import Cube
        from repro.olap.dimension import Dimension
        from repro.olap.schema import CubeSchema

        product = Dimension("Product")
        product.add_children(None, ["Food"])
        product.add_children("Food", ["Bread"])
        location = Dimension("Location")
        location.add_children(None, ["NY", "MA"])
        schema = CubeSchema([product, location])
        schema.make_varying("Product", "Location")
        Cube(schema)
        plan = PerspectiveNode(BaseCube(), "Product", (0,), Semantics.FORWARD)
        report = analyze_plan(plan, schema)
        assert "WIF402" in report.codes()
        assert not report.has_errors


class TestChainFindings:
    def test_wif501_double_relocation_across_splits(self, example):
        inner = SplitNode(
            BaseCube(), "Organization", (("Joe", "Contractor", "PTE", "Mar"),)
        )
        plan = SplitNode(
            inner, "Organization", (("Joe", "Contractor", "FTE", "Mar"),)
        )
        report = analyze_plan(plan, example.schema)
        assert "WIF501" in report.codes()
        assert not report.has_errors  # runnable, just contradictory

    def test_wif501_not_reported_for_distinct_moments(self, example):
        inner = SplitNode(
            BaseCube(), "Organization", (("Joe", "FTE", "PTE", "Feb"),)
        )
        plan = SplitNode(
            inner, "Organization", (("Joe", "Contractor", "FTE", "Mar"),)
        )
        assert "WIF501" not in codes_of(plan, example)

    def test_wif501_not_reported_within_one_split(self, example):
        plan = SplitNode(
            BaseCube(),
            "Organization",
            (
                ("Joe", "Contractor", "PTE", "Mar"),
                ("Joe", "FTE", "PTE", "Feb"),
            ),
        )
        assert "WIF501" not in codes_of(plan, example)

    def test_wif502_dead_perspective(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (3,), Semantics.STATIC
        )
        plan = SelectNode(inner, "Organization", ValidityIntersects({1}))
        report = analyze_plan(plan, example.schema)
        assert "WIF502" in report.codes()
        assert not report.has_errors

    def test_wif502_not_reported_when_scopes_meet(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (1, 3), Semantics.STATIC
        )
        plan = SelectNode(inner, "Organization", ValidityIntersects({1}))
        assert "WIF502" not in codes_of(plan, example)

    def test_wif502_ignores_other_dimensions_and_not(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (3,), Semantics.STATIC
        )
        other_dim = SelectNode(inner, "Location", MemberEquals("NY"))
        assert "WIF502" not in codes_of(other_dim, example)
        negated = SelectNode(
            inner, "Organization", Not(ValidityIntersects({1}))
        )
        assert "WIF502" not in codes_of(negated, example)


class TestOptimizerLints:
    def test_wif404_redundant_static_perspective(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (1,), Semantics.STATIC
        )
        plan = PerspectiveNode(inner, "Organization", (1, 3), Semantics.STATIC)
        report = analyze_plan(plan, example.schema)
        hits = [d for d in report if d.code == "WIF404"]
        assert hits and all(d.severity is Severity.INFO for d in hits)

    def test_wif404_not_reported_when_not_subset(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (0, 2), Semantics.STATIC
        )
        plan = PerspectiveNode(inner, "Organization", (1, 3), Semantics.STATIC)
        assert "WIF404" not in codes_of(plan, example)

    def test_wif405_pushable_selection(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (1,), Semantics.STATIC
        )
        plan = SelectNode(inner, "Location", MemberEquals("NY"))
        report = analyze_plan(plan, example.schema)
        hits = [d for d in report if d.code == "WIF405"]
        assert hits and all(d.severity is Severity.INFO for d in hits)

    def test_wif405_not_reported_for_non_commuting_selection(self, example):
        inner = PerspectiveNode(
            BaseCube(), "Organization", (1,), Semantics.STATIC
        )
        # Validity-dependent predicate on the same dimension cannot be
        # pushed below the perspective.
        plan = SelectNode(inner, "Organization", ValidityIntersects({1}))
        assert "WIF405" not in codes_of(plan, example)

    def test_wif406_consecutive_evaluate(self, example):
        plan = EvaluateNode(EvaluateNode(BaseCube()))
        report = analyze_plan(plan, example.schema)
        hits = [d for d in report if d.code == "WIF406"]
        assert hits and all(d.severity is Severity.INFO for d in hits)

    def test_optimized_plan_sheds_lints(self, example):
        from repro.core.optimizer import optimize

        inner = PerspectiveNode(
            BaseCube(), "Organization", (1,), Semantics.STATIC
        )
        plan = SelectNode(inner, "Location", MemberEquals("NY"))
        optimized, trace = optimize(plan)
        assert trace.rules_fired  # the rewrite actually happened
        assert "WIF405" not in codes_of(optimized, example)
