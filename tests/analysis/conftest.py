"""Fixtures for the static-analysis test suite."""

from __future__ import annotations

import pytest

from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.schema import CubeSchema
from repro.warehouse import Warehouse
from repro.workload import build_running_example


@pytest.fixture(scope="module")
def warehouse() -> Warehouse:
    """The paper's running example (Organization varying over Time)."""
    example = build_running_example()
    return Warehouse(example.schema, example.cube)


@pytest.fixture(scope="module")
def ambiguous_warehouse() -> Warehouse:
    """Two dimensions sharing the member name ``Overlap``."""
    left = Dimension("Left")
    left.add_children(None, ["L1", "Overlap"])
    right = Dimension("Right")
    right.add_children(None, ["R1", "Overlap"])
    schema = CubeSchema([left, right])
    return Warehouse(schema, Cube(schema))


@pytest.fixture(scope="module")
def unordered_warehouse() -> Warehouse:
    """Product varying over the *unordered* Location dimension, so dynamic
    semantics and positive changes are illegal there."""
    product = Dimension("Product")
    product.add_children(None, ["Food", "Drink"])
    product.add_children("Food", ["Bread"])
    product.add_children("Drink", ["Milk"])
    location = Dimension("Location")  # unordered
    location.add_children(None, ["NY", "MA"])
    schema = CubeSchema([product, location])
    varying = schema.make_varying("Product", "Location")
    varying.assign("Bread", "Food")
    return Warehouse(schema, Cube(schema))
