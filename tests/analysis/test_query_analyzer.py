"""Table-driven coverage of every query-level diagnostic code.

Each code has (at least) one *trigger* query that must report it and one
*clean* counterpart — minimally different — that must not.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_query
from repro.mdx.ast_nodes import (
    AxisSpec,
    DescendantsExpr,
    MdxQuery,
    MemberPath,
    SetLiteral,
)

BASE = "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse"

# (code, trigger query, clean counterpart)
CASES = [
    (
        "WIF000",
        "SELECT {Time.[Jan] ON COLUMNS FROM Warehouse",
        BASE,
    ),
    (
        "WIF001",
        "SELECT {Time.[Jan]} ON COLUMNS FROM Nowhere",
        BASE,
    ),
    (
        "WIF002",
        "SELECT {[Nobody]} ON COLUMNS FROM Warehouse",
        "SELECT {[Joe]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF004",
        "SELECT {Time.[Jan]} ON COLUMNS, {[Joe]} ON COLUMNS FROM Warehouse",
        "SELECT {Time.[Jan]} ON COLUMNS, {[Joe]} ON ROWS FROM Warehouse",
    ),
    (
        "WIF005",
        "SELECT {Time.[Jan]} ON ROWS FROM Warehouse",
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF006",
        "WITH SET [Loop] AS {[Loop]} "
        "SELECT {[Loop]} ON COLUMNS FROM Warehouse",
        "WITH SET [Fine] AS {[Joe]} "
        "SELECT {[Fine]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF007",
        "SELECT {Descendants([Time], 1, sideways)} ON COLUMNS FROM Warehouse",
        "SELECT {Descendants([Time], 1, self_and_after)} ON COLUMNS "
        "FROM Warehouse",
    ),
    (
        "WIF101",
        "WITH PERSPECTIVE {(Feb)} FOR Location "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH PERSPECTIVE {(Feb)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF102",
        "WITH PERSPECTIVE {(Qtr1)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH PERSPECTIVE {(Jan)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF104",
        "WITH PERSPECTIVE {(Feb), (Feb)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF105",
        "WITH PERSPECTIVE {(Feb)} FOR Organization VISUAL "
        "CHANGES {([Joe], [PTE], [FTE], [Feb])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH PERSPECTIVE {(Feb)} FOR Organization VISUAL "
        "CHANGES {([Joe], [PTE], [FTE], [Feb])} FOR Organization VISUAL "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF201",
        "WITH CHANGES {([Joe], [FTE], [PTE], [Noon])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH CHANGES {([Joe], [FTE], [PTE], [Jan])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF202",
        # At Mar, Joe's instance is under Contractor, not FTE.
        "WITH CHANGES {([Joe], [FTE], [PTE], [Mar])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH CHANGES {([Joe], [Contractor], [PTE], [Mar])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF203",
        # Joe is a managed leaf: reparenting Lisa under him violates Def. 3.1.
        "WITH CHANGES {([Lisa], [FTE], [Joe], [Feb])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH CHANGES {([Lisa], [FTE], [PTE], [Feb])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF204",
        # Second tuple at the same moment contradicts the first one's result.
        "WITH CHANGES {([Joe], [FTE], [PTE], [Jan]), "
        "([Joe], [FTE], [Contractor], [Jan])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        # A *chained* pair is consistent: the second old parent names the
        # first new parent.
        "WITH CHANGES {([Joe], [FTE], [PTE], [Jan]), "
        "([Joe], [PTE], [Contractor], [Jan])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF205",
        # FTE -> PTE and PTE -> FTE yields a cyclic hypothetical hierarchy.
        "WITH CHANGES {([FTE], [Organization], [PTE], [Jan]), "
        "([PTE], [Organization], [FTE], [Jan])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH CHANGES {([FTE], [Organization], [PTE], [Jan])} "
        "FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF206",
        "WITH CHANGES {([Joe], [FTE], [PTE], [Feb])} FOR Nowhere "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
        "WITH CHANGES {([Joe], [FTE], [PTE], [Feb])} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF301",
        # PTE/Joe is valid only in Feb; a static Jan perspective kills it.
        "WITH PERSPECTIVE {(Jan)} FOR Organization "
        "SELECT {Organization.[PTE].[Joe]} ON COLUMNS FROM Warehouse",
        "WITH PERSPECTIVE {(Jan)} FOR Organization "
        "SELECT {Organization.[FTE].[Joe]} ON COLUMNS FROM Warehouse",
    ),
    (
        "WIF302",
        "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([MA], [Salary])",
        "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([Salary])",
    ),
    (
        "WIF303",
        # Joe has three instances; a tuple needs exactly one binding.
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse "
        "WHERE ([Joe], [Salary])",
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse "
        "WHERE (Organization.[FTE].[Joe], [Salary])",
    ),
]


@pytest.mark.parametrize(
    "code,trigger,clean", CASES, ids=[case[0] for case in CASES]
)
def test_trigger_and_clean(warehouse, code, trigger, clean):
    triggered = analyze_query(warehouse, trigger)
    assert code in triggered.codes(), triggered.to_text()
    counterpart = analyze_query(warehouse, clean)
    assert code not in counterpart.codes(), counterpart.to_text()


def test_clean_base_query_is_clean(warehouse):
    assert analyze_query(warehouse, BASE).is_clean


def test_wif003_ambiguous_member(ambiguous_warehouse):
    report = analyze_query(
        ambiguous_warehouse, "SELECT {[Overlap]} ON COLUMNS FROM Warehouse"
    )
    assert "WIF003" in report.codes()
    clean = analyze_query(
        ambiguous_warehouse,
        "SELECT {Left.[Overlap]} ON COLUMNS FROM Warehouse",
    )
    assert "WIF003" not in clean.codes()


def test_wif103_dynamic_over_unordered(unordered_warehouse):
    report = analyze_query(
        unordered_warehouse,
        "WITH PERSPECTIVE {(NY)} FOR Product FORWARD "
        "SELECT {[Bread]} ON COLUMNS FROM Warehouse",
    )
    assert "WIF103" in report.codes()
    clean = analyze_query(
        unordered_warehouse,
        "WITH PERSPECTIVE {(NY)} FOR Product "
        "SELECT {[Bread]} ON COLUMNS FROM Warehouse",
    )
    assert "WIF103" not in clean.codes()


def test_wif103_changes_over_unordered(unordered_warehouse):
    report = analyze_query(
        unordered_warehouse,
        "WITH CHANGES {([Bread], [Food], [Drink], [NY])} FOR Product "
        "SELECT {[Bread]} ON COLUMNS FROM Warehouse",
    )
    assert "WIF103" in report.codes()


def test_wif005_three_axes(warehouse):
    query = MdxQuery(
        axes=(
            AxisSpec(SetLiteral((MemberPath(("Jan",)),)), "columns"),
            AxisSpec(SetLiteral((MemberPath(("Joe",)),)), "rows"),
            AxisSpec(SetLiteral((MemberPath(("NY",)),)), "axis2"),
        ),
        cube=("Warehouse",),
    )
    assert "WIF005" in analyze_query(warehouse, query).codes()


def test_wif007_on_hand_built_query(warehouse):
    query = MdxQuery(
        axes=(
            AxisSpec(
                DescendantsExpr(MemberPath(("Time",)), 1, "nonsense"),
                "columns",
            ),
        ),
        cube=("Warehouse",),
    )
    assert "WIF007" in analyze_query(warehouse, query).codes()


def test_wif000_carries_span(warehouse):
    report = analyze_query(warehouse, "SELECT {Time.[Jan]")
    (diag,) = list(report)
    assert diag.code == "WIF000"
    assert diag.span is not None
    assert diag.span.line == 1


def test_spans_point_at_offending_token(warehouse):
    report = analyze_query(
        warehouse,
        "SELECT {Time.[Jan]} ON COLUMNS,\n       {[Nobody]} ON ROWS\n"
        "FROM Warehouse",
    )
    (diag,) = list(report)
    assert diag.code == "WIF002"
    assert diag.span is not None
    assert diag.span.line == 2
    assert "line 2" in diag.to_text()


def test_wif303_demoted_to_warning_under_scenario(warehouse):
    """With a scenario, the analyzer's structural instance count may exceed
    the runtime's data-filtered count, so ambiguity is only a warning."""
    report = analyze_query(
        warehouse,
        "WITH PERSPECTIVE {(Jan), (Feb), (Apr)} FOR Organization "
        "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse "
        "WHERE ([Joe], [Salary])",
    )
    hits = [d for d in report if d.code == "WIF303"]
    assert hits and all(d.severity is Severity.WARNING for d in hits)


def test_properties_never_error(warehouse):
    report = analyze_query(
        warehouse,
        "SELECT {[Joe]} DIMENSION PROPERTIES [Bogus] ON COLUMNS "
        "FROM Warehouse",
    )
    assert not report.has_errors
    assert "WIF002" in report.codes()
