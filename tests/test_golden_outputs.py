"""Golden-output regression guards for the headline user-facing flows."""

from __future__ import annotations

import pytest

from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


FIG4_QUERY = """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""

FIG4_EXPECTED = """\
               |          Jan |          Feb |          Mar |          Apr
--------------------------------------------------------------------------
PTE/Joe        |            - |           10 |           30 |            -
Contractor/Joe |            - |            - |            - |           20"""


def test_fig4_grid_text_snapshot(warehouse):
    """The paper's Fig. 4 rendering must stay byte-stable."""
    assert warehouse.query(FIG4_QUERY).to_text() == FIG4_EXPECTED


def test_classic_grid_snapshot(warehouse):
    result = warehouse.query(
        """
        SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
               Location.[East].Children ON ROWS
        FROM Warehouse
        WHERE (Organization.[Contractor].[Joe], Measures.[Salary])
        """
    )
    expected = """\
   |         Qtr1 |         Qtr2
--------------------------------
NY |           30 |           40
MA |           15 |            -
NH |            - |            -"""
    assert result.to_text() == expected


def test_fig9_pebbling_snapshot():
    """The Sec. 5.2 walkthrough numbers must stay pinned."""
    from repro.core.merge_graph import fig8_example_graph
    from repro.core.pebbling import node_cost, optimal_pebbles, pebble

    graph = fig8_example_graph()
    assert {n: node_cost(graph, n) for n in sorted(graph.nodes)} == {
        1: 1, 3: 1, 5: 0, 6: 1, 7: 1, 9: 0, 10: 0,
    }
    assert pebble(graph).max_pebbles == 3
    assert optimal_pebbles(graph) == 3


def test_running_example_joe_instances_snapshot(example):
    assert {
        i.qualified_name: i.validity.sorted_moments()
        for i in example.org.instances_of("Joe")
    } == {
        "FTE/Joe": [0],
        "PTE/Joe": [1],
        "Contractor/Joe": [2, 3, 5, 6, 7, 8, 9, 10, 11],
    }
