"""Tests for the retail workload (Fig. 7 shape and the generalised form)."""

from __future__ import annotations

import pytest

from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.merge_graph import build_merge_graph
from repro.workload.retail import RetailConfig, build_retail, fig7_example


class TestFig7Example:
    def test_instance_rows(self):
        retail = fig7_example()
        instances = {
            i.qualified_name: i
            for i in retail.product_varying.instances_of("1001")
        }
        assert set(instances) == {"300/1001", "200/1001", "100/1001"}
        assert instances["300/1001"].validity.sorted_moments() == [0, 1, 2, 3]
        assert instances["200/1001"].validity.sorted_moments() == [4, 5, 6, 7]
        assert instances["100/1001"].validity.sorted_moments() == [8, 9, 10, 11]

    def test_chunked_layout_groups_rows(self):
        retail = fig7_example()
        chunked, spec = retail.chunked(chunk_shape=(2, 3, 1))
        labels = chunked.axis("Product").labels
        # Rows ordered by group: 100/1001, 100/1002, 200/1001, 200/2001, ...
        assert labels == (
            "Product/100/1001",
            "Product/100/1002",
            "Product/200/1001",
            "Product/200/2001",
            "Product/300/1001",
            "Product/300/3001",
        )

    def test_merge_graph_links_instance_rows(self):
        retail = fig7_example()
        chunked, spec = retail.chunked(chunk_shape=(2, 3, 1))
        pset = PerspectiveSet([1], 12)  # P = {Feb}, as in Sec. 5.1
        graph = build_merge_graph(spec, pset, Semantics.FORWARD)
        # 300/1001 (row chunk 2) absorbs the year; merges needed with the
        # chunks holding 200/1001 (row chunk 1) and 100/1001 (row chunk 0).
        assert graph.number_of_edges() > 0
        row_chunks = {a[0] for edge in graph.edges for a in edge}
        assert row_chunks == {0, 1, 2}

    def test_aggregate_rows(self):
        retail = fig7_example()
        value = retail.cube.effective_value(("300", "Jan", "NY"))
        assert value == 20.0  # 300/1001 + 300/3001


class TestGeneralisedRetail:
    def test_deterministic(self):
        a = build_retail(RetailConfig(seed=3))
        b = build_retail(RetailConfig(seed=3))
        assert a.varying_products == b.varying_products
        assert a.cube.n_leaf_cells == b.cube.n_leaf_cells

    def test_varying_products_have_instances(self):
        retail = build_retail(RetailConfig(n_varying=3, seed=5))
        for name in retail.varying_products:
            assert len(retail.product_varying.instances_of(name)) >= 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RetailConfig(n_groups=1)
        with pytest.raises(ValueError):
            RetailConfig(n_varying=1000)

    def test_chunked_values_roundtrip(self):
        retail = build_retail(RetailConfig(seed=9))
        chunked, spec = retail.chunked()
        for addr, value in list(retail.cube.leaf_cells())[:20]:
            assert chunked.peek_at(chunked.cell_of(addr[:3])) == value

    def test_mdx_over_retail(self):
        retail = fig7_example()
        result = retail.warehouse.query(
            "SELECT {[Jan], [May], [Sep]} ON COLUMNS, {[1001]} ON ROWS "
            "FROM Retail WHERE ([NY])"
        )
        assert result.row_labels() == ["300/1001", "200/1001", "100/1001"]
        assert result.cell_by_labels("300/1001", "Jan") == 10.0
        assert result.cell_by_labels("200/1001", "May") == 10.0
        assert result.cell_by_labels("100/1001", "Sep") == 10.0
