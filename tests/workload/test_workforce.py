"""Tests for the workforce workload generator (Sec. 6 dataset, scaled)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.workforce import WorkforceConfig, build_workforce


@pytest.fixture(scope="module")
def workforce():
    return build_workforce(
        WorkforceConfig(
            n_employees=50,
            n_departments=5,
            n_changing=8,
            max_moves=3,
            n_accounts=4,
            n_scenarios=2,
            seed=11,
        )
    )


class TestStructure:
    def test_changing_count(self, workforce):
        assert len(workforce.changing_employees) == 8

    def test_every_changer_has_multiple_instances(self, workforce):
        for name in workforce.changing_employees:
            assert len(workforce.employee_varying.instances_of(name)) >= 2

    def test_moves_within_bounds(self, workforce):
        for name, moves in workforce.moves.items():
            assert 1 <= len(moves) <= 3

    def test_static_employees_have_one_instance(self, workforce):
        statics = [
            f"e{i:05d}"
            for i in range(50)
            if f"e{i:05d}" not in set(workforce.changing_employees)
        ]
        for name in statics[:5]:
            assert len(workforce.employee_varying.instances_of(name)) == 1

    def test_seven_dimensions(self, workforce):
        assert workforce.schema.n_dims == 7
        assert workforce.schema.is_varying("Department")

    def test_named_sets_partition_changers(self, workforce):
        wh = workforce.warehouse
        union: list[str] = []
        for i in (1, 2, 3):
            union.extend(
                wh.named_set(f"EmployeesWithAtleastOneMove-Set{i}").members
            )
        assert sorted(union) == sorted(workforce.changing_employees)

    def test_employee_s3_exists(self, workforce):
        s3 = workforce.warehouse.named_set("EmployeeS3")
        assert len(s3.members) == 1
        assert s3.members[0] in workforce.changing_employees


class TestData:
    def test_changers_fully_populated(self, workforce):
        name = workforce.changing_employees[0]
        total_moments = sum(
            len(inst.validity)
            for inst in workforce.employee_varying.instances_of(name)
        )
        assert total_moments == 12  # never invalid

    def test_deterministic_given_seed(self):
        config = WorkforceConfig(
            n_employees=20, n_departments=3, n_changing=3, seed=5
        )
        a = build_workforce(config)
        b = build_workforce(config)
        assert a.changing_employees == b.changing_employees
        assert a.cube.n_leaf_cells == b.cube.n_leaf_cells
        addr = next(iter(dict(a.cube.leaf_cells())))
        assert a.cube.value(addr) == b.cube.value(addr)

    def test_different_seeds_differ(self):
        a = build_workforce(WorkforceConfig(n_employees=20, n_changing=3, seed=1))
        b = build_workforce(WorkforceConfig(n_employees=20, n_changing=3, seed=2))
        assert a.changing_employees != b.changing_employees

    def test_density_reduces_cells(self):
        dense = build_workforce(
            WorkforceConfig(n_employees=30, n_changing=3, density=1.0, seed=3)
        )
        sparse = build_workforce(
            WorkforceConfig(n_employees=30, n_changing=3, density=0.2, seed=3)
        )
        assert sparse.cube.n_leaf_cells < dense.cube.n_leaf_cells

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkforceConfig(n_changing=0)
        with pytest.raises(ValueError):
            WorkforceConfig(n_departments=1)
        with pytest.raises(ValueError):
            WorkforceConfig(density=1.5)


class TestChunkedBuild:
    def test_chunked_matches_semantic_cube(self, workforce):
        chunked, spec = workforce.chunked()
        # Sample a handful of stored cells and compare.
        for addr, value in list(workforce.cube.leaf_cells())[:25]:
            assert chunked.peek_at(chunked.cell_of(addr)) == value

    def test_slots_grouped_by_department(self, workforce):
        chunked, spec = workforce.chunked()
        labels = chunked.axis("Department").labels
        departments = [label.split("/")[1] for label in labels]
        assert departments == sorted(departments)

    def test_changing_members_exposed(self, workforce):
        _, spec = workforce.chunked()
        assert sorted(spec.changing_members()) == sorted(
            workforce.changing_employees
        )

    def test_instances_of_changer_in_separate_slots(self, workforce):
        chunked, spec = workforce.chunked()
        name = workforce.changing_employees[0]
        slots = spec.slots_of_member(name)
        assert len(slots) >= 2
        rows = [spec.slot_row(s) for s in slots]
        assert len(set(rows)) == len(rows)

    def test_chunked_query_roundtrip(self, workforce):
        """Chunk engine agrees with the semantic engine on a forward query."""
        from repro.core.perspective import PerspectiveSet, Semantics
        from repro.core.perspective_cube import run_perspective_query
        from repro.core.scenario import NegativeScenario
        from repro.olap.missing import is_missing

        chunked, spec = workforce.chunked()
        name = workforce.changing_employees[0]
        pset = PerspectiveSet.from_names(["Jan", "Jul"], workforce.employee_varying)
        result = run_perspective_query(
            spec, [name], pset, Semantics.FORWARD
        )
        reference = NegativeScenario(
            "Department", ["Jan", "Jul"], Semantics.FORWARD
        ).apply(workforce.cube)
        months = chunked.axis("Period").labels
        for label, data in result.rows.items():
            for t, month in enumerate(months):
                got = data[t, 0, 0, 0, 0, 0]
                expected = reference.leaf_cube.value(
                    workforce.schema.address(
                        Department=label,
                        Period=month,
                        Account=workforce.accounts[0],
                        Scenario="Current",
                        Currency="Local",
                        Version="BU Version_1",
                        Value="HSP_InputValue",
                    )
                )
                if is_missing(expected):
                    assert np.isnan(got)
                else:
                    assert got == expected
