"""HTTP front end: endpoint contracts, status mapping, quotas, shedding."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError, ShardError
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.olap.missing import is_missing
from repro.service import (
    CircuitBreaker,
    ShardedQueryService,
    TenantQuotas,
    make_server,
)

QUERY = (
    "SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS, "
    "{[Organization].Members} ON ROWS "
    "FROM Warehouse WHERE ([NY], [Salary])"
)
SPANNING = (
    "SELECT {Time.[Jan]} ON COLUMNS, {[FTE]} ON ROWS "
    "FROM Warehouse WHERE ([NY], [Salary])"
)


@pytest.fixture(scope="module")
def service():
    with ShardedQueryService("running", n_shards=2, chunk=2) as svc:
        yield svc


@pytest.fixture(scope="module")
def base_url(service):
    server = make_server(
        service, port=0, quotas=TenantQuotas(limits={"blocked": 0})
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(base_url, path, payload=None, headers=None):
    """Return (status, headers, parsed body) without raising on 4xx/5xx."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base_url + path, data=data)
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status, info, raw = response.status, response.headers, response.read()
    except urllib.error.HTTPError as error:
        status, info, raw = error.code, error.headers, error.read()
    content_type = info.get("Content-Type", "")
    body = json.loads(raw) if content_type.startswith("application/json") else raw
    return status, info, body


class TestQueryEndpoint:
    def test_grid_matches_local_evaluation(self, service, base_url):
        status, _, body = _request(base_url, "/v1/query", {"query": QUERY})
        assert status == 200
        local = service.warehouse.query(QUERY)
        expected = [
            [None if is_missing(v) else float(v) for v in row]
            for row in local.cells
        ]
        assert body["cells"] == expected
        assert [t["labels"] for t in body["rows"]] == [
            list(t.labels) for t in local.rows
        ]
        assert body["stats"]["sharded"] == 2

    def test_axis_tuples_carry_coordinates(self, base_url):
        _, _, body = _request(base_url, "/v1/query", {"query": QUERY})
        first = body["columns"][0]
        assert first["coordinates"] == [["Time", "Jan"]]

    def test_explain_returns_plan_text(self, base_url):
        status, _, body = _request(base_url, "/v1/explain", {"query": QUERY})
        assert status == 200
        assert body["explain"].startswith("EXPLAIN")
        assert "cube=Warehouse" in body["explain"]

    def test_bad_mdx_is_client_error(self, base_url):
        status, _, body = _request(
            base_url, "/v1/query", {"query": "SELECT nonsense FROM nowhere"}
        )
        assert status == 400
        assert body["error"].endswith("Error")

    def test_unknown_member_is_client_error(self, base_url):
        status, _, body = _request(
            base_url,
            "/v1/query",
            {"query": QUERY.replace("[Organization].Members", "{[Nobody]}")},
        )
        assert status == 400

    def test_missing_query_field_is_client_error(self, base_url):
        status, _, body = _request(base_url, "/v1/query", {"analyze": True})
        assert status == 400
        assert "query" in body["message"]

    def test_invalid_json_body_is_client_error(self, base_url):
        request = urllib.request.Request(
            base_url + "/v1/query", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_paths_are_404(self, base_url):
        for path, payload in (("/v1/nope", {"query": QUERY}), ("/nope", None)):
            status, _, body = _request(base_url, path, payload)
            assert status == 404
            assert body["error"] == "NotFound"


class TestObservability:
    def test_metrics_exposition(self, base_url):
        _request(base_url, "/v1/query", {"query": QUERY})
        status, info, body = _request(base_url, "/metrics")
        assert status == 200
        assert info.get("Content-Type") == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert 'serve_http_requests_total{endpoint="/v1/query",status="200"}' in text
        assert "serve_queries_total" in text
        assert "serve_breaker_state" in text

    def test_healthz_is_200_while_shards_live(self, base_url):
        status, _, body = _request(base_url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert len(body["shards"]) == 2


class TestAdmission:
    def test_blocked_tenant_is_shed_with_429(self, base_url):
        status, _, body = _request(
            base_url,
            "/v1/query",
            {"query": QUERY},
            headers={"X-Tenant": "blocked"},
        )
        assert status == 429
        assert body["error"] == "ServiceOverloadedError"

    def test_tenant_from_body_field(self, base_url):
        status, _, _ = _request(
            base_url, "/v1/query", {"query": QUERY, "tenant": "blocked"}
        )
        assert status == 429

    def test_open_breaker_maps_to_503_under_fail_policy(
        self, service, base_url
    ):
        originals = list(service.breakers)
        try:
            for _ in range(service.breakers[0].failure_threshold):
                service.breakers[0].record_failure(ShardError("boom"))
            status, headers, body = _request(
                base_url, "/v1/query", {"query": SPANNING, "degrade": "fail"}
            )
            assert status == 503
            assert body["error"] == "CircuitOpenError"
            assert int(headers["Retry-After"]) >= 1
        finally:
            for i, old in enumerate(originals):
                fresh = CircuitBreaker()
                fresh._on_state_change = old._on_state_change
                service.breakers[i] = fresh

    def test_open_breaker_serves_fallback_by_default(self, service, base_url):
        reference_status, _, reference = _request(
            base_url, "/v1/query", {"query": SPANNING}
        )
        assert reference_status == 200
        originals = list(service.breakers)
        try:
            for _ in range(service.breakers[0].failure_threshold):
                service.breakers[0].record_failure(ShardError("boom"))
            status, _, body = _request(
                base_url, "/v1/query", {"query": SPANNING}
            )
            assert status == 200
            assert body["partial"] is False
            assert body["cells"] == reference["cells"]
        finally:
            for i, old in enumerate(originals):
                fresh = CircuitBreaker()
                fresh._on_state_change = old._on_state_change
                service.breakers[i] = fresh

    def test_open_breaker_partial_policy_returns_bottom_cells(
        self, service, base_url
    ):
        originals = list(service.breakers)
        try:
            for _ in range(service.breakers[0].failure_threshold):
                service.breakers[0].record_failure(ShardError("boom"))
            status, _, body = _request(
                base_url,
                "/v1/query",
                {"query": SPANNING, "degrade": "partial"},
            )
            assert status == 200
            assert body["partial"] is True
            assert body["degradations"]
            assert body["degradations"][0]["reason"] == "shard-down"
            assert any(
                cell is None for row in body["cells"] for cell in row
            )
        finally:
            for i, old in enumerate(originals):
                fresh = CircuitBreaker()
                fresh._on_state_change = old._on_state_change
                service.breakers[i] = fresh


class TestTenantQuotas:
    def test_acquire_release_roundtrip(self):
        quotas = TenantQuotas(max_inflight=2)
        assert quotas.acquire("t") and quotas.acquire("t")
        assert not quotas.acquire("t")
        assert quotas.inflight("t") == 2
        quotas.release("t")
        assert quotas.acquire("t")
        quotas.release("t")
        quotas.release("t")
        assert quotas.inflight("t") == 0

    def test_per_tenant_limits_override_default(self):
        quotas = TenantQuotas(max_inflight=4, limits={"small": 1})
        assert quotas.limit_for("small") == 1
        assert quotas.limit_for("other") == 4
        assert quotas.acquire("small")
        assert not quotas.acquire("small")

    def test_negative_default_rejected(self):
        with pytest.raises(ServiceError):
            TenantQuotas(max_inflight=-1)
