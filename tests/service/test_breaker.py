"""Circuit-breaker state machine, driven by an injected clock."""

from __future__ import annotations

from repro.errors import FaultInjectedError, MdxEvaluationError, StorageError
from repro.service.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


def make_breaker(threshold=3, reset_after_ms=100.0, **kwargs):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        reset_after_ms=reset_after_ms,
        clock=clock,
        **kwargs,
    )
    return breaker, clock


class TestTripping:
    def test_trips_after_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure(FaultInjectedError("boom"))
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(StorageError("bad chunk"))
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure(FaultInjectedError("boom"))
        breaker.record_success()
        breaker.record_failure(FaultInjectedError("boom"))
        assert breaker.state is BreakerState.CLOSED

    def test_user_errors_never_trip(self):
        breaker, _ = make_breaker(threshold=1)
        for _ in range(10):
            breaker.record_failure(MdxEvaluationError("your query is wrong"))
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()


class TestHalfOpen:
    def tripped(self, **kwargs):
        breaker, clock = make_breaker(threshold=1, **kwargs)
        breaker.record_failure(FaultInjectedError("boom"))
        assert breaker.state is BreakerState.OPEN
        return breaker, clock

    def test_open_rejects_until_backoff_elapses(self):
        breaker, clock = self.tripped(reset_after_ms=100.0)
        clock.advance_ms(99.0)
        assert not breaker.allow()
        clock.advance_ms(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.tripped(reset_after_ms=100.0)
        clock.advance_ms(100.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else sheds

    def test_probe_success_closes(self):
        breaker, clock = self.tripped(reset_after_ms=100.0)
        clock.advance_ms(100.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_backoff(self):
        breaker, clock = self.tripped(reset_after_ms=100.0)
        clock.advance_ms(100.0)
        assert breaker.allow()
        breaker.record_failure(FaultInjectedError("still broken"))
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance_ms(100.0)
        assert breaker.allow()  # half-open again after another backoff


class TestStateChangeCallback:
    def test_transitions_are_reported(self):
        seen: list[BreakerState] = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_after_ms=50.0,
            clock=clock,
            on_state_change=seen.append,
        )
        breaker.record_failure(FaultInjectedError("boom"))
        clock.advance_ms(50.0)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]
