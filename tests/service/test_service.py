"""QueryService: admission control, deadlines, shedding, breaker wiring."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    CircuitOpenError,
    FaultInjectedError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.faults import FAULTS
from repro.mdx.budget import QueryBudget
from repro.service import CircuitBreaker, QueryService
from repro.warehouse import Warehouse

QUERY = """
    SELECT {Time.[Jan], Time.[Feb]} ON COLUMNS, {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class Blocker:
    """Patches a snapshot's ``query`` to block until released."""

    def __init__(self, snapshot) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self._real = snapshot.query
        snapshot.query = self  # instance attribute shadows the method

    def __call__(self, text, analyze=True, budget=None):
        self.started.set()
        assert self.release.wait(30.0), "blocker never released"
        return self._real(text, analyze=analyze, budget=budget)


class TestSubmitResult:
    def test_round_trip(self, warehouse):
        with QueryService(warehouse, workers=2) as service:
            ticket = service.submit(QUERY)
            result = ticket.result(timeout=30.0)
        assert result.cells == warehouse.query(QUERY).cells

    def test_result_times_out_while_pending(self, warehouse):
        service = QueryService(warehouse, workers=1)
        blocker = Blocker(warehouse.snapshot())
        ticket = service.submit(QUERY)
        assert blocker.started.wait(10.0)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        assert not ticket.done()
        blocker.release.set()
        assert ticket.result(timeout=30.0) is not None
        service.close()

    def test_ticket_pins_submission_version(self, warehouse):
        with QueryService(warehouse, workers=1) as service:
            ticket = service.submit(QUERY)
            version = warehouse.cube.version
            assert ticket.snapshot_version == version
            assert ticket.result(timeout=30.0) is not None

    def test_error_is_reraised_in_caller(self, warehouse):
        with QueryService(warehouse, workers=1) as service:
            ticket = service.submit("SELECT FROM nonsense !!!")
            with pytest.raises(Exception):
                ticket.result(timeout=30.0)
            assert ticket.exception() is not None


class TestAdmissionControl:
    def test_queue_full_sheds_immediately(self, warehouse):
        service = QueryService(warehouse, workers=1, queue_depth=1)
        blocker = Blocker(warehouse.snapshot())
        running = service.submit(QUERY)
        assert blocker.started.wait(10.0)
        queued = service.submit(QUERY)  # fills the queue
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(QUERY)
        assert excinfo.value.reason == "queue-full"
        shed = warehouse.metrics.counter(
            "service_shed_total", reason="queue-full"
        )
        assert shed.sample() == 1
        blocker.release.set()
        assert running.result(timeout=30.0) is not None
        assert queued.result(timeout=30.0) is not None
        service.close()

    def test_deadline_expired_in_queue_sheds(self, warehouse):
        clock = FakeClock()
        service = QueryService(warehouse, workers=1, clock=clock)
        blocker = Blocker(warehouse.snapshot())
        first = service.submit(QUERY)
        assert blocker.started.wait(10.0)
        doomed = service.submit(QUERY, deadline_ms=50.0)
        clock.advance_ms(100.0)  # the deadline dies while queued
        blocker.release.set()
        error = doomed.exception(timeout=30.0)
        assert isinstance(error, ServiceOverloadedError)
        assert error.reason == "deadline-expired"
        assert first.result(timeout=30.0) is not None
        service.close()

    def test_budget_deadline_is_the_default_deadline(self, warehouse):
        clock = FakeClock()
        service = QueryService(warehouse, workers=1, clock=clock)
        blocker = Blocker(warehouse.snapshot())
        first = service.submit(QUERY)
        assert blocker.started.wait(10.0)
        doomed = service.submit(QUERY, budget=QueryBudget(deadline_ms=40.0))
        clock.advance_ms(80.0)
        blocker.release.set()
        error = doomed.exception(timeout=30.0)
        assert isinstance(error, ServiceOverloadedError)
        assert error.reason == "deadline-expired"
        first.result(timeout=30.0)
        service.close()

    def test_generous_deadline_still_completes(self, warehouse):
        with QueryService(
            warehouse, workers=2, default_deadline_ms=60_000.0
        ) as service:
            result = service.submit(QUERY).result(timeout=30.0)
        assert not result.is_partial

    def test_cell_cap_budget_degrades_not_fails(self, warehouse):
        with QueryService(warehouse, workers=1) as service:
            ticket = service.submit(
                QUERY, analyze=False, budget=QueryBudget(max_cells=1)
            )
            result = ticket.result(timeout=30.0)
        assert result.is_partial
        assert result.degradations[0].reason == "cell-cap"


class TestCircuitBreaker:
    def test_repeated_faults_open_the_circuit(self, warehouse):
        breaker = CircuitBreaker(failure_threshold=2, reset_after_ms=60_000.0)
        FAULTS.fail_with("mdx.cell")
        with QueryService(warehouse, workers=1, breaker=breaker) as service:
            for _ in range(2):
                ticket = service.submit(QUERY, analyze=False)
                assert isinstance(
                    ticket.exception(timeout=30.0), FaultInjectedError
                )
            with pytest.raises(CircuitOpenError):
                service.submit(QUERY, analyze=False)
            assert warehouse.metrics.gauge("circuit_state").sample() == 1
            assert (
                warehouse.metrics.counter(
                    "service_shed_total", reason="circuit-open"
                ).sample()
                == 1
            )

    def test_circuit_recovers_after_backoff(self, warehouse):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100.0, clock=clock
        )
        FAULTS.fail_transient("mdx.cell", times=1)
        with QueryService(warehouse, workers=1, breaker=breaker) as service:
            bad = service.submit(QUERY, analyze=False)
            assert bad.exception(timeout=30.0) is not None
            with pytest.raises(CircuitOpenError):
                service.submit(QUERY, analyze=False)
            clock.advance_ms(100.0)  # backoff elapses -> half-open probe
            probe = service.submit(QUERY, analyze=False)
            assert probe.result(timeout=30.0) is not None
            assert warehouse.metrics.gauge("circuit_state").sample() == 0

    def test_service_metrics_reach_prometheus_export(self, warehouse):
        with QueryService(warehouse, workers=1, queue_depth=1) as service:
            blocker = Blocker(warehouse.snapshot())
            first = service.submit(QUERY)
            assert blocker.started.wait(10.0)
            queued = service.submit(QUERY)
            with pytest.raises(ServiceOverloadedError):
                service.submit(QUERY)
            blocker.release.set()
            first.result(timeout=30.0)
            queued.result(timeout=30.0)
        snapshot = warehouse.metrics.snapshot()
        assert snapshot["service_shed_total{reason=queue-full}"] == 1
        assert snapshot["circuit_state"] == 0
        prom = warehouse.metrics.to_prometheus()
        assert 'service_shed_total{reason="queue-full"} 1' in prom
        assert "\ncircuit_state 0" in prom


class TestWorkerCrashSafety:
    # The escaping SystemExit in the worker thread is the point of the
    # test; pytest reports it as an unhandled thread exception.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_system_exit_completes_ticket_then_escapes_worker(self, warehouse):
        service = QueryService(warehouse, workers=2)
        snapshot = warehouse.snapshot()
        real = snapshot.query

        def exploder(text, analyze=True, budget=None):
            snapshot.query = real  # one-shot: later queries run normally
            raise SystemExit(3)

        snapshot.query = exploder
        ticket = service.submit(QUERY)
        error = ticket.exception(timeout=30.0)
        # The keep-alive completes the ticket (the caller sees the exit,
        # never a hang) but must NOT swallow the interpreter exit: the
        # worker re-raises and dies, and the error is counted.
        assert isinstance(error, SystemExit)
        assert (
            warehouse.metrics.value(
                "service_worker_errors_total", kind="SystemExit"
            )
            == 1
        )
        # The surviving worker keeps serving.
        assert service.submit(QUERY).result(timeout=30.0) is not None
        service.close()


class TestLifecycle:
    def test_close_drains_queued_work(self, warehouse):
        service = QueryService(warehouse, workers=1)
        tickets = [service.submit(QUERY) for _ in range(4)]
        service.close(drain=True, timeout=30.0)
        assert all(t.result(timeout=1.0) is not None for t in tickets)

    def test_close_without_drain_fails_queued_tickets(self, warehouse):
        service = QueryService(warehouse, workers=1, queue_depth=4)
        blocker = Blocker(warehouse.snapshot())
        running = service.submit(QUERY)
        assert blocker.started.wait(10.0)
        queued = [service.submit(QUERY) for _ in range(2)]
        closer = threading.Thread(
            target=service.close, kwargs={"drain": False, "timeout": 30.0}
        )
        closer.start()
        for ticket in queued:
            assert isinstance(
                ticket.exception(timeout=30.0), ServiceStoppedError
            )
        blocker.release.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        assert running.result(timeout=30.0) is not None

    def test_submit_after_close_is_rejected(self, warehouse):
        service = QueryService(warehouse, workers=1)
        service.close()
        with pytest.raises(ServiceStoppedError):
            service.submit(QUERY)

    def test_close_is_idempotent(self, warehouse):
        service = QueryService(warehouse, workers=1)
        service.close()
        service.close()

    def test_invalid_sizes_rejected(self, warehouse):
        with pytest.raises(ValueError):
            QueryService(warehouse, workers=0)
        with pytest.raises(ValueError):
            QueryService(warehouse, workers=1, queue_depth=0)
