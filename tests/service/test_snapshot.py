"""Snapshot isolation: frozen cubes, pinned warehouse views, COW forks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SnapshotImmutableError
from repro.service.snapshot import WarehouseSnapshot
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.warehouse import Warehouse

QUERY = """
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar]} ON COLUMNS,
           {[Joe], [Lisa]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


def first_leaf(cube):
    return next(iter(cube.leaf_cells()))[0]


class TestFrozenCube:
    def test_frozen_copy_rejects_writes(self, warehouse):
        frozen = warehouse.cube.frozen_copy()
        assert frozen.frozen
        addr = first_leaf(frozen)
        with pytest.raises(SnapshotImmutableError):
            frozen.set_value(addr, 99.0)
        with pytest.raises(SnapshotImmutableError):
            frozen.clear_stored_derived()

    def test_frozen_copy_pins_version_and_data(self, warehouse):
        cube = warehouse.cube
        frozen = cube.frozen_copy()
        addr = first_leaf(cube)
        before = frozen.value(addr)
        cube.set_value(addr, 1234.5)
        assert frozen.version != cube.version
        assert frozen.value(addr) == before
        assert cube.value(addr) == 1234.5

    def test_copy_of_frozen_thaws(self, warehouse):
        frozen = warehouse.cube.frozen_copy()
        thawed = frozen.copy()
        assert not thawed.frozen
        addr = first_leaf(thawed)
        thawed.set_value(addr, 7.0)  # must not raise
        assert frozen.value(addr) != 7.0 or thawed.value(addr) == 7.0


class TestWarehouseSnapshot:
    def test_snapshot_is_cached_per_version(self, warehouse):
        snap1 = warehouse.snapshot()
        snap2 = warehouse.snapshot()
        assert snap1 is snap2
        warehouse.cube.set_value(first_leaf(warehouse.cube), 55.0)
        snap3 = warehouse.snapshot()
        assert snap3 is not snap1
        assert snap3.version == warehouse.cube.version

    def test_snapshot_of_snapshot_is_itself(self, warehouse):
        snap = warehouse.snapshot()
        assert snap.snapshot() is snap

    def test_requires_frozen_cube(self, warehouse):
        with pytest.raises(ValueError):
            WarehouseSnapshot(warehouse, warehouse.cube.copy())

    def test_snapshot_queries_are_repeatable_across_mutations(self, warehouse):
        snap = warehouse.snapshot()
        before = snap.query(QUERY, analyze=False)
        # Trash the live cube thoroughly.
        for addr, _ in list(warehouse.cube.leaf_cells()):
            warehouse.cube.set_value(addr, 0.25)
        after = snap.query(QUERY, analyze=False)
        assert before.cells == after.cells
        # ... while the live warehouse sees the new data.
        live = warehouse.query(QUERY, analyze=False)
        assert live.cells != before.cells

    def test_snapshot_carries_named_sets(self, warehouse):
        warehouse.define_named_set("Pair-Set1", ["Joe", "Lisa"])
        snap = warehouse.snapshot()
        named = snap.named_set("Pair-Set1")
        assert named is not None and named.members == ("Joe", "Lisa")

    def test_snapshot_shares_observability_surfaces(self, warehouse):
        snap = warehouse.snapshot()
        assert snap.metrics is warehouse.metrics
        assert snap.slow_log is warehouse.slow_log
        assert snap.scenario_cache is warehouse.scenario_cache


class TestChunkStoreFork:
    def make_store(self) -> ChunkStore:
        grid = ChunkGrid([4], [2])
        store = ChunkStore(grid)
        store.load((0,), np.array([1.0, 2.0]))
        store.load((1,), np.array([3.0, 4.0]))
        return store

    def test_fork_shares_arrays_without_copying(self):
        store = self.make_store()
        fork = store.fork()
        assert fork.peek((0,)) is store.peek((0,))

    def test_write_after_fork_leaves_fork_pinned(self):
        store = self.make_store()
        fork = store.fork()
        store.write((0,), np.array([9.0, 9.0]))
        assert store.peek((0,))[0] == 9.0
        assert fork.peek((0,))[0] == 1.0

    def test_fork_write_leaves_parent_pinned(self):
        store = self.make_store()
        fork = store.fork()
        fork.write((1,), np.array([8.0, 8.0]))
        assert store.peek((1,))[0] == 3.0
        assert fork.peek((1,))[0] == 8.0

    def test_fork_has_fresh_io_stats(self):
        store = self.make_store()
        store.read((0,))
        fork = store.fork()
        assert fork.stats.chunk_reads == 0
        assert store.stats.chunk_reads == 1
