"""ShardedQueryService: bit-identical scatter-gather, breakers, fallbacks.

These tests spawn real shard processes (multiprocessing ``spawn``), so
the expensive services are module-scoped and shared across tests.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import (
    CircuitOpenError,
    FaultInjectedError,
    MdxAnalysisError,
    ServiceStoppedError,
    ShardError,
)
from repro.mdx.budget import QueryBudget
from repro.service import BreakerState, ShardedQueryService
from repro.service.stress import STRESS_QUERIES
from repro.workload.workforce import MONTHS, build_workforce

RUNNING_QUERIES = STRESS_QUERIES + (
    # category rollup rows: spanning cells (no single shard owns [FTE])
    """
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[FTE], [PTE], [Contractor]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
    # NON EMPTY pruning must match the single-process evaluator
    """
    SELECT NON EMPTY {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]}
           ON COLUMNS,
           NON EMPTY {[Organization].Members} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
)


@pytest.fixture(scope="module")
def running_service():
    with ShardedQueryService("running", n_shards=2, chunk=2) as service:
        yield service


@pytest.fixture(scope="module")
def workforce_service():
    with ShardedQueryService("workforce", n_shards=3, chunk=2) as service:
        yield service


class TestRunningExampleParity:
    @pytest.mark.parametrize("index", range(len(RUNNING_QUERIES)))
    def test_grid_matches_single_process(self, running_service, index):
        text = RUNNING_QUERIES[index]
        local = running_service.warehouse.query(text)
        sharded = running_service.execute(text)
        assert sharded.columns == local.columns
        assert sharded.rows == local.rows
        assert repr(sharded.cells) == repr(local.cells)

    def test_stats_mark_sharded_execution(self, running_service):
        result = running_service.execute(RUNNING_QUERIES[0])
        assert result.stats["sharded"] == 2
        assert (
            result.stats["owned_cells"]
            + result.stats["spanning_cells"]
            + result.stats["local_cells"]
            == result.stats["cells_evaluated"]
        )

    def test_budget_falls_back_to_local(self, running_service):
        result = running_service.execute(
            RUNNING_QUERIES[0], budget=QueryBudget(max_cells=10_000)
        )
        assert "sharded" not in result.stats  # full local evaluation

    def test_analyze_rejects_bad_member(self, running_service):
        with pytest.raises(MdxAnalysisError):
            running_service.execute(
                "SELECT {Time.[Jan]} ON COLUMNS, {[Nobody]} ON ROWS "
                "FROM Warehouse"
            )

    def test_health_reports_live_shards(self, running_service):
        health = running_service.health()
        assert health["status"] == "ok"
        assert health["dimension"] == "Organization"
        assert [s["alive"] for s in health["shards"]] == [True, True]


class TestWorkforceParity:
    def test_grids_match_across_cell_classes(self, workforce_service):
        workforce = build_workforce()
        employee = workforce.changing_employees[0]
        account = workforce.accounts[0]
        months = ", ".join(f"Period.[{m}]" for m in MONTHS)
        queries = (
            # spanning: department + root rollups cross shard boundaries
            f"SELECT {{{months}}} ON COLUMNS, {{[Department]}} ON ROWS "
            f"FROM [App].[Db]",
            # owned: one member's instances live on exactly one shard
            f"SELECT {{{months}}} ON COLUMNS, {{[{employee}]}} ON ROWS "
            f"FROM [Db] WHERE ([{account}], [Current])",
            # owned under a scenario: shard-local perspective apply
            f"WITH PERSPECTIVE {{(Jan), (Apr), (Jul), (Oct)}} FOR Department "
            f"DYNAMIC FORWARD VISUAL "
            f"SELECT {{{months}}} ON COLUMNS, {{[{employee}]}} ON ROWS "
            f"FROM [App].[Db]",
            # scenario cells above any member: coordinator-local residue
            f"WITH PERSPECTIVE {{(Jan), (Jul)}} FOR Department STATIC "
            f"SELECT {{{months}}} ON COLUMNS, {{[Department].Children}} "
            f"ON ROWS FROM [Db]",
            # named sets resolve identically on the hollow context
            f"SELECT {{{months}}} ON COLUMNS, "
            f"{{EmployeesWithAtleastOneMove-Set1}} ON ROWS FROM [Db]",
        )
        local = workforce.warehouse
        for text in queries:
            expected = local.query(text)
            got = workforce_service.execute(text)
            assert got.columns == expected.columns, text[:60]
            assert got.rows == expected.rows, text[:60]
            assert repr(got.cells) == repr(expected.cells), text[:60]

    def test_plan_partitions_every_member(self, workforce_service):
        plan = workforce_service.plan
        owned = [m for shard in plan.shards for m in shard]
        assert len(owned) == len(set(owned))
        dim = workforce_service.warehouse.schema.dimension("Department")
        for member in dim.leaf_members():
            assert member.name in plan.member_shard


class TestFailureHandling:
    def test_worker_faults_trip_breaker_then_fail_fast(self):
        # Workers arm failpoints from REPRO_FAULTS at spawn; "ping" is
        # exempt so startup succeeds, then every shard request fails.
        previous = os.environ.get("REPRO_FAULTS")
        os.environ["REPRO_FAULTS"] = "shard.exec:always"
        try:
            service = ShardedQueryService("running", n_shards=2, chunk=2)
        finally:
            if previous is None:
                del os.environ["REPRO_FAULTS"]
            else:
                os.environ["REPRO_FAULTS"] = previous
        try:
            spanning = (
                "SELECT {Time.[Jan]} ON COLUMNS, {[FTE]} ON ROWS "
                "FROM Warehouse WHERE ([NY], [Salary])"
            )
            for _ in range(service.breakers[0].failure_threshold):
                with pytest.raises(FaultInjectedError):
                    service.execute(spanning)
            assert service.breakers[0].state is BreakerState.OPEN
            with pytest.raises(CircuitOpenError):
                service.execute(spanning, degrade="fail")
            assert service.health()["shards"][0]["breaker"] == "open"
            # The default fallback policy routes around the open breaker
            # and still answers bit-identically from the coordinator.
            fallback = service.execute(spanning)
            expected = service.warehouse.query(spanning)
            assert repr(fallback.cells) == repr(expected.cells)
            assert not fallback.degradations
        finally:
            service.close()

    def test_execute_after_close_raises_typed_error(self):
        service = ShardedQueryService("running", n_shards=1, chunk=8)
        service.close()
        with pytest.raises(ServiceStoppedError):
            service.execute(RUNNING_QUERIES[0])

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardError):
            ShardedQueryService("running", n_shards=0)
