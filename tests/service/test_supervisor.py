"""ShardSupervisor: respawn round trips, storm cap, breaker probes.

These tests drive the supervisor directly over real spawned shard
processes, with tight heartbeat/backoff tuning so respawns land in
milliseconds rather than the serving defaults.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import FaultInjectedError, ShardDownError, ShardError
from repro.faults import FAULTS
from repro.obs.metrics import MetricsRegistry
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.shard import ShardSpec, build_shard_plan, build_workload
from repro.service.supervisor import ShardSupervisor, SupervisorConfig

TIGHT = SupervisorConfig(
    heartbeat_s=0.02,
    ping_timeout_s=30.0,
    backoff_base_ms=10.0,
    backoff_max_ms=100.0,
    storm_window_s=30.0,
    storm_cap=50,
    start_timeout_s=60.0,
    rpc_timeout_s=30.0,
)


def _single_shard_spec() -> ShardSpec:
    warehouse = build_workload("running")
    plan = build_shard_plan(warehouse, "Organization", 1, chunk=8)
    return ShardSpec(
        workload="running",
        dimension="Organization",
        owned_members=tuple(plan.shards[0]),
        shard_index=0,
        n_shards=1,
    )


def _wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def spec():
    return _single_shard_spec()


class TestRespawn:
    def test_kill_then_respawn_round_trip(self, spec):
        with ShardSupervisor([spec], config=TIGHT) as supervisor:
            before = supervisor.client(0)
            assert before.request({"op": "ping"})["ok"]
            supervisor.kill(0)
            # The killed client fails fast and the supervisor hands out
            # a typed error until the replacement is up.
            with pytest.raises(ShardDownError):
                supervisor.client(0)
            fresh = supervisor.await_live(0, timeout=30.0)
            assert fresh is not None
            assert fresh is not before
            assert fresh.request({"op": "ping"})["ok"]
            assert supervisor.restarts(0) == 1
            status = supervisor.status()[0]
            assert status["state"] == "live"
            assert status["alive"] is True
            assert status["restarts"] == 1

    def test_shard_down_error_carries_retry_hints(self, spec):
        with ShardSupervisor([spec], config=TIGHT) as supervisor:
            supervisor.kill(0)
            with pytest.raises(ShardDownError) as excinfo:
                supervisor.client(0)
            assert excinfo.value.restarts == 0
            assert excinfo.value.retry_after_s > 0
            assert supervisor.await_live(0, timeout=30.0) is not None

    def test_respawned_worker_rearms_faults_from_env(self, spec, monkeypatch):
        # The first spawn happens with no faults armed; the respawn must
        # pick up the REPRO_FAULTS now in the environment (spawned
        # workers re-arm from os.environ, not from a stale snapshot).
        with ShardSupervisor([spec], config=TIGHT) as supervisor:
            assert supervisor.client(0).request(
                {"op": "partial", "addresses": []}
            )["ok"]
            monkeypatch.setenv("REPRO_FAULTS", "shard.exec:always")
            supervisor.kill(0)
            fresh = supervisor.await_live(0, timeout=30.0)
            assert fresh is not None
            with pytest.raises(FaultInjectedError):
                fresh.request({"op": "partial", "addresses": []})

    def test_retry_after_is_generic_hint_when_all_live(self, spec):
        with ShardSupervisor([spec], config=TIGHT) as supervisor:
            assert supervisor.retry_after_s() == 1.0
            assert supervisor.retry_after_s(0) == 1.0


class TestStormCap:
    def test_storm_cap_parks_slot_as_failed(self, spec):
        config = SupervisorConfig(
            heartbeat_s=0.01,
            backoff_base_ms=1.0,
            backoff_max_ms=5.0,
            storm_window_s=60.0,
            storm_cap=3,
            start_timeout_s=60.0,
            rpc_timeout_s=30.0,
        )
        supervisor = ShardSupervisor([spec], config=config)
        try:
            # Every respawn attempt dies at the failpoint, so the cap's
            # sliding window fills and the slot parks as "failed".
            FAULTS.fail_with("supervisor.respawn")
            supervisor.kill(0)
            assert _wait_for(
                lambda: supervisor.status()[0]["state"] == "failed"
            )
            status = supervisor.status()[0]
            assert "restart storm" in status["last_error"]
            assert status["next_attempt_in_s"] > 0
            assert supervisor.restarts(0) == 0
            with pytest.raises(ShardDownError):
                supervisor.client(0)
        finally:
            FAULTS.disarm("supervisor.respawn")
            supervisor.close()


class TestBreakerProbes:
    def test_half_open_probe_closes_breaker_via_ping(self, spec):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_ms=10.0)
        supervisor = ShardSupervisor([spec], config=TIGHT, metrics=metrics)
        try:
            supervisor.attach_breakers([breaker])
            breaker.record_failure(ShardError("boom"))
            assert breaker.state is BreakerState.OPEN
            # After the backoff the monitor spends the half-open probe
            # slot on a supervisor ping; the live worker answers and the
            # breaker closes without risking a user query.
            assert _wait_for(lambda: breaker.state is BreakerState.CLOSED)
            assert metrics.value("breaker_probe_total", outcome="ok") >= 1
        finally:
            supervisor.close()

    def test_probe_against_down_shard_reopens_breaker(self, spec):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_ms=10.0)
        config = SupervisorConfig(
            heartbeat_s=0.01,
            backoff_base_ms=200.0,
            backoff_max_ms=500.0,
            start_timeout_s=60.0,
            rpc_timeout_s=30.0,
        )
        supervisor = ShardSupervisor([spec], config=config, metrics=metrics)
        try:
            supervisor.attach_breakers([breaker])
            FAULTS.fail_with("supervisor.respawn")
            supervisor.kill(0)
            breaker.record_failure(ShardError("boom"))
            # With no live worker the probe slot is returned as a
            # failure (outcome="down") and the breaker re-opens.
            assert _wait_for(
                lambda: metrics.value("breaker_probe_total", outcome="down")
                >= 1
            )
            assert breaker.state in (BreakerState.OPEN, BreakerState.HALF_OPEN)
        finally:
            FAULTS.disarm("supervisor.respawn")
            supervisor.close()

    def test_attach_breakers_rejects_wrong_count(self, spec):
        with ShardSupervisor([spec], config=TIGHT) as supervisor:
            with pytest.raises(ShardError):
                supervisor.attach_breakers([CircuitBreaker(), CircuitBreaker()])
