"""The chaos suite: concurrent queries vs. mutations vs. armed faults.

This is the acceptance harness for the whole robustness PR: 8 client
threads, live cube mutators, and a failpoint-arming thread race for ≥3
seconds, and afterwards every completed query is replayed serially
against the snapshot it was pinned to.  The run passes only if

* no thread observed an untyped exception (shedding, breaker, injected
  faults, and budget errors are the *only* legal failures), and
* every replayed grid is bit-identical to the concurrent answer.
"""

from __future__ import annotations

import os

import pytest

from repro.service.stress import StressConfig, run_stress


def _widened() -> bool:
    return "ci-matrix" in os.environ.get("REPRO_FAULTS", "")


class TestChaos:
    def test_full_storm_with_faults(self):
        config = StressConfig(workers=8, duration_s=3.0, seed=1337)
        report = run_stress(config)
        assert report.passed, report.render()
        # The storm must actually have exercised the machinery.
        assert report.submitted > 100
        assert report.completed_ok > 0
        assert report.mutations > 0
        assert report.fault_errors > 0
        assert report.verified > 0

    def test_smoke_without_faults(self):
        config = StressConfig.smoke(seed=7, fault_mix=False)
        report = run_stress(config)
        assert report.passed, report.render()
        assert report.fault_errors == 0
        assert report.breaker_trips == 0

    @pytest.mark.skipif(
        not _widened(), reason="widened matrix only under REPRO_FAULTS=ci-matrix"
    )
    def test_extra_seeds_under_ci_matrix(self):
        for seed in (11, 23):
            report = run_stress(StressConfig.smoke(seed=seed))
            assert report.passed, report.render()


class TestReportShape:
    def test_report_serialises(self):
        report = run_stress(
            StressConfig(
                workers=2, duration_s=0.3, fault_mix=False, verify_limit=20
            )
        )
        doc = report.to_dict()
        assert doc["passed"] == report.passed
        assert doc["workers"] == 2
        assert isinstance(report.render(), str)
