"""Chaos proof: shard kills at decisive moments, hedging, and the storm.

The invariant under every kill schedule: a non-partial answer is
bit-identical to the single-process evaluator, failures surface as typed
errors or honest ⊥ cells (never hangs, never wrong numbers), and the
pool heals — a post-chaos ``degrade="fail"`` replay answers again.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ShardDownError, ShardError
from repro.faults import FAULTS
from repro.olap.missing import is_missing
from repro.service import ShardedQueryService, SupervisorConfig
from repro.service.shard import ShardClient, ShardSpec
from repro.service.stress import ShardStormConfig, run_shard_storm
from tests.service.test_supervisor import _single_shard_spec, _wait_for

SPANNING = (
    "SELECT {Time.[Jan], Time.[Feb]} ON COLUMNS, {[FTE], [PTE]} ON ROWS "
    "FROM Warehouse WHERE ([NY], [Salary])"
)
OWNED = (
    "SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS, "
    "{[Organization].Members} ON ROWS "
    "FROM Warehouse WHERE ([NY], [Salary])"
)

FAST_RESPAWN = SupervisorConfig(
    heartbeat_s=0.02,
    backoff_base_ms=20.0,
    backoff_max_ms=200.0,
    storm_window_s=10.0,
    storm_cap=100,
    start_timeout_s=60.0,
    rpc_timeout_s=30.0,
)

SLOW_RESPAWN = SupervisorConfig(
    heartbeat_s=0.02,
    backoff_base_ms=20_000.0,
    backoff_max_ms=20_000.0,
    start_timeout_s=60.0,
    rpc_timeout_s=30.0,
)


class TestKillBeforeScatter:
    def test_policies_when_a_shard_is_down_at_admission(self):
        # Slow respawn pins the shard down for the whole test: each
        # policy sees the same dead-shard world.
        service = ShardedQueryService(
            "running",
            n_shards=2,
            chunk=2,
            supervisor_config=SLOW_RESPAWN,
            rpc_timeout_ms=5_000.0,
        )
        try:
            expected = service.warehouse.query(OWNED)
            service.supervisor.kill(0)
            _wait_for(lambda: service.supervisor.status()[0]["state"] != "live")

            with pytest.raises(ShardDownError):
                service.execute(OWNED, degrade="fail")

            fallback = service.execute(OWNED, degrade="fallback")
            assert repr(fallback.cells) == repr(expected.cells)
            assert not fallback.degradations
            assert fallback.stats["fallback_cells"] > 0

            partial = service.execute(OWNED, degrade="partial")
            assert partial.is_partial
            assert all(
                d.reason == "shard-down" for d in partial.degradations
            )
            # Lost cells render ⊥; the reference has natural ⊥ cells too,
            # so only real-became-⊥ cells prove degradation.
            degraded_bottoms = sum(
                1
                for r, row in enumerate(partial.cells)
                for c, v in enumerate(row)
                if is_missing(v) and not is_missing(expected.cells[r][c])
            )
            skipped = sum(d.cells_skipped for d in partial.degradations)
            assert 0 < degraded_bottoms <= skipped
            # Cells the dead shard did not own are still exact.
            for r, row in enumerate(partial.cells):
                for c, value in enumerate(row):
                    if not is_missing(value):
                        assert repr(value) == repr(expected.cells[r][c])
        finally:
            service.close()

    def test_spanning_merge_is_never_partially_summed(self):
        # A spanning cell missing one shard's contribution must come
        # back ⊥ (or fallback-exact) — never a partial sum.
        service = ShardedQueryService(
            "running",
            n_shards=2,
            chunk=2,
            supervisor_config=SLOW_RESPAWN,
            rpc_timeout_ms=5_000.0,
        )
        try:
            expected = service.warehouse.query(SPANNING)
            service.supervisor.kill(1)
            _wait_for(lambda: service.supervisor.status()[1]["state"] != "live")

            fallback = service.execute(SPANNING, degrade="fallback")
            assert repr(fallback.cells) == repr(expected.cells)

            partial = service.execute(SPANNING, degrade="partial")
            for row in partial.cells:
                for value in row:
                    assert is_missing(value)
        finally:
            service.close()


class TestKillDuringGather:
    def test_respawn_retry_answers_bit_identically_under_fail_policy(self):
        service = ShardedQueryService(
            "running",
            n_shards=2,
            chunk=2,
            supervisor_config=FAST_RESPAWN,
            rpc_timeout_ms=30_000.0,
        )
        try:
            expected = service.warehouse.query(OWNED)
            # Wedge shard 0: the query's RPC queues behind the sleep,
            # then the kill lands mid-gather.
            service.supervisor.client(0).submit({"op": "sleep", "seconds": 20})
            killer = threading.Timer(
                0.3, lambda: service.supervisor.kill(0)
            )
            killer.start()
            try:
                result = service.execute(OWNED, degrade="fail")
            finally:
                killer.cancel()
            assert repr(result.cells) == repr(expected.cells)
            assert not result.degradations
            assert (
                service.warehouse.metrics.value(
                    "serve_shard_retries_total", shard="0", kind="respawn"
                )
                >= 1
            )
        finally:
            service.close()


class TestHedging:
    def test_slow_shard_hedges_to_local_bit_identical(self):
        service = ShardedQueryService(
            "running",
            n_shards=2,
            chunk=2,
            supervisor_config=FAST_RESPAWN,
            rpc_timeout_ms=30_000.0,
            hedge_ms=100.0,
        )
        try:
            expected = service.warehouse.query(OWNED)
            # Alive but slow: the worker sleeps past the hedge threshold.
            service.supervisor.client(0).submit({"op": "sleep", "seconds": 20})
            started = time.monotonic()
            result = service.execute(OWNED)  # default fallback policy
            elapsed = time.monotonic() - started
            assert repr(result.cells) == repr(expected.cells)
            assert not result.degradations
            assert elapsed < 15.0  # hedged, did not ride out the sleep
            assert (
                service.warehouse.metrics.value(
                    "serve_hedge_total", shard="0"
                )
                >= 1
            )
        finally:
            service.close()


class TestScatterGatherFaultpoints:
    def test_transient_scatter_fault_retries_in_place(self):
        service = ShardedQueryService(
            "running", n_shards=2, chunk=2, supervisor_config=FAST_RESPAWN
        )
        try:
            expected = service.warehouse.query(OWNED)
            FAULTS.fail_transient("serve.scatter", times=1)
            result = service.execute(OWNED, degrade="fail")
            assert repr(result.cells) == repr(expected.cells)
            retries = sum(
                service.warehouse.metrics.value(
                    "serve_shard_retries_total", shard=str(s), kind="transient"
                )
                for s in range(2)
            )
            assert retries >= 1
        finally:
            FAULTS.disarm("serve.scatter")
            service.close()

    def test_transient_gather_fault_regathers_same_pending(self):
        service = ShardedQueryService(
            "running", n_shards=2, chunk=2, supervisor_config=FAST_RESPAWN
        )
        try:
            expected = service.warehouse.query(OWNED)
            FAULTS.fail_transient("serve.gather", times=1)
            result = service.execute(OWNED, degrade="fail")
            assert repr(result.cells) == repr(expected.cells)
        finally:
            FAULTS.disarm("serve.gather")
            service.close()


class TestShardClientStartupFailures:
    def test_start_timeout_raises_typed_error_and_reaps_worker(self):
        spec = _single_shard_spec()
        with pytest.raises(ShardError, match="did not start"):
            ShardClient(spec, start_timeout=0.001)

    def test_unknown_workload_surfaces_hello_error_and_reaps(self):
        spec = ShardSpec(
            workload="no-such-workload",
            dimension="Organization",
            owned_members=("Joe",),
            shard_index=0,
            n_shards=1,
        )
        with pytest.raises(ShardError, match="unknown workload"):
            ShardClient(spec, start_timeout=60.0)

    def test_gather_on_killed_shard_raises_instead_of_hanging(self):
        client = ShardClient(_single_shard_spec(), start_timeout=60.0)
        try:
            pending = client.submit({"op": "sleep", "seconds": 30})
            client.kill()
            started = time.monotonic()
            with pytest.raises(ShardError):
                client.gather(pending, timeout=30.0)
            assert time.monotonic() - started < 10.0
            # Subsequent submits fail fast, never touching the dead pipe.
            with pytest.raises(ShardError):
                client.submit({"op": "ping"})
        finally:
            client.close()

    def test_close_is_safe_after_worker_exit(self):
        client = ShardClient(_single_shard_spec(), start_timeout=60.0)
        client.process.kill()
        client.process.join(10.0)
        client.close()
        client.close()  # idempotent
        assert not client.process.is_alive()


class TestStorm:
    def test_smoke_storm_holds_every_invariant(self):
        report = run_shard_storm(ShardStormConfig.smoke(seed=7))
        assert report.kills >= 1
        assert report.queries > 0
        assert report.mismatches == [], report.to_dict()
        assert report.violations == [], report.to_dict()
        assert report.recovered, report.to_dict()
        assert report.passed
