"""Shared hygiene for the observability tests: the global tracer must
never leak state (enabled flag, finished ring) across tests."""

from __future__ import annotations

import pytest

from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _clean_tracer():
    TRACER.enabled = False
    TRACER.clear()
    yield
    TRACER.enabled = False
    TRACER.clear()
