"""Tests for the unified metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2)
        assert counter.sample() == 3

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.sample() == 12

    def test_histogram_sample_statistics(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        sample = histogram.sample()
        assert sample["count"] == 3
        assert sample["sum"] == 6.0
        assert sample["min"] == 1.0
        assert sample["max"] == 3.0
        assert sample["mean"] == 2.0

    @pytest.mark.parametrize(
        "value, index",
        [
            (2.0**-12, 0),  # below the smallest bound
            (2.0**-10, 0),  # exactly the smallest bound
            (0.002, 2),  # ceil(log2(0.002)) = -8 -> third bucket
            (1.0, 10),  # 2^0
            (1.5, 11),  # rounds up to the 2^1 bucket
            (2.0**14, 24),  # exactly the largest bound
            (2.0**14 + 1, 25),  # overflow -> +Inf slot
        ],
    )
    def test_bucket_index_edges(self, value, index):
        assert Histogram.bucket_index(value) == index

    def test_bucket_labels_in_sample(self):
        histogram = Histogram()
        histogram.observe(1.0)
        histogram.observe(10.0**9)
        buckets = histogram.sample()["buckets"]
        assert buckets == {"1": 1, "+Inf": 1}


class TestRegistry:
    def test_same_name_and_labels_share_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("queries", status="ok").inc()
        registry.counter("queries", status="ok").inc()
        registry.counter("queries", status="error").inc()
        snapshot = registry.snapshot()
        assert snapshot["queries{status=ok}"] == 2
        assert snapshot["queries{status=error}"] == 1

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        assert registry.snapshot() == {"c{a=1,b=2}": 2}

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="requested as Gauge"):
            registry.gauge("x")

    def test_collectors_appear_namespaced(self):
        registry = MetricsRegistry()
        state = {"hits": 0}
        registry.register_collector("scenario_cache", lambda: dict(state))
        state["hits"] = 7
        assert registry.snapshot()["scenario_cache.hits"] == 7  # live read
        registry.unregister_collector("scenario_cache")
        assert registry.snapshot() == {}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.register_collector("src", lambda: {"k": 1})
        registry.reset()
        assert registry.snapshot() == {}


class TestExports:
    def test_prometheus_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("mdx_queries_total", status="ok").inc(2)
        registry.gauge("open_files").set(3)
        text = registry.to_prometheus()
        assert "# TYPE mdx_queries_total counter" in text
        assert 'mdx_queries_total{status="ok"} 2' in text
        assert "# TYPE open_files gauge" in text
        assert "open_files 3" in text

    def test_prometheus_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("mdx_query_ms")
        histogram.observe(0.5)  # le="0.5" bucket
        histogram.observe(3.0)  # le="4" bucket
        text = registry.to_prometheus()
        assert 'mdx_query_ms_bucket{le="0.5"} 1' in text
        assert 'mdx_query_ms_bucket{le="4"} 2' in text
        assert 'mdx_query_ms_bucket{le="+Inf"} 2' in text
        assert "mdx_query_ms_sum 3.5" in text
        assert "mdx_query_ms_count 2" in text

    def test_prometheus_collector_values_are_gauges(self):
        registry = MetricsRegistry()
        registry.register_collector("scenario_cache", lambda: {"hits": 4})
        text = registry.to_prometheus()
        assert "# TYPE scenario_cache_hits gauge" in text
        assert "scenario_cache_hits 4" in text

    def test_json_lines_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.register_collector("src", lambda: {"k": 2})
        lines = registry.to_json_lines().strip().splitlines()
        parsed = {
            entry["metric"]: entry["value"]
            for entry in (json.loads(line) for line in lines)
        }
        assert parsed == {"a": 1, "src.k": 2}
