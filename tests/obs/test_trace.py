"""Tests for the tracing core (repro.obs.trace)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import TRACER, Span, Tracer, trace_event, trace_span, tracing


class TestDisabledPath:
    def test_trace_span_returns_shared_null_span(self):
        first = trace_span("a")
        second = trace_span("b", attr=1)
        assert first is second  # the shared no-op instance

    def test_null_span_enters_as_none(self):
        with trace_span("a") as span:
            assert span is None
        assert len(TRACER.finished) == 0

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with trace_span("a"):
                raise RuntimeError("boom")

    def test_trace_event_is_noop(self):
        trace_event("nothing", detail=1)  # must not raise, nothing recorded
        assert len(TRACER.finished) == 0


class TestSpanTree:
    def test_nested_spans_attach_to_parent(self):
        with tracing():
            with trace_span("root") as root:
                with trace_span("child") as child:
                    with trace_span("grandchild"):
                        pass
                assert child.children[0].name == "grandchild"
        assert TRACER.finished[-1] is root
        assert [c.name for c in root.children] == ["child"]

    def test_attrs_events_and_set(self):
        with tracing():
            with trace_span("root", workload="running") as root:
                root.set(cells=4)
                root.event("milestone", at=1)
        assert root.attrs == {"workload": "running", "cells": 4}
        assert root.events == [("milestone", {"at": 1})]

    def test_trace_event_lands_on_current_span(self):
        with tracing():
            with trace_span("root") as root:
                with trace_span("child") as child:
                    trace_event("inner", n=1)
                trace_event("outer")
        assert child.events == [("inner", {"n": 1})]
        assert root.events == [("outer", {})]

    def test_exception_recorded_and_propagated(self):
        with tracing():
            with pytest.raises(ValueError):
                with trace_span("root") as root:
                    raise ValueError("bad")
        assert root.error == "ValueError('bad')"
        assert root.finished

    def test_find_and_iter_spans(self):
        with tracing():
            with trace_span("mdx.query") as root:
                with trace_span("mdx.parse"):
                    pass
                with trace_span("mdx.cells"):
                    with trace_span("scenario.apply"):
                        pass
        assert root.find("scenario.apply").name == "scenario.apply"
        assert root.find("no.such") is None
        names = [span.name for span in root.iter_spans()]
        assert names == ["mdx.query", "mdx.parse", "mdx.cells", "scenario.apply"]

    def test_to_dict_shape(self):
        with tracing():
            with trace_span("root", k="v") as root:
                root.event("e", n=2)
                with trace_span("child"):
                    pass
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["duration_ms"] >= 0
        assert payload["attrs"] == {"k": "v"}
        assert payload["events"] == [{"name": "e", "n": 2}]
        assert [c["name"] for c in payload["children"]] == ["child"]
        assert "error" not in payload

    def test_render_is_indented(self):
        with tracing():
            with trace_span("root") as root:
                with trace_span("child"):
                    pass
        lines = root.render().splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestTracer:
    def test_durations_are_monotonic(self):
        tracer = Tracer()
        span = tracer.start("work")
        first = span.duration_ms
        tracer.end(span)
        assert span.finished
        assert span.duration_ms >= first >= 0

    def test_leaked_child_is_closed_not_corrupting(self):
        tracer = Tracer()
        root = tracer.start("root")
        leak = tracer.start("leak")  # never explicitly ended
        tracer.end(root)
        assert leak.finished
        assert tracer.current() is None
        assert tracer.finished[-1] is root

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.end(tracer.start(f"s{i}"))
        assert [s.name for s in tracer.finished] == ["s2", "s3"]

    def test_take_last_pops_newest(self):
        tracer = Tracer()
        tracer.end(tracer.start("old"))
        tracer.end(tracer.start("new"))
        assert tracer.take_last().name == "new"
        assert tracer.take_last().name == "old"
        assert tracer.take_last() is None

    def test_thread_local_stacks_are_independent(self):
        tracer = Tracer()
        main_root = tracer.start("main-root")

        def worker():
            span = tracer.start("worker-root")
            tracer.end(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # The worker's span is a root of its own thread, not a child of
        # the span still open on the main thread.
        assert [s.name for s in tracer.finished] == ["worker-root"]
        assert main_root.children == []
        tracer.end(main_root)
        assert tracer.finished[-1] is main_root

    def test_clear_resets_ring_and_stack(self):
        tracer = Tracer()
        tracer.start("open")
        tracer.end(tracer.start("done"))
        tracer.clear()
        assert len(tracer.finished) == 0
        assert tracer.current() is None


class TestTracingContextManager:
    def test_enables_and_restores(self):
        assert TRACER.enabled is False
        with tracing():
            assert TRACER.enabled is True
            with tracing(False):
                assert TRACER.enabled is False
            assert TRACER.enabled is True
        assert TRACER.enabled is False

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert TRACER.enabled is False

    def test_standalone_span_context_manager(self):
        # A Span built without a tracer still times itself.
        with Span("free") as span:
            pass
        assert span.finished


class TestChildScope:
    """Satellite regression: worker threads adopting the submitter's span.

    The tracer's span stack is thread-local, so a query executed on a
    service worker used to start a *root* span of its own — orphaned from
    the submitting query's trace.  ``child_scope`` pushes the parent onto
    the worker's stack for the duration of the work.
    """

    def test_spans_attach_under_the_adopted_parent(self):
        import threading

        with tracing():
            root = TRACER.start("root")

            def worker() -> None:
                with TRACER.child_scope(root):
                    child = TRACER.start("child")
                    TRACER.end(child)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            TRACER.end(root)
        assert [span.name for span in root.children] == ["child"]

    def test_parent_is_not_finished_by_the_scope(self):
        with tracing():
            root = TRACER.start("root")
            with TRACER.child_scope(root):
                pass
            assert not root.finished
            TRACER.end(root)

    def test_none_parent_is_a_noop(self):
        with tracing():
            with TRACER.child_scope(None) as adopted:
                assert adopted is None
                orphan = TRACER.start("standalone")
                TRACER.end(orphan)
        assert orphan.finished

    def test_leaked_children_are_closed_on_exit(self):
        with tracing():
            root = TRACER.start("root")
            with TRACER.child_scope(root):
                leaked = TRACER.start("leaked")  # never ended by the worker
            assert leaked.finished
            TRACER.end(root)

    def test_service_worker_joins_the_submitters_trace(self, example):
        from repro.service import QueryService
        from repro.warehouse import Warehouse

        warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
        query = (
            "SELECT {Time.[Jan]} ON COLUMNS, {[Joe]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        with tracing():
            with trace_span("submitter") as root:
                with QueryService(warehouse, workers=1) as service:
                    service.submit(query).result(timeout=30.0)
        assert root.find("mdx.query") is not None
