"""Integration tests: the observability layer threaded through
``Warehouse.query`` — profiles, metrics, the slow-query log."""

from __future__ import annotations

import pytest

from repro import QueryBudget
from repro.errors import MdxSyntaxError
from repro.faults import FAULTS, inject_io_fault
from repro.obs.metrics import METRICS
from repro.obs.profile import validate_profile
from repro.obs.trace import tracing
from repro.warehouse import Warehouse

QUERY = """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestQueryProfiles:
    def test_untraced_queries_carry_no_profile(self, warehouse):
        result = warehouse.query(QUERY)
        assert result.profile is None

    def test_traced_queries_carry_a_schema_valid_profile(self, warehouse):
        with tracing():
            result = warehouse.query(QUERY)
        profile = result.profile
        assert profile is not None
        assert profile.total_ms > 0
        assert {"parse", "analyze", "scenario", "axes", "cells", "finalize"} <= set(
            profile.phases
        )
        assert profile.cells_evaluated > 0
        validate_profile(profile.to_dict())

    def test_profile_spans_include_scenario_application(self, warehouse):
        with tracing():
            result = warehouse.query(QUERY)
        spans = result.profile.spans
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", ()):
                walk(child)

        walk(spans)
        assert "mdx.query" in names
        assert "scenario.apply" in names
        assert "scenario_cache.get" in names

    def test_phase_sum_covers_total_when_warm(self, warehouse):
        """Acceptance: phase timings must sum to within 10% of the total
        wall time.  Warm the warehouse first (the first-ever query pays
        one-time lazy imports between phases), then take the best of a
        few attempts for jitter robustness."""
        warehouse.query(QUERY)  # warm caches and lazy imports
        best = 0.0
        for _ in range(5):
            with tracing():
                profile = warehouse.query(QUERY).profile
            if profile.total_ms == 0:
                continue
            best = max(best, profile.phase_sum_ms / profile.total_ms)
            if best >= 0.9:
                break
        assert best >= 0.9, f"phase sum covers only {best:.0%} of wall time"

    def test_traced_partial_query_records_degradation(self, warehouse):
        with tracing():
            result = warehouse.query(QUERY, budget=QueryBudget(max_cells=1))
        assert result.is_partial
        assert result.profile.degradations
        assert result.profile.degradations[0]["reason"] == "cell-cap"

    def test_tracing_does_not_change_results(self, warehouse):
        plain = warehouse.query(QUERY)
        with tracing():
            traced = warehouse.query(QUERY)
        assert plain.cells == traced.cells


class TestWarehouseMetrics:
    def test_query_counters_and_latency(self, warehouse):
        warehouse.query(QUERY)
        warehouse.query(QUERY)
        snapshot = warehouse.metrics.snapshot()
        assert snapshot["mdx_queries_total{status=ok}"] == 2
        assert snapshot["mdx_query_ms"]["count"] == 2

    def test_partial_queries_counted_separately(self, warehouse):
        warehouse.query(QUERY, budget=QueryBudget(max_cells=1))
        snapshot = warehouse.metrics.snapshot()
        assert snapshot["mdx_queries_total{status=partial}"] == 1

    def test_failed_queries_counted_and_reraised(self, warehouse):
        with pytest.raises(MdxSyntaxError):
            warehouse.query("THIS IS NOT MDX")
        snapshot = warehouse.metrics.snapshot()
        assert snapshot["mdx_queries_total{status=error}"] == 1

    def test_scenario_cache_collector_is_live(self, warehouse):
        warehouse.query(QUERY)
        warehouse.query(QUERY)
        snapshot = warehouse.metrics.snapshot()
        assert snapshot["scenario_cache.misses"] == 1
        assert snapshot["scenario_cache.hits"] == 1

    def test_rollup_index_collector_never_forces_a_build(self, warehouse):
        assert not warehouse.cube.has_rollup_index
        warehouse.metrics.snapshot()
        assert not warehouse.cube.has_rollup_index

    def test_faults_fired_counter_on_global_registry(self):
        counter = METRICS.counter("faults_fired_total", failpoint="chunk.read")
        before = counter.sample()
        FAULTS.fail_after("chunk.read", 1)
        with pytest.raises(Exception):
            inject_io_fault("chunk.read")
        assert counter.sample() == before + 1


class TestSlowQueryLog:
    def test_zero_threshold_records_every_query(self, warehouse):
        warehouse.slow_log.threshold_ms = 0.0
        warehouse.query(QUERY)
        entries = warehouse.slow_log.entries()
        assert len(entries) == 1
        assert "WITH PERSPECTIVE" in entries[0].query
        assert entries[0].stats.get("cells_evaluated", 0) > 0
        assert not entries[0].partial

    def test_partial_flag_is_logged(self, warehouse):
        warehouse.slow_log.threshold_ms = 0.0
        warehouse.query(QUERY, budget=QueryBudget(max_cells=1))
        assert warehouse.slow_log.entries()[-1].partial

    def test_failed_queries_are_logged_with_the_error(self, warehouse):
        warehouse.slow_log.threshold_ms = 0.0
        with pytest.raises(MdxSyntaxError):
            warehouse.query("THIS IS NOT MDX")
        entry = warehouse.slow_log.entries()[-1]
        assert entry.error is not None
        assert "MdxSyntaxError" in entry.error

    def test_default_threshold_ignores_fast_queries(self, warehouse):
        warehouse.query(QUERY)  # default 100ms threshold
        assert warehouse.slow_log.observed == 1
        assert len(warehouse.slow_log) == 0
