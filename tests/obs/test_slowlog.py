"""Tests for the slow-query log (repro.obs.slowlog)."""

from __future__ import annotations

import pytest

from repro.obs.slowlog import SlowQueryLog


class TestThreshold:
    def test_fast_queries_are_observed_but_not_recorded(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.record("SELECT fast", 9.99) is None
        assert log.observed == 1
        assert log.recorded == 0
        assert len(log) == 0

    def test_threshold_is_inclusive(self):
        log = SlowQueryLog(threshold_ms=10.0)
        entry = log.record("SELECT slow", 10.0)
        assert entry is not None
        assert log.recorded == 1

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.record("SELECT anything", 0.0) is not None

    def test_threshold_is_mutable(self):
        log = SlowQueryLog(threshold_ms=100.0)
        log.threshold_ms = 1.0  # what `repro query --slow-ms` does
        assert log.record("q", 2.0) is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestRing:
    def test_newest_entries_win(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for i in range(3):
            log.record(f"q{i}", float(i))
        assert [e.query for e in log.entries()] == ["q1", "q2"]
        assert log.recorded == 3  # counts crossings, not retained entries
        assert log.capacity == 2

    def test_clear_resets_counters(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record("q", 1.0)
        log.clear()
        assert (len(log), log.observed, log.recorded) == (0, 0, 0)


class TestEntries:
    def test_query_text_is_normalised_and_capped(self):
        log = SlowQueryLog(threshold_ms=0.0)
        entry = log.record("SELECT\n   {X}\tON COLUMNS", 1.0)
        assert entry.query == "SELECT {X} ON COLUMNS"
        long = log.record("SELECT " + "x " * 200, 1.0)
        assert len(long.query) <= 200
        assert long.query.endswith("…")

    def test_entry_payload_and_format(self):
        log = SlowQueryLog(threshold_ms=0.0)
        entry = log.record(
            "SELECT {X}",
            12.5,
            partial=True,
            error="ValueError('x')",
            stats={"cells_evaluated": 3},
        )
        payload = entry.to_dict()
        assert payload["wall_ms"] == 12.5
        assert payload["partial"] is True
        assert payload["error"] == "ValueError('x')"
        assert payload["stats"] == {"cells_evaluated": 3}
        rendered = entry.format()
        assert "[partial]" in rendered
        assert "[error: ValueError('x')]" in rendered
        assert "SELECT {X}" in rendered

    def test_dump_has_header_and_entries(self):
        log = SlowQueryLog(threshold_ms=5.0, capacity=4)
        log.record("fast", 1.0)
        log.record("slow one", 7.5)
        dump = log.dump()
        assert "threshold=5.0ms" in dump
        assert "1/4 retained" in dump
        assert "1/2 queries crossed the threshold" in dump
        assert "slow one" in dump
