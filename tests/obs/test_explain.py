"""Tests for EXPLAIN (repro.obs.explain) — including the acceptance
criterion that every Fig. 10 experiment query can be explained."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.obs.explain import explain_query, explain_report
from repro.warehouse import Warehouse
from repro.workload.workforce import WorkforceConfig, build_workforce

# The three experiment queries of Fig. 10, verbatim (the same texts as
# tests/mdx/test_fig10_queries.py executes).
FIG10A = """
WITH perspective {(Jan), (Jul)} for Department STATIC
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
   { Union(
       {Union(
           {[EmployeesWithAtleastOneMove-Set1].Children},
           {[EmployeesWithAtleastOneMove-Set2].Children}
       )},
       {[EmployeesWithAtleastOneMove-Set3].Children})},
   {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""

FIG10B = """
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin( {EmployeeS3}, {Descendants([Period],1,self_and_after)} )}
DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""

FIG10C = """
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
   {Head({[EmployeesWithAtleastOneMove-Set1].Children}, 50)},
   {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""

HEADLINE = """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


@pytest.fixture(scope="module")
def workforce_warehouse():
    return build_workforce(
        WorkforceConfig(
            n_employees=60,
            n_departments=5,
            n_changing=9,
            n_accounts=4,
            n_scenarios=2,
            seed=7,
        )
    ).warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestFig10Acceptance:
    @pytest.mark.parametrize(
        "text", [FIG10A, FIG10B, FIG10C], ids=["fig10a", "fig10b", "fig10c"]
    )
    def test_every_fig10_query_explains(self, workforce_warehouse, text):
        report = explain_report(workforce_warehouse, text)
        assert report["executable"] is True
        assert report["cube"] == "App.Db"
        step = report["scenario"][0]
        assert step["operator"] == "Perspective"
        assert step["dimension"] == "Department"
        assert {axis["axis"] for axis in report["axes"]} == {"columns", "rows"}
        assert all(axis["tuples"] > 0 for axis in report["axes"])
        estimates = report["scope_estimates"]
        assert estimates["grid_cells"] > 0
        assert estimates["cells_estimated"] > 0
        assert estimates["index_leaves"] > 0
        assert 0 <= estimates["min"] <= estimates["max"] <= estimates["index_leaves"]

    @pytest.mark.parametrize(
        "text", [FIG10A, FIG10B, FIG10C], ids=["fig10a", "fig10b", "fig10c"]
    )
    def test_fig10_renderings_are_complete(self, workforce_warehouse, text):
        rendered = explain_query(workforce_warehouse, text)
        assert rendered.startswith("EXPLAIN")
        assert "scenario pipeline (applied in order):" in rendered
        assert "Perspective[Department:" in rendered
        assert "estimated scope sizes (rollup-index upper bound):" in rendered


class TestRunningExample:
    def test_headline_query_report(self, warehouse):
        report = explain_report(warehouse, HEADLINE)
        assert report["executable"] is True
        step = report["scenario"][0]
        assert step["algebra"] == "E ∘ ρ(·, Φ_sem(VS, P)) ∘ σ"
        assert step["perspectives"] == ["Feb", "Apr"]
        assert report["slicer"] == {"Location": "NY", "Measures": "Salary"}

    def test_explain_never_fills_the_grid(self, warehouse):
        explain_report(warehouse, HEADLINE)
        # Axis resolution runs (scenario applied, cache touched) but no
        # cell is ever evaluated.
        assert warehouse.scenario_cache.stats.misses == 1

    def test_unscenarioed_query_reports_base_cube(self, warehouse):
        rendered = explain_query(
            warehouse, "SELECT {Time.[Qtr1]} ON COLUMNS FROM Warehouse"
        )
        assert "scenario pipeline: none (base cube)" in rendered

    def test_unexecutable_query_carries_diagnostics(self, warehouse):
        report = explain_report(
            warehouse,
            "SELECT {Time.[NoSuchMember]} ON COLUMNS FROM Warehouse",
        )
        assert report["executable"] is False
        assert report["diagnostics"]
        assert "axes" not in report  # axis resolution skipped
        rendered = explain_query(
            warehouse,
            "SELECT {Time.[NoSuchMember]} ON COLUMNS FROM Warehouse",
        )
        assert "NOT executable" in rendered

    def test_syntax_errors_raise(self, warehouse):
        with pytest.raises(MdxSyntaxError):
            explain_report(warehouse, "SELECT FROM nowhere !!!")

    def test_warehouse_explain_delegates(self, warehouse):
        # An unscenarioed query so the rendering carries no per-call
        # scenario-cache counters (which would differ between two calls).
        text = "SELECT {Time.[Qtr1]} ON COLUMNS FROM Warehouse"
        assert warehouse.explain(text) == explain_query(warehouse, text)
