"""Tests for per-query profiles and their schema (repro.obs.profile)."""

from __future__ import annotations

import pytest

from repro.obs.profile import PHASES, QueryProfile, validate_profile
from repro.obs.trace import Tracer


def _query_span(phase_names=("mdx.parse", "mdx.analyze", "mdx.cells")):
    tracer = Tracer()
    root = tracer.start("mdx.query")
    for name in phase_names:
        tracer.end(tracer.start(name))
    tracer.end(root)
    return root


class TestFromSpan:
    def test_phases_strip_the_mdx_prefix(self):
        profile = QueryProfile.from_span(_query_span())
        assert list(profile.phases) == ["parse", "analyze", "cells"]
        assert all(ms >= 0 for ms in profile.phases.values())
        assert profile.total_ms >= profile.phase_sum_ms

    def test_duplicate_phase_spans_are_summed(self):
        root = _query_span(("mdx.cells", "mdx.cells"))
        profile = QueryProfile.from_span(root)
        assert list(profile.phases) == ["cells"]
        expected = sum(child.duration_ms for child in root.children)
        assert profile.phases["cells"] == pytest.approx(expected)

    def test_counts_come_from_stats(self):
        profile = QueryProfile.from_span(
            _query_span(),
            stats={"cells_evaluated": 7, "cells_skipped": 2},
            degradations=[{"reason": "deadline"}],
            fault_events={"mdx.cell": 1},
        )
        assert profile.cells_evaluated == 7
        assert profile.cells_skipped == 2
        assert profile.degradations == [{"reason": "deadline"}]
        assert profile.fault_events == {"mdx.cell": 1}

    def test_keep_spans_toggle(self):
        assert QueryProfile.from_span(_query_span()).spans is not None
        profile = QueryProfile.from_span(_query_span(), keep_spans=False)
        assert profile.spans is None
        assert "spans" not in profile.to_dict()

    def test_cache_hit_ratio(self):
        untouched = QueryProfile.from_span(_query_span())
        assert untouched.cache_hit_ratio is None
        warm = QueryProfile.from_span(
            _query_span(),
            stats={"scenario_cache_hits": 3, "scenario_cache_misses": 1},
        )
        assert warm.cache_hit_ratio == 0.75


class TestRender:
    def test_render_lists_phases_in_pipeline_order(self):
        profile = QueryProfile.from_span(
            _query_span(("mdx.cells", "mdx.parse", "mdx.custom")),
            stats={"cells_evaluated": 4, "indexed_rollups": 2},
        )
        text = profile.render()
        lines = text.splitlines()
        assert lines[0] == "query profile"
        # taxonomy phases first (pipeline order), then extras, then total
        assert lines[1].split()[0] == "parse"
        assert lines[2].split()[0] == "cells"
        assert lines[3].split()[0] == "custom"
        assert "total" in lines[4]
        assert "cells: 4 evaluated, 0 skipped" in text
        assert "indexed rollups: 2" in text

    def test_render_surfaces_degradations_and_faults(self):
        profile = QueryProfile.from_span(
            _query_span(),
            degradations=[{"reason": "deadline", "detail": "5ms exceeded"}],
            fault_events={"chunk.read": 2},
        )
        text = profile.render()
        assert "degraded: 5ms exceeded" in text
        assert "fault fired: chunk.read x2" in text


class TestSchema:
    def _payload(self):
        return QueryProfile.from_span(
            _query_span(),
            stats={"cells_evaluated": 1},
            degradations=[{"reason": "cell-cap"}],
        ).to_dict()

    def test_valid_profile_passes(self):
        validate_profile(self._payload())  # must not raise

    def test_every_pipeline_phase_is_schema_valid(self):
        payload = QueryProfile.from_span(
            _query_span(tuple(f"mdx.{p}" for p in PHASES))
        ).to_dict()
        validate_profile(payload)
        assert list(payload["phases"]) == list(PHASES)

    def test_missing_required_key_rejected(self):
        payload = self._payload()
        del payload["phases"]
        with pytest.raises(ValueError, match="missing required key 'phases'"):
            validate_profile(payload)

    def test_wrong_type_rejected(self):
        payload = self._payload()
        payload["phases"]["cells"] = "fast"
        with pytest.raises(ValueError, match="expected number"):
            validate_profile(payload)

    def test_negative_count_rejected(self):
        payload = self._payload()
        payload["cells_skipped"] = -1
        with pytest.raises(ValueError, match="minimum"):
            validate_profile(payload)

    def test_boolean_is_not_an_integer(self):
        payload = self._payload()
        payload["cells_evaluated"] = True
        with pytest.raises(ValueError, match="booleans"):
            validate_profile(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="expected object"):
            validate_profile([1, 2, 3])
