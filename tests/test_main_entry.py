"""Smoke test for the package entry point (python -m repro)."""

from __future__ import annotations

import subprocess
import sys


def run_module(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_demo_runs():
    completed = run_module()
    assert completed.returncode == 0, completed.stderr
    assert "PTE/Joe" in completed.stdout
    assert "Contractor/Joe" in completed.stdout


def test_version_flag():
    completed = run_module("--version")
    assert completed.returncode == 0
    assert completed.stdout.strip()


CLEAN_QUERY = "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse\n"
WARN_QUERY = (
    "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([MA], [Salary])\n"
)
ERROR_QUERY = "SELECT {[Nobody]} ON COLUMNS FROM Warehouse\n"


class TestAnalyzeCommand:
    """Exit-code contract: 0 = clean, 1 = warnings under --strict,
    2 = errors."""

    def test_clean_query_exits_zero(self, tmp_path):
        path = tmp_path / "clean.mdx"
        path.write_text(CLEAN_QUERY)
        completed = run_module("analyze", str(path))
        assert completed.returncode == 0, completed.stderr
        assert "no diagnostics" in completed.stdout

    def test_error_query_exits_two(self, tmp_path):
        path = tmp_path / "bad.mdx"
        path.write_text(ERROR_QUERY)
        completed = run_module("analyze", str(path))
        assert completed.returncode == 2
        assert "WIF002" in completed.stdout

    def test_warning_query_exit_depends_on_strict(self, tmp_path):
        path = tmp_path / "warn.mdx"
        path.write_text(WARN_QUERY)
        relaxed = run_module("analyze", str(path))
        assert relaxed.returncode == 0
        assert "WIF302" in relaxed.stdout
        strict = run_module("analyze", str(path), "--strict")
        assert strict.returncode == 1

    def test_json_output(self, tmp_path):
        import json

        path = tmp_path / "bad.mdx"
        path.write_text(ERROR_QUERY)
        completed = run_module("analyze", str(path), "--json")
        assert completed.returncode == 2
        payload = json.loads(completed.stdout)
        assert payload["errors"] >= 1
        assert payload["diagnostics"][0]["code"] == "WIF002"
        assert "line" in payload["diagnostics"][0]

    def test_stdin_input(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "-"],
            input="SELECT {oops",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 2
        assert "WIF000" in completed.stdout

    def test_missing_file_exits_two(self, tmp_path):
        completed = run_module("analyze", str(tmp_path / "absent.mdx"))
        assert completed.returncode == 2
        assert completed.stderr.startswith("repro:")
        # One-line contract: a message, never a traceback.
        assert "Traceback" not in completed.stderr


RESULT_QUERY = (
    "SELECT {Time.[Jan], Time.[Feb]} ON COLUMNS, {[Joe]} ON ROWS "
    "FROM Warehouse WHERE ([NY], [Salary])\n"
)


class TestQueryCommand:
    """Exit-code contract: 0 = complete result, 1 = partial (budget
    breached), 2 = errors — one-line stderr messages, never tracebacks."""

    def test_query_runs_and_exits_zero(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path))
        assert completed.returncode == 0, completed.stderr
        assert "FTE/Joe" in completed.stdout

    def test_csv_output(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--csv")
        assert completed.returncode == 0
        assert completed.stdout.splitlines()[0].startswith(",")

    def test_csv_stdout_is_pure(self, tmp_path):
        """No '#' counter comment lines may pollute the CSV stream —
        stdout must pipe straight into a CSV parser."""
        import csv
        import io

        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--csv")
        assert completed.returncode == 0
        assert not any(
            line.startswith("#") for line in completed.stdout.splitlines()
        )
        table = list(csv.reader(io.StringIO(completed.stdout)))
        widths = {len(row) for row in table if row}
        assert len(widths) == 1  # rectangular: header + data rows agree

    def test_stats_go_to_stderr(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--csv", "--stats")
        assert completed.returncode == 0
        assert not any(
            line.startswith("#") for line in completed.stdout.splitlines()
        )
        stats_lines = [
            line
            for line in completed.stderr.splitlines()
            if line.startswith("# ")
        ]
        assert any("cells_evaluated" in line for line in stats_lines)

    def test_profile_renders_to_stderr(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--profile")
        assert completed.returncode == 0, completed.stderr
        assert "FTE/Joe" in completed.stdout  # the grid stays on stdout
        assert "query profile" in completed.stderr
        assert "cells:" in completed.stderr

    def test_profile_json_is_schema_valid(self, tmp_path):
        import json

        from repro.obs import validate_profile

        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--profile", "--json")
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        validate_profile(payload)
        assert payload["cells_evaluated"] > 0
        assert "cells" in payload["phases"]

    def test_slow_ms_dumps_the_log(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--slow-ms", "0")
        assert completed.returncode == 0
        assert "slow-query log:" in completed.stderr
        assert "SELECT" in completed.stderr
        assert "slow-query log:" not in completed.stdout


class TestExplainCommand:
    """Exit-code contract: 0 = explained (even when the analyzer flags
    the query), 2 = errors."""

    def test_explain_exits_zero_without_executing(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("explain", str(path))
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("EXPLAIN")
        assert "estimated scope sizes" in completed.stdout
        assert "FTE/Joe" not in completed.stdout  # no grid is filled

    def test_explain_shows_the_scenario_pipeline(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(
            "WITH PERSPECTIVE {(Feb)} FOR Organization STATIC\n" + RESULT_QUERY
        )
        completed = run_module("explain", str(path))
        assert completed.returncode == 0
        assert "Perspective[Organization:" in completed.stdout

    def test_explain_json(self, tmp_path):
        import json

        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("explain", str(path), "--json")
        assert completed.returncode == 0
        payload = json.loads(completed.stdout)
        assert payload["executable"] is True
        assert payload["scope_estimates"]["grid_cells"] > 0

    def test_unexecutable_query_still_exits_zero(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(ERROR_QUERY)
        completed = run_module("explain", str(path))
        assert completed.returncode == 0
        assert "NOT executable" in completed.stdout

    def test_syntax_error_exits_two(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text("SELECT {oops\n")
        completed = run_module("explain", str(path))
        assert completed.returncode == 2
        assert completed.stderr.startswith("repro:")
        assert "Traceback" not in completed.stderr

    def test_missing_file_exits_two(self, tmp_path):
        completed = run_module("explain", str(tmp_path / "absent.mdx"))
        assert completed.returncode == 2
        assert completed.stderr.startswith("repro:")

    def test_budget_breach_exits_one_with_partial_grid(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--max-cells", "1")
        assert completed.returncode == 1
        assert "[partial:" in completed.stdout
        assert "partial result" in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_deadline_flag_on_subcommand(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("query", str(path), "--deadline-ms", "0")
        assert completed.returncode == 1
        assert "partial result" in completed.stderr

    def test_deadline_flag_top_level(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module("--deadline-ms", "0", "query", str(path))
        assert completed.returncode == 1

    def test_query_error_exits_two_one_line(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text("SELECT {[Nobody]} ON COLUMNS FROM Warehouse\n")
        completed = run_module("query", str(path), "--no-analyze")
        assert completed.returncode == 2
        assert completed.stderr.startswith("repro:")
        assert "Traceback" not in completed.stderr

    def test_missing_file_exits_two(self, tmp_path):
        completed = run_module("query", str(tmp_path / "absent.mdx"))
        assert completed.returncode == 2
        assert completed.stderr.startswith("repro:")


class TestFaultFlags:
    def test_faults_flag_injects(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module(
            "--faults", "mdx.cell:after=1", "query", str(path)
        )
        assert completed.returncode == 2
        assert "injected fault" in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_bad_faults_spec_exits_two(self):
        completed = run_module("--faults", "nonsense")
        assert completed.returncode == 2
        assert "bad --faults spec" in completed.stderr

    def test_env_activation(self, tmp_path):
        import os

        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        env = dict(os.environ, REPRO_FAULTS="mdx.cell:after=1")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "query", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert completed.returncode == 2
        assert "injected fault" in completed.stderr

    def test_transient_faults_are_absorbed_by_retries(self, tmp_path):
        path = tmp_path / "q.mdx"
        path.write_text(RESULT_QUERY)
        completed = run_module(
            "--faults", "durability.write:transient=2", "query", str(path)
        )
        # The query path never touches durability.write; the spec must
        # still parse and the command succeed.
        assert completed.returncode == 0
