"""Smoke test for the package entry point (python -m repro)."""

from __future__ import annotations

import subprocess
import sys


def run_module(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_demo_runs():
    completed = run_module()
    assert completed.returncode == 0, completed.stderr
    assert "PTE/Joe" in completed.stdout
    assert "Contractor/Joe" in completed.stdout


def test_version_flag():
    completed = run_module("--version")
    assert completed.returncode == 0
    assert completed.stdout.strip()
