"""Smoke test for the package entry point (python -m repro)."""

from __future__ import annotations

import subprocess
import sys


def run_module(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_demo_runs():
    completed = run_module()
    assert completed.returncode == 0, completed.stderr
    assert "PTE/Joe" in completed.stdout
    assert "Contractor/Joe" in completed.stdout


def test_version_flag():
    completed = run_module("--version")
    assert completed.returncode == 0
    assert completed.stdout.strip()


CLEAN_QUERY = "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse\n"
WARN_QUERY = (
    "SELECT {[NY]} ON COLUMNS FROM Warehouse WHERE ([MA], [Salary])\n"
)
ERROR_QUERY = "SELECT {[Nobody]} ON COLUMNS FROM Warehouse\n"


class TestAnalyzeCommand:
    """Exit-code contract: 0 = clean, 1 = warnings under --strict,
    2 = errors."""

    def test_clean_query_exits_zero(self, tmp_path):
        path = tmp_path / "clean.mdx"
        path.write_text(CLEAN_QUERY)
        completed = run_module("analyze", str(path))
        assert completed.returncode == 0, completed.stderr
        assert "no diagnostics" in completed.stdout

    def test_error_query_exits_two(self, tmp_path):
        path = tmp_path / "bad.mdx"
        path.write_text(ERROR_QUERY)
        completed = run_module("analyze", str(path))
        assert completed.returncode == 2
        assert "WIF002" in completed.stdout

    def test_warning_query_exit_depends_on_strict(self, tmp_path):
        path = tmp_path / "warn.mdx"
        path.write_text(WARN_QUERY)
        relaxed = run_module("analyze", str(path))
        assert relaxed.returncode == 0
        assert "WIF302" in relaxed.stdout
        strict = run_module("analyze", str(path), "--strict")
        assert strict.returncode == 1

    def test_json_output(self, tmp_path):
        import json

        path = tmp_path / "bad.mdx"
        path.write_text(ERROR_QUERY)
        completed = run_module("analyze", str(path), "--json")
        assert completed.returncode == 2
        payload = json.loads(completed.stdout)
        assert payload["errors"] >= 1
        assert payload["diagnostics"][0]["code"] == "WIF002"
        assert "line" in payload["diagnostics"][0]

    def test_stdin_input(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "-"],
            input="SELECT {oops",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 2
        assert "WIF000" in completed.stdout

    def test_missing_file_exits_two(self, tmp_path):
        completed = run_module("analyze", str(tmp_path / "absent.mdx"))
        assert completed.returncode == 2
        assert "repro analyze" in completed.stderr
