"""Tests for the aggregate functions and MISSING semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuleError
from repro.olap.aggregation import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    aggregate,
)
from repro.olap.missing import MISSING, Missing, is_missing


class TestMissingSentinel:
    def test_singleton(self):
        assert Missing() is MISSING

    def test_falsy(self):
        assert not MISSING

    def test_is_missing(self):
        assert is_missing(MISSING)
        assert is_missing(None)
        assert not is_missing(0.0)

    def test_repr(self):
        assert repr(MISSING) == "MISSING"

    def test_pickle_preserves_singleton(self):
        import pickle

        assert pickle.loads(pickle.dumps(MISSING)) is MISSING


class TestAggregators:
    def test_sum_skips_missing(self):
        assert agg_sum([1, MISSING, 2]) == 3.0

    def test_sum_all_missing_is_missing(self):
        assert is_missing(agg_sum([MISSING, MISSING]))

    def test_sum_empty_is_missing(self):
        assert is_missing(agg_sum([]))

    def test_avg(self):
        assert agg_avg([1, 3, MISSING]) == 2.0

    def test_min_max(self):
        assert agg_min([3, 1, MISSING]) == 1.0
        assert agg_max([3, 1, MISSING]) == 3.0

    def test_count_counts_non_missing(self):
        assert agg_count([1, MISSING, 2]) == 2.0

    def test_count_of_only_missing_is_zero(self):
        assert agg_count([MISSING]) == 0.0

    def test_count_of_empty_is_missing(self):
        assert is_missing(agg_count([]))

    def test_aggregate_by_name(self):
        assert aggregate("sum", [1, 2]) == 3.0

    def test_unknown_aggregator(self):
        with pytest.raises(RuleError):
            aggregate("median", [1])


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32)))
def test_sum_matches_python_sum(values):
    result = agg_sum(values)
    if not values:
        assert is_missing(result)
    else:
        assert result == pytest.approx(sum(values))


@given(
    st.lists(
        st.one_of(
            st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)
        )
    )
)
def test_aggregators_never_raise_on_mixed_input(values):
    for name in ("sum", "avg", "min", "max", "count"):
        aggregate(name, values)
