"""Tests for CubeSchema: addresses, coordinate semantics, varying registry."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.olap.dimension import Dimension
from repro.olap.instances import VaryingDimension
from repro.olap.schema import CubeSchema


class TestRegistry:
    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema([Dimension("A"), Dimension("A")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema([])

    def test_dim_lookup(self, example):
        assert example.schema.dim_index("Time") == 2
        assert example.schema.dimension("Time").ordered
        with pytest.raises(SchemaError):
            example.schema.dim_index("Nope")

    def test_measures_dimension(self, example):
        assert example.schema.measures_dimension().name == "Measures"

    def test_varying_registry(self, example):
        assert example.schema.is_varying("Organization")
        assert not example.schema.is_varying("Location")
        assert example.schema.varying_dimension("Organization") is example.org
        with pytest.raises(SchemaError):
            example.schema.varying_dimension("Location")

    def test_register_foreign_dimension_rejected(self, example):
        rogue = Dimension("Rogue")
        time = example.time
        with pytest.raises(SchemaError):
            example.schema.register_varying(VaryingDimension(rogue, time))

    def test_register_parameter_outside_schema_rejected(self):
        d = Dimension("D")
        d.add_member("x")
        t = Dimension("T", ordered=True)
        t.add_member("Jan")
        schema = CubeSchema([d])
        with pytest.raises(SchemaError):
            schema.register_varying(VaryingDimension(d, t))


class TestAddresses:
    def test_address_builder(self, example):
        addr = example.schema.address(
            Organization="FTE", Location="NY", Time="Jan", Measures="Salary"
        )
        assert addr == ("FTE", "NY", "Jan", "Salary")

    def test_address_missing_dim_rejected(self, example):
        with pytest.raises(SchemaError):
            example.schema.address(Organization="FTE")

    def test_address_extra_dim_rejected(self, example):
        with pytest.raises(SchemaError):
            example.schema.address(
                Organization="FTE",
                Location="NY",
                Time="Jan",
                Measures="Salary",
                Bogus="x",
            )

    def test_validate_address_arity(self, example):
        with pytest.raises(SchemaError):
            example.schema.validate_address(("a", "b"))


class TestCoordinateSemantics:
    def test_varying_leafness_by_slash(self, example):
        schema = example.schema
        org = schema.dim_index("Organization")
        assert schema.coordinate_is_leaf(org, "Organization/FTE/Joe")
        assert not schema.coordinate_is_leaf(org, "FTE")

    def test_plain_dimension_leafness(self, example):
        schema = example.schema
        time = schema.dim_index("Time")
        assert schema.coordinate_is_leaf(time, "Jan")
        assert not schema.coordinate_is_leaf(time, "Qtr1")

    def test_is_leaf_address(self, example):
        schema = example.schema
        assert schema.is_leaf_address(
            ("Organization/FTE/Joe", "NY", "Jan", "Salary")
        )
        assert not schema.is_leaf_address(("FTE", "NY", "Jan", "Salary"))
        assert not schema.is_leaf_address(
            ("Organization/FTE/Joe", "NY", "Qtr1", "Salary")
        )

    def test_coordinate_display(self, example):
        schema = example.schema
        org = schema.dim_index("Organization")
        assert schema.coordinate_display(org, "Organization/FTE/Joe") == "FTE/Joe"
        assert schema.coordinate_display(org, "FTE") == "FTE"

    def test_is_under_varying(self, example):
        schema = example.schema
        org = schema.dim_index("Organization")
        assert schema.is_under(org, "Organization/FTE/Joe", "FTE")
        assert schema.is_under(org, "Organization/FTE/Joe", "Organization")
        assert not schema.is_under(org, "Organization/FTE/Joe", "PTE")
        assert schema.is_under(
            org, "Organization/FTE/Joe", "Organization/FTE/Joe"
        )

    def test_is_under_plain(self, example):
        schema = example.schema
        loc = schema.dim_index("Location")
        assert schema.is_under(loc, "NY", "East")
        assert not schema.is_under(loc, "NY", "West")

    def test_leaf_coordinates_under_varying(self, example):
        schema = example.schema
        org = schema.dim_index("Organization")
        under_fte = set(schema.leaf_coordinates_under(org, "FTE"))
        assert "Organization/FTE/Joe" in under_fte
        assert "Organization/FTE/Lisa" in under_fte
        assert "Organization/FTE/Sue" in under_fte
        assert "Organization/PTE/Joe" not in under_fte
        under_contr = set(schema.leaf_coordinates_under(org, "Contractor"))
        assert "Organization/Contractor/Joe" in under_contr
        assert "Organization/Contractor/Jane" in under_contr

    def test_leaf_coordinates_under_plain(self, example):
        schema = example.schema
        loc = schema.dim_index("Location")
        assert set(schema.leaf_coordinates_under(loc, "East")) == {"NY", "MA", "NH"}
        assert schema.leaf_coordinates_under(loc, "NY") == ["NY"]

    def test_instance_for_coordinate(self, example):
        schema = example.schema
        org = schema.dim_index("Organization")
        instance = schema.instance_for_coordinate(org, "Organization/PTE/Joe")
        assert instance.qualified_name == "PTE/Joe"
        assert instance.validity.sorted_moments() == [1]
        assert schema.instance_for_coordinate(org, "FTE") is None
        time = schema.dim_index("Time")
        assert schema.instance_for_coordinate(time, "Jan") is None
