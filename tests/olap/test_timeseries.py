"""Tests for time-series calculations, including over WhatIfCubes."""

from __future__ import annotations

import pytest

from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario
from repro.errors import QueryError
from repro.olap.missing import is_missing
from repro.olap.timeseries import (
    period_over_period,
    period_to_date,
    prior_period,
    rolling,
    series,
)

JOE_FTE = "Organization/FTE/Joe"
LISA = "Organization/FTE/Lisa"


def lisa_addr(example, month):
    return example.schema.address(
        Organization=LISA, Location="NY", Time=month, Measures="Salary"
    )


class TestSeries:
    def test_full_series(self, example):
        values = series(example.cube, example.time, lisa_addr(example, "Jan"))
        assert values[:6] == [10.0] * 6
        assert all(is_missing(v) for v in values[6:])

    def test_unordered_dimension_rejected(self, example):
        with pytest.raises(QueryError):
            series(example.cube, example.location, lisa_addr(example, "Jan"))


class TestPeriodToDate:
    def test_ytd_accumulates(self, example):
        assert period_to_date(
            example.cube, example.time, lisa_addr(example, "Mar")
        ) == 30.0
        assert period_to_date(
            example.cube, example.time, lisa_addr(example, "Jun")
        ) == 60.0

    def test_first_moment(self, example):
        assert period_to_date(
            example.cube, example.time, lisa_addr(example, "Jan")
        ) == 10.0

    def test_other_aggregators(self, example):
        assert period_to_date(
            example.cube, example.time, lisa_addr(example, "Jun"), "count"
        ) == 6.0

    def test_missing_tail_included_gracefully(self, example):
        # Dec YTD: Jul-Dec are ⊥ but Jan-Jun sum remains.
        assert period_to_date(
            example.cube, example.time, lisa_addr(example, "Dec")
        ) == 60.0


class TestRolling:
    def test_rolling_average(self, example):
        assert rolling(
            example.cube, example.time, lisa_addr(example, "Mar"), window=3
        ) == 10.0

    def test_truncated_window_at_start(self, example):
        assert rolling(
            example.cube,
            example.time,
            lisa_addr(example, "Jan"),
            window=3,
            aggregator="count",
        ) == 1.0

    def test_bad_window(self, example):
        with pytest.raises(QueryError):
            rolling(example.cube, example.time, lisa_addr(example, "Jan"), 0)


class TestPriorAndChange:
    def test_prior_period(self, example):
        assert prior_period(
            example.cube, example.time, lisa_addr(example, "Feb")
        ) == 10.0

    def test_prior_before_start_is_missing(self, example):
        assert is_missing(
            prior_period(example.cube, example.time, lisa_addr(example, "Jan"))
        )

    def test_negative_lag_rejected(self, example):
        with pytest.raises(QueryError):
            prior_period(example.cube, example.time, lisa_addr(example, "Feb"), -1)

    def test_period_over_period_flat_series(self, example):
        assert period_over_period(
            example.cube, example.time, lisa_addr(example, "Feb")
        ) == 0.0

    def test_period_over_period_missing_operand(self, example):
        assert is_missing(
            period_over_period(example.cube, example.time, lisa_addr(example, "Jul"))
        )


class TestOverWhatIfCube:
    def test_ytd_on_hypothetical_structure(self, example):
        """Forward-from-Jan: Joe's whole year lands under FTE/Joe, so his
        FTE/Joe YTD grows month over month."""
        whatif = NegativeScenario(
            "Organization", ["Jan"], Semantics.FORWARD, Mode.VISUAL
        ).apply(example.cube)
        addr = example.schema.address(
            Organization=JOE_FTE, Location="NY", Time="Apr", Measures="Salary"
        )
        # Jan 10 + Feb 10 + Mar 30 + Apr 20 = 70.
        assert period_to_date(whatif, example.time, addr) == 70.0

    def test_ytd_on_actual_structure_differs(self, example):
        addr = example.schema.address(
            Organization=JOE_FTE, Location="NY", Time="Apr", Measures="Salary"
        )
        # Actually FTE/Joe only has Jan's 10.
        assert period_to_date(example.cube, example.time, addr) == 10.0

    def test_rolling_on_whatif(self, example):
        whatif = NegativeScenario(
            "Organization", ["Jan"], Semantics.FORWARD, Mode.VISUAL
        ).apply(example.cube)
        addr = example.schema.address(
            Organization=JOE_FTE, Location="NY", Time="Apr", Measures="Salary"
        )
        assert rolling(whatif, example.time, addr, window=2, aggregator="sum") == 50.0
