"""Tests for the sparse semantic Cube: storage, ⊥, rollup, transforms."""

from __future__ import annotations

import pytest

from repro.errors import RuleError, SchemaError
from repro.olap.cube import Cube
from repro.olap.missing import MISSING, is_missing


class TestStorage:
    def test_set_and_get(self, tiny_cube):
        assert tiny_cube.at(Time="Jan", Measures="Sales") == 10.0

    def test_absent_cell_is_missing(self, tiny_cube):
        cube = tiny_cube
        cube.set_value(cube.schema.address(Time="Jan", Measures="Sales"), MISSING)
        assert is_missing(cube.at(Time="Jan", Measures="Sales"))

    def test_none_deletes(self, tiny_cube):
        tiny_cube.set(None, Time="Jan", Measures="Sales")
        assert is_missing(tiny_cube.at(Time="Jan", Measures="Sales"))

    def test_wrong_arity_rejected(self, tiny_cube):
        with pytest.raises(SchemaError):
            tiny_cube.value(("Jan",))

    def test_unknown_dimension_kw_rejected(self, tiny_cube):
        with pytest.raises(SchemaError):
            tiny_cube.at(Nope="Jan")

    def test_load_bulk(self, tiny_schema):
        cube = Cube(tiny_schema)
        cube.load([(("Jan", "Sales"), 1), (("Feb", "Sales"), 2)])
        assert cube.n_leaf_cells == 2

    def test_leaf_vs_derived_store(self, tiny_cube):
        tiny_cube.set(99.0, Time="H1", Measures="Sales")
        assert tiny_cube.n_stored_derived == 1
        assert tiny_cube.at(Time="H1", Measures="Sales") == 99.0

    def test_clear_stored_derived(self, tiny_cube):
        tiny_cube.set(99.0, Time="H1", Measures="Sales")
        tiny_cube.clear_stored_derived()
        assert tiny_cube.n_stored_derived == 0


class TestRollup:
    def test_rollup_over_time(self, tiny_cube):
        # Jan+Feb+Mar sales = 10+20+30
        assert tiny_cube.effective_value(("H1", "Sales")) == 60.0

    def test_rollup_full_root(self, tiny_cube):
        assert tiny_cube.effective_value(("Time", "Sales")) == 210.0

    def test_rollup_two_nonleaf_coords(self, tiny_cube):
        assert tiny_cube.effective_value(("H1", "Measures")) == 60.0 + 24.0

    def test_rollup_of_empty_scope_is_missing(self, tiny_schema):
        cube = Cube(tiny_schema)
        assert is_missing(cube.effective_value(("H1", "Sales")))

    def test_stored_derived_wins_over_rollup(self, tiny_cube):
        tiny_cube.set(999.0, Time="H1", Measures="Sales")
        assert tiny_cube.effective_value(("H1", "Sales")) == 999.0
        # derive() ignores the stored value
        assert tiny_cube.derive(("H1", "Sales")) == 60.0

    def test_rollup_other_aggregators(self, tiny_cube):
        assert tiny_cube.rollup(("H1", "Sales"), "max") == 30.0
        assert tiny_cube.rollup(("H1", "Sales"), "min") == 10.0
        assert tiny_cube.rollup(("H1", "Sales"), "avg") == 20.0
        assert tiny_cube.rollup(("H1", "Sales"), "count") == 3.0

    def test_scope_cells(self, tiny_cube):
        cells = dict(tiny_cube.scope_cells(("H1", "Sales")))
        assert set(cells) == {("Jan", "Sales"), ("Feb", "Sales"), ("Mar", "Sales")}

    def test_materialize_derived(self, tiny_cube):
        tiny_cube.materialize_derived([("H1", "Sales")])
        assert tiny_cube.value(("H1", "Sales")) == 60.0

    def test_materialize_leaf_rejected(self, tiny_cube):
        with pytest.raises(RuleError):
            tiny_cube.materialize_derived([("Jan", "Sales")])


class TestTransforms:
    def test_copy_is_deep_for_cells(self, tiny_cube):
        clone = tiny_cube.copy()
        clone.set(0.0, Time="Jan", Measures="Sales")
        assert tiny_cube.at(Time="Jan", Measures="Sales") == 10.0

    def test_filter_dimension(self, tiny_cube):
        filtered = tiny_cube.filter_dimension("Measures", lambda c: c == "Sales")
        assert filtered.n_leaf_cells == 6
        assert is_missing(filtered.at(Time="Jan", Measures="COGS"))

    def test_filter_also_drops_stored_derived(self, tiny_cube):
        tiny_cube.set(99.0, Time="H1", Measures="COGS")
        filtered = tiny_cube.filter_dimension("Measures", lambda c: c == "Sales")
        assert filtered.n_stored_derived == 0

    def test_map_leaf_cells_moves_and_drops(self, tiny_cube):
        def transform(addr, value):
            if addr[0] == "Jan":
                return None  # drop Jan
            return addr, value * 2

        doubled = tiny_cube.map_leaf_cells(transform)
        assert is_missing(doubled.at(Time="Jan", Measures="Sales"))
        assert doubled.at(Time="Feb", Measures="Sales") == 40.0

    def test_coordinates_used(self, tiny_cube):
        assert tiny_cube.coordinates_used("Measures") == {"Sales", "COGS"}

    def test_empty_like_shares_schema(self, tiny_cube):
        empty = tiny_cube.empty_like()
        assert empty.schema is tiny_cube.schema
        assert empty.n_leaf_cells == 0


class TestVaryingCoordinates:
    def test_instance_rollup(self, example):
        """Aggregate row FTE at Qtr1 sums only instances routed via FTE."""
        value = example.cube.effective_value(
            example.schema.address(
                Organization="FTE", Location="NY", Time="Qtr1", Measures="Salary"
            )
        )
        # Lisa 10+10+10 plus FTE/Joe Jan 10
        assert value == 40.0

    def test_two_instances_never_roll_into_each_other(self, example):
        schema = example.schema
        dim = schema.dim_index("Organization")
        assert not schema.is_under(
            dim, "Organization/FTE/Joe", "Organization/PTE/Joe"
        )

    def test_leaf_equal(self, example):
        assert example.cube.leaf_equal(example.cube.copy())
        other = example.cube.copy()
        other.set(
            1.0,
            Organization="Organization/FTE/Lisa",
            Location="NY",
            Time="Dec",
            Measures="Salary",
        )
        assert not example.cube.leaf_equal(other)
