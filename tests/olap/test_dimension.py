"""Tests for Dimension / Member hierarchies."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateMemberError, MemberNotFoundError, SchemaError
from repro.olap.dimension import Dimension


@pytest.fixture
def org() -> Dimension:
    d = Dimension("Organization")
    d.add_children(None, ["FTE", "PTE"])
    d.add_children("FTE", ["Joe", "Lisa"])
    d.add_children("PTE", ["Tom"])
    return d


class TestConstruction:
    def test_root_carries_dimension_name(self, org):
        assert org.root.name == "Organization"
        assert org.root.is_root

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Dimension("")

    def test_duplicate_member_rejected(self, org):
        with pytest.raises(DuplicateMemberError):
            org.add_member("Joe", "PTE")

    def test_add_under_missing_parent_rejected(self, org):
        with pytest.raises(MemberNotFoundError):
            org.add_member("X", "NoSuchParent")

    def test_add_member_by_object(self, org):
        fte = org.member("FTE")
        sue = org.add_member("Sue", fte)
        assert sue.parent is fte

    def test_member_of_other_dimension_rejected(self, org):
        other = Dimension("Other")
        with pytest.raises(SchemaError):
            org.add_member("Y", other.root)


class TestNavigation:
    def test_parent_child(self, org):
        joe = org.member("Joe")
        assert joe.parent.name == "FTE"
        assert joe in org.member("FTE").children

    def test_path(self, org):
        assert org.member("Joe").path() == "Organization/FTE/Joe"

    def test_ancestors(self, org):
        names = [m.name for m in org.member("Joe").ancestors()]
        assert names == ["FTE", "Organization"]

    def test_descendants_document_order(self, org):
        names = [m.name for m in org.root.descendants()]
        assert names == ["FTE", "Joe", "Lisa", "PTE", "Tom"]

    def test_leaves(self, org):
        assert [m.name for m in org.root.leaves()] == ["Joe", "Lisa", "Tom"]

    def test_is_descendant_of(self, org):
        assert org.member("Joe").is_descendant_of(org.member("FTE"))
        assert org.member("Joe").is_descendant_of(org.root)
        assert not org.member("Joe").is_descendant_of(org.member("PTE"))
        assert not org.member("FTE").is_descendant_of(org.member("Joe"))

    def test_contains(self, org):
        assert "Joe" in org
        assert "Nobody" not in org

    def test_len_counts_root(self, org):
        assert len(org) == 6


class TestLevels:
    def test_leaf_level_zero(self, org):
        assert org.member("Joe").level == 0

    def test_internal_levels(self, org):
        assert org.member("FTE").level == 1
        assert org.root.level == 2

    def test_depth(self, org):
        assert org.root.depth == 0
        assert org.member("FTE").depth == 1
        assert org.member("Joe").depth == 2

    def test_members_at_level(self, org):
        assert {m.name for m in org.members_at_level(0)} == {"Joe", "Lisa", "Tom"}
        assert {m.name for m in org.members_at_level(1)} == {"FTE", "PTE"}


class TestOrdering:
    def test_order_index_document_order(self):
        time = Dimension("Time", ordered=True)
        time.add_member("Q1")
        time.add_children("Q1", ["Jan", "Feb"])
        time.add_member("Q2")
        time.add_children("Q2", ["Mar"])
        assert time.order_index("Jan") == 0
        assert time.order_index("Feb") == 1
        assert time.order_index("Mar") == 2
        assert time.leaf_count == 3
        assert time.leaf_at(2).name == "Mar"

    def test_order_index_of_non_leaf_rejected(self):
        time = Dimension("Time", ordered=True)
        time.add_member("Q1")
        time.add_children("Q1", ["Jan"])
        with pytest.raises(SchemaError):
            time.order_index("Q1")

    def test_leaf_order_invalidated_on_mutation(self):
        time = Dimension("Time", ordered=True)
        time.add_member("Jan")
        assert time.order_index("Jan") == 0
        time.add_member("Feb")
        assert time.order_index("Feb") == 1

    def test_leaf_at_out_of_range(self):
        time = Dimension("Time", ordered=True)
        time.add_member("Jan")
        with pytest.raises(SchemaError):
            time.leaf_at(5)


def test_select_members(org):
    starts_with_l = org.select_members(lambda m: m.name.startswith("L"))
    assert [m.name for m in starts_with_l] == ["Lisa"]
