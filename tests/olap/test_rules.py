"""Tests for the formula parser and scoped rule engine (paper Sec. 2 rules)."""

from __future__ import annotations

import pytest

from repro.errors import FormulaSyntaxError, RuleError
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.formula import BinOp, MemberRef, Number, UnaryOp, parse_formula
from repro.olap.missing import MISSING, is_missing
from repro.olap.rules import Rule, RuleEngine
from repro.olap.schema import CubeSchema


class TestFormulaParsing:
    def test_simple_difference(self):
        expr = parse_formula("Sales - COGS")
        assert isinstance(expr, BinOp)
        assert expr.member_refs() == {"Sales", "COGS"}

    def test_precedence(self):
        expr = parse_formula("2 + 3 * 4")
        assert expr.evaluate(lambda name: 0) == 14.0

    def test_parentheses(self):
        expr = parse_formula("(2 + 3) * 4")
        assert expr.evaluate(lambda name: 0) == 20.0

    def test_unary_minus(self):
        expr = parse_formula("-Sales")
        assert isinstance(expr, UnaryOp)
        assert expr.evaluate(lambda name: 7) == -7.0

    def test_bracketed_member(self):
        expr = parse_formula("[Margin %] / COGS")
        assert "Margin %" in expr.member_refs()

    def test_quoted_member(self):
        expr = parse_formula('"Net Sales" - COGS')
        assert "Net Sales" in expr.member_refs()

    def test_percent_in_identifier(self):
        expr = parse_formula("Margin% * 2")
        assert "Margin%" in expr.member_refs()

    def test_paper_rule_3(self):
        expr = parse_formula("0.93 * Sales - COGS")
        assert expr.evaluate({"Sales": 100, "COGS": 50}.get) == pytest.approx(43.0)

    def test_missing_propagates(self):
        expr = parse_formula("Sales - COGS")
        assert is_missing(expr.evaluate(lambda name: MISSING))

    def test_division_by_zero_is_missing(self):
        expr = parse_formula("Sales / COGS")
        assert is_missing(expr.evaluate({"Sales": 10.0, "COGS": 0.0}.get))

    def test_number_literal(self):
        assert isinstance(parse_formula("42"), Number)
        assert isinstance(parse_formula("Sales"), MemberRef)

    @pytest.mark.parametrize(
        "bad",
        ["", "Sales -", "(Sales", "[Sales", "'Sales", "Sales COGS", "1.2.3", "@"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(FormulaSyntaxError):
            parse_formula(bad)


def build_margin_cube() -> Cube:
    """Product x Market x Measures cube with the paper's margin rules."""
    product = Dimension("Product")
    product.add_children(None, ["TV", "Radio"])
    market = Dimension("Market")
    market.add_children(None, ["East", "West"])
    market.add_children("East", ["NY", "MA"])
    market.add_children("West", ["CA"])
    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Sales", "COGS", "Margin", "Margin%"])
    schema = CubeSchema([product, market, measures])
    engine = RuleEngine(schema)
    # Rules (1)-(4) of Sec. 2.
    engine.define("Margin", "Sales - COGS")
    engine.define("Margin", "Sales - COGS", scope={"Market": "West"})
    engine.define("Margin", "0.93 * Sales - COGS", scope={"Market": "East"})
    engine.define("Margin%", "Margin / COGS * 100")
    cube = Cube(schema, engine)
    cube.set(100.0, Product="TV", Market="NY", Measures="Sales")
    cube.set(40.0, Product="TV", Market="NY", Measures="COGS")
    cube.set(200.0, Product="TV", Market="CA", Measures="Sales")
    cube.set(80.0, Product="TV", Market="CA", Measures="COGS")
    return cube


class TestRuleEngine:
    def test_default_rule_applies(self):
        cube = build_margin_cube()
        # CA (West): plain Sales - COGS via rule (2)
        assert cube.effective_value(("TV", "CA", "Margin")) == pytest.approx(120.0)

    def test_scoped_rule_overrides(self):
        cube = build_margin_cube()
        # NY (East): 0.93 * 100 - 40 via rule (3)
        assert cube.effective_value(("TV", "NY", "Margin")) == pytest.approx(53.0)

    def test_rule_chains(self):
        cube = build_margin_cube()
        # Margin% at CA: 120/80*100 = 150
        assert cube.effective_value(("TV", "CA", "Margin%")) == pytest.approx(150.0)

    def test_formula_at_aggregate_uses_aggregated_operands(self):
        cube = build_margin_cube()
        # Market root: East rule does not apply (root is not under East);
        # default rule with aggregated Sales/COGS: (100+200)-(40+80)=180.
        assert cube.effective_value(("TV", "Market", "Margin")) == pytest.approx(180.0)

    def test_formula_missing_operand_propagates(self):
        cube = build_margin_cube()
        assert is_missing(cube.effective_value(("Radio", "NY", "Margin")))

    def test_rollup_fallback_without_formula(self):
        cube = build_margin_cube()
        assert cube.effective_value(("TV", "East", "Sales")) == 100.0

    def test_cycle_detection(self):
        measures = Dimension("Measures", is_measures=True)
        measures.add_children(None, ["A", "B"])
        schema = CubeSchema([measures])
        engine = RuleEngine(schema)
        engine.define("A", "B + 1")
        engine.define("B", "A + 1")
        cube = Cube(schema, engine)
        with pytest.raises(RuleError, match="cyclic"):
            cube.effective_value(("A",))

    def test_has_rule_for(self):
        cube = build_margin_cube()
        schema = cube.schema
        assert cube.rules.has_rule_for(cube, ("TV", "NY", "Margin"))
        assert not cube.rules.has_rule_for(cube, ("TV", "NY", "Sales"))

    def test_leaf_formula_cell_is_derived(self):
        cube = build_margin_cube()
        # Margin at a fully-leaf address is computed by its rule, not ⊥.
        assert cube.effective_value(("TV", "NY", "Margin")) == pytest.approx(53.0)

    def test_unknown_rule_dimension_rejected(self):
        cube = build_margin_cube()
        with pytest.raises(Exception):
            cube.rules.add_rule(Rule("X", "1", dimension="Nope"))

    def test_rule_without_measures_dimension_rejected(self):
        plain = Dimension("D")
        plain.add_member("x")
        schema = CubeSchema([plain])
        engine = RuleEngine(schema)
        with pytest.raises(RuleError):
            engine.define("x", "1")

    def test_later_equal_specificity_wins(self):
        measures = Dimension("Measures", is_measures=True)
        measures.add_children(None, ["A", "B"])
        schema = CubeSchema([measures])
        engine = RuleEngine(schema)
        engine.define("A", "1")
        engine.define("A", "2")
        cube = Cube(schema, engine)
        assert cube.effective_value(("A",)) == 2.0
