"""Tests for VaryingDimension / MemberInstance (Sec. 2, Def. 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidChangeError, SchemaError
from repro.olap.dimension import Dimension
from repro.olap.instances import VaryingDimension

MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun"]


def build_varying() -> VaryingDimension:
    org = Dimension("Org")
    org.add_children(None, ["FTE", "PTE", "Contractor"])
    org.add_children("FTE", ["Joe", "Lisa"])
    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)
    return VaryingDimension(org, time)


class TestBasics:
    def test_universe(self):
        assert build_varying().universe == 6

    def test_moment_index_by_name_and_int(self):
        varying = build_varying()
        assert varying.moment_index("Mar") == 2
        assert varying.moment_index(2) == 2

    def test_moment_index_out_of_range(self):
        with pytest.raises(SchemaError):
            build_varying().moment_index(6)

    def test_empty_parameter_rejected(self):
        org = Dimension("Org")
        empty_time = Dimension("Time", ordered=True)
        # A dimension always has its root; the root is its only leaf.  Use a
        # fresh dimension whose root has no children: leaf_count == 1 (the
        # root itself), so build an artificial zero case via a subclass is
        # overkill — instead check that leaf_count >= 1 always holds.
        assert empty_time.leaf_count == 1
        VaryingDimension(org, empty_time)  # does not raise


class TestUnmanagedMembers:
    def test_single_static_instance(self):
        varying = build_varying()
        (instance,) = varying.instances_of("Lisa")
        assert instance.path == ("Org", "FTE", "Lisa")
        assert instance.qualified_name == "FTE/Lisa"
        assert instance.validity.sorted_moments() == list(range(6))

    def test_parent_at_falls_back_to_skeleton(self):
        varying = build_varying()
        assert varying.parent_at("Lisa", "Jan") == "FTE"

    def test_not_managed(self):
        assert not build_varying().is_managed("Lisa")


class TestLegalChanges:
    def test_paper_joe_sequence(self):
        """Def. 3.1 example: Joe FTE -> PTE at Mar produces two instances."""
        varying = build_varying()
        varying.assign("Joe", "FTE")
        varying.reparent("Joe", "PTE", "Mar")
        instances = {i.qualified_name: i for i in varying.instances_of("Joe")}
        assert instances["FTE/Joe"].validity.sorted_moments() == [0, 1]
        assert instances["PTE/Joe"].validity.sorted_moments() == [2, 3, 4, 5]

    def test_reacquired_path_is_same_instance(self):
        """Joe back under FTE in Jun: VS(d1) = {Jan, Feb, Jun} (Sec. 3.1)."""
        varying = build_varying()
        varying.assign("Joe", "FTE")
        varying.reparent("Joe", "PTE", "Mar")
        varying.reparent("Joe", "FTE", "Jun")
        instances = {i.qualified_name: i for i in varying.instances_of("Joe")}
        assert len(instances) == 2
        assert instances["FTE/Joe"].validity.sorted_moments() == [0, 1, 5]
        assert instances["PTE/Joe"].validity.sorted_moments() == [2, 3, 4]

    def test_invalid_moments_are_skipped(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        varying.set_invalid("Joe", ["Feb"])
        varying.reparent("Joe", "PTE", "Mar")
        instances = {i.qualified_name: i for i in varying.instances_of("Joe")}
        assert instances["FTE/Joe"].validity.sorted_moments() == [0]
        assert instances["PTE/Joe"].validity.sorted_moments() == [2, 3, 4, 5]
        assert varying.instance_at("Joe", "Feb") is None

    def test_reparent_on_unordered_parameter_rejected(self):
        org = Dimension("Org")
        org.add_children(None, ["FTE", "PTE"])
        org.add_member("Joe", "FTE")
        location = Dimension("Location")  # unordered
        location.add_children(None, ["NY", "MA"])
        varying = VaryingDimension(org, location)
        with pytest.raises(InvalidChangeError):
            varying.reparent("Joe", "PTE", "NY")

    def test_unordered_parameter_with_assign(self):
        org = Dimension("Org")
        org.add_children(None, ["FTE", "PTE"])
        org.add_member("Joe", "FTE")
        location = Dimension("Location")
        location.add_children(None, ["NY", "MA", "CA"])
        varying = VaryingDimension(org, location)
        varying.assign("Joe", "FTE", ["NY", "MA"])
        varying.assign("Joe", "PTE", ["CA"])
        instances = {i.qualified_name: i for i in varying.instances_of("Joe")}
        assert instances["FTE/Joe"].validity.sorted_moments() == [0, 1]
        assert instances["PTE/Joe"].validity.sorted_moments() == [2]

    def test_unknown_member_rejected(self):
        varying = build_varying()
        with pytest.raises(SchemaError):
            varying.assign("Nobody", "FTE")


class TestNonLeafReparenting:
    def test_changing_nonleaf_parent_changes_leaf_paths(self):
        """Def. 3.1: a change to a non-leaf member induces changes to the
        root-to-leaf path of the members below it."""
        org = Dimension("Org")
        org.add_children(None, ["East", "West"])
        org.add_member("TeamA", "East")
        org.add_member("Joe", "TeamA")
        time = Dimension("Time", ordered=True)
        for month in MONTHS:
            time.add_member(month)
        varying = VaryingDimension(org, time)
        varying.reparent("TeamA", "West", "Apr")
        instances = {i.full_path: i for i in varying.instances_of("Joe")}
        assert instances["Org/East/TeamA/Joe"].validity.sorted_moments() == [0, 1, 2]
        assert instances["Org/West/TeamA/Joe"].validity.sorted_moments() == [3, 4, 5]

    def test_cycle_detection(self):
        org = Dimension("Org")
        org.add_children(None, ["A", "B"])
        org.add_member("x", "A")
        time = Dimension("Time", ordered=True)
        time.add_member("Jan")
        varying = VaryingDimension(org, time)
        varying._parent_at["A"] = ["B"]
        varying._parent_at["B"] = ["A"]
        with pytest.raises(SchemaError, match="cycle"):
            varying.path_at("x", "Jan")


class TestInstanceLookup:
    def test_instance_at(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        varying.reparent("Joe", "PTE", "Mar")
        assert varying.instance_at("Joe", "Jan").qualified_name == "FTE/Joe"
        assert varying.instance_at("Joe", "May").qualified_name == "PTE/Joe"

    def test_find_instance_by_qualified_name_and_path(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        assert varying.find_instance("FTE/Joe").member == "Joe"
        assert varying.find_instance("Org/FTE/Joe").member == "Joe"

    def test_find_instance_missing(self):
        varying = build_varying()
        with pytest.raises(SchemaError):
            varying.find_instance("PTE/Joe")

    def test_changing_members(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        varying.assign("Lisa", "FTE")
        varying.reparent("Joe", "PTE", "Mar")
        assert varying.changing_members() == ["Joe"]
        assert set(varying.managed_members()) == {"Joe", "Lisa"}


class TestCopy:
    def test_copy_is_independent(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        clone = varying.copy()
        clone.reparent("Joe", "PTE", "Mar")
        assert len(varying.instances_of("Joe")) == 1
        assert len(clone.instances_of("Joe")) == 2

    def test_cache_invalidation_on_mutation(self):
        varying = build_varying()
        varying.assign("Joe", "FTE")
        assert len(varying.instances_of("Joe")) == 1
        varying.reparent("Joe", "PTE", "Feb")
        assert len(varying.instances_of("Joe")) == 2


@given(
    changes=st.lists(
        st.tuples(
            st.sampled_from(["FTE", "PTE", "Contractor"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=8,
    )
)
def test_validity_sets_partition_valid_moments(changes):
    """Property: after any legal change sequence, instance validity sets of
    a member are pairwise disjoint and cover exactly the valid moments."""
    varying = build_varying()
    varying.assign("Joe", "FTE")
    for parent, moment in changes:
        varying.reparent("Joe", parent, moment)
    instances = varying.instances_of("Joe")
    seen: set[int] = set()
    for instance in instances:
        moments = set(instance.validity.moments)
        assert not moments & seen
        seen |= moments
    assert seen == set(range(6))  # Joe is never invalidated here
