"""Property tests: formula serialisation round-trips through the parser."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.formula import (
    BinOp,
    Expr,
    MemberRef,
    Number,
    UnaryOp,
    format_expr,
    parse_formula,
)
from repro.olap.missing import MISSING, is_missing

MEMBER_NAMES = ["Sales", "COGS", "Margin %", "Net-Value", "a_b"]


def expressions() -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        st.floats(
            min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
        ).map(Number),
        st.sampled_from(MEMBER_NAMES).map(MemberRef),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from("+-*/"), children, children).map(
                lambda t: BinOp(t[0], t[1], t[2])
            ),
            children.map(lambda e: UnaryOp("-", e)),
        )

    return st.recursive(leaves, extend, max_leaves=12)


ENV = {"Sales": 7.0, "COGS": 3.0, "Margin %": 2.5, "Net-Value": -4.0, "a_b": 0.5}


def evaluate(expr: Expr):
    return expr.evaluate(lambda name: ENV[name])


@settings(max_examples=200, deadline=None)
@given(expr=expressions())
def test_format_parse_round_trip_evaluates_identically(expr):
    text = format_expr(expr)
    reparsed = parse_formula(text)
    left = evaluate(expr)
    right = evaluate(reparsed)
    if is_missing(left):
        assert is_missing(right)
    else:
        assert math.isclose(left, right, rel_tol=1e-12, abs_tol=1e-12), text


@settings(max_examples=100, deadline=None)
@given(expr=expressions())
def test_formatted_text_is_stable(expr):
    """Formatting is a fixpoint: format(parse(format(e))) == format(e)."""
    once = format_expr(expr)
    twice = format_expr(parse_formula(once))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(expr=expressions())
def test_member_refs_preserved(expr):
    reparsed = parse_formula(format_expr(expr))
    assert reparsed.member_refs() == expr.member_refs()


def test_known_formatting_examples():
    expr = parse_formula("Sales - COGS * 2")
    assert format_expr(expr) == "[Sales] - [COGS] * 2.0"
    expr = parse_formula("(Sales - COGS) * 2")
    assert format_expr(expr) == "([Sales] - [COGS]) * 2.0"
    expr = parse_formula("Sales - (COGS - 1)")
    assert format_expr(expr) == "[Sales] - ([COGS] - 1.0)"


def test_missing_propagates_through_round_trip():
    expr = parse_formula("[Ghost] + 1")
    text = format_expr(expr)
    assert is_missing(parse_formula(text).evaluate(lambda name: MISSING))
