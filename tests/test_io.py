"""Tests for warehouse persistence (save/load round trip)."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError, WarehouseFormatError
from repro.durability import MANIFEST_NAME, Manifest, file_digest, read_manifest
from repro.io import load_warehouse, save_warehouse
from repro.olap.missing import is_missing
from repro.warehouse import Warehouse
from repro.workload.workforce import WorkforceConfig, build_workforce


def rewrite_store_file(root, name: str, text: str) -> None:
    """Rewrite one store file *and* its manifest entry, so the edit tests
    format handling rather than tripping the corruption detector."""
    (root / name).write_text(text)
    manifest = read_manifest(root / MANIFEST_NAME)
    files = dict(manifest.files)
    files[name] = file_digest(root / name)
    updated = Manifest(manifest.format_version, manifest.generation, files)
    (root / MANIFEST_NAME).write_text(updated.to_json())


@pytest.fixture
def warehouse(example) -> Warehouse:
    wh = Warehouse(example.schema, example.cube, name="Warehouse", aliases={"WH"})
    wh.define_named_set("Changers", ["Joe"])
    # A derived measure with a formula rule, to exercise rule I/O.
    example.measures.add_member("CompPerHead", "Compensation")
    example.rules.define("CompPerHead", "Salary / 1")
    return wh


class TestRoundTrip:
    def test_leaf_cells_survive(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        assert loaded.cube.leaf_equal(warehouse.cube)

    def test_schema_structure_survives(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        assert loaded.schema.dim_names() == warehouse.schema.dim_names()
        assert loaded.schema.dimension("Time").ordered
        assert loaded.schema.dimension("Measures").is_measures
        assert loaded.schema.is_varying("Organization")

    def test_instances_survive(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        instances = {
            i.qualified_name: i.validity.sorted_moments()
            for i in loaded.varying("Organization").instances_of("Joe")
        }
        assert instances == {
            "FTE/Joe": [0],
            "PTE/Joe": [1],
            "Contractor/Joe": [2, 3] + list(range(5, 12)),
        }

    def test_named_sets_survive(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        assert loaded.named_set("Changers").members == ("Joe",)

    def test_name_and_aliases_survive(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        assert loaded.name == "Warehouse"
        assert loaded.aliases == {"WH"}

    def test_rules_survive(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        address = loaded.schema.address(
            Organization="Organization/FTE/Lisa",
            Location="NY",
            Time="Jan",
            Measures="CompPerHead",
        )
        assert loaded.cube.effective_value(address) == 10.0

    def test_stored_derived_survive(self, warehouse, tmp_path):
        q1 = warehouse.schema.address(
            Organization="FTE", Location="NY", Time="Qtr1", Measures="Salary"
        )
        warehouse.cube.materialize_derived([q1])
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        assert loaded.cube.value(q1) == warehouse.cube.value(q1)

    def test_queries_agree_after_reload(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        loaded = load_warehouse(tmp_path / "wh")
        text = """
            WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
            SELECT {Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
                   {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
        """
        original = warehouse.query(text)
        reloaded = loaded.query(text)
        assert original.row_labels() == reloaded.row_labels()
        for r in range(len(original.rows)):
            for c in range(len(original.columns)):
                left, right = original.cell(r, c), reloaded.cell(r, c)
                assert is_missing(left) == is_missing(right)
                if not is_missing(left):
                    assert left == right

    def test_workforce_round_trip(self, tmp_path):
        workforce = build_workforce(
            WorkforceConfig(n_employees=30, n_departments=4, n_changing=4, seed=2)
        )
        save_warehouse(workforce.warehouse, tmp_path / "wf")
        loaded = load_warehouse(tmp_path / "wf")
        assert loaded.cube.leaf_equal(workforce.cube)
        assert loaded.named_set("EmployeeS3") is not None


class TestFormat:
    def test_save_is_deterministic(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "a")
        save_warehouse(warehouse, tmp_path / "b")
        for name in ("schema.json", "cells.json"):
            assert (tmp_path / "a" / name).read_text() == (
                tmp_path / "b" / name
            ).read_text()

    def test_schema_is_valid_json(self, warehouse, tmp_path):
        save_warehouse(warehouse, tmp_path / "wh")
        payload = json.loads((tmp_path / "wh" / "schema.json").read_text())
        assert payload["format_version"] == 1
        assert "Organization" in payload["varying"]

    def test_version_check(self, warehouse, tmp_path):
        root = save_warehouse(warehouse, tmp_path / "wh")
        payload = json.loads((root / "schema.json").read_text())
        payload["format_version"] = 99
        rewrite_store_file(root, "schema.json", json.dumps(payload))
        with pytest.raises(SchemaError, match="version"):
            load_warehouse(root)

    def test_future_version_is_rejected_explicitly(self, warehouse, tmp_path):
        root = save_warehouse(warehouse, tmp_path / "wh")
        payload = json.loads((root / "schema.json").read_text())
        payload["format_version"] = 99
        rewrite_store_file(root, "schema.json", json.dumps(payload))
        with pytest.raises(WarehouseFormatError, match="newer than") as info:
            load_warehouse(root)
        assert info.value.format_version == 99
        assert info.value.path is not None

    def test_manifest_lists_all_files_with_checksums(self, warehouse, tmp_path):
        root = save_warehouse(warehouse, tmp_path / "wh")
        manifest = read_manifest(root / MANIFEST_NAME)
        assert set(manifest.files) == {"schema.json", "cells.json"}
        for name, (digest, size) in manifest.files.items():
            assert file_digest(root / name) == (digest, size)

    def test_generation_increments_per_save(self, warehouse, tmp_path):
        root = save_warehouse(warehouse, tmp_path / "wh")
        assert read_manifest(root / MANIFEST_NAME).generation == 1
        save_warehouse(warehouse, root)
        assert read_manifest(root / MANIFEST_NAME).generation == 2
        # The previous generation sticks around as the recovery fallback.
        assert (root / (MANIFEST_NAME + ".prev")).exists()
