"""Budget-degradation parity: batched vs naive evaluation must degrade
at exactly the same cell, even when a wall-clock deadline trips mid-row.

The deadline used to be checked once per row batch on the engine path
(``BudgetTracker.charge_cells``), so a deadline breaching mid-row cut the
naive grid mid-row but the batched grid only at the next row boundary.
The evaluator now charges per cell whenever a deadline is set; these
tests pin that contract with an injectable deterministic clock
(``QueryBudget.clock``)."""

from __future__ import annotations

import pytest

from repro.mdx.budget import BudgetTracker, QueryBudget
from repro.perf.config import naive_mode
from repro.warehouse import Warehouse

# 4 columns x employee-instance rows; no WITH clause so the scenario
# cache cannot blur the two modes' clock-call sequences.
GRID_QUERY = """
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe], [Lisa]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


class SteppingClock:
    """Monotonic fake clock: every read advances time by ``step_s``."""

    def __init__(self, step_s: float = 0.001) -> None:
        self.now = 0.0
        self.step = step_s
        self.reads = 0

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        self.reads += 1
        return value


def _run(example, deadline_ms: float, naive: bool):
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
    budget = QueryBudget(deadline_ms=deadline_ms, clock=SteppingClock())
    if naive:
        with naive_mode():
            return warehouse.query(GRID_QUERY, budget=budget)
    return warehouse.query(GRID_QUERY, budget=budget)


class TestTrackerClockInjection:
    def test_budget_clock_reaches_the_tracker(self):
        clock = SteppingClock(step_s=0.01)  # 10ms per read
        tracker = BudgetTracker(QueryBudget(deadline_ms=25.0, clock=clock))
        assert tracker.charge_cell() is True  # elapsed 10ms
        assert tracker.charge_cell() is True  # elapsed 20ms
        assert tracker.charge_cell() is False  # elapsed 30ms >= 25ms
        assert tracker.breached == "deadline"

    def test_explicit_clock_argument_wins(self):
        budget_clock = SteppingClock(step_s=100.0)
        override = SteppingClock(step_s=0.0)
        tracker = BudgetTracker(
            QueryBudget(deadline_ms=1.0, clock=budget_clock), clock=override
        )
        assert tracker.charge_cell() is True  # override never advances
        assert budget_clock.reads == 0

    def test_charge_cells_checks_deadline_once_per_batch(self):
        # The documented limitation that motivates per-cell charging on
        # the batched path whenever a deadline is set.
        clock = SteppingClock(step_s=0.01)
        tracker = BudgetTracker(QueryBudget(deadline_ms=25.0, clock=clock))
        assert tracker.charge_cells(100) == 100  # checked at 10ms: granted
        assert tracker.charge_cells(100) == 100  # checked at 20ms: granted
        assert tracker.charge_cells(100) == 0  # checked at 30ms: breach
        assert tracker.breached == "deadline"
        # 300 cells were requested but only one deadline check per batch
        # happened — the per-cell path would have caught the breach at
        # cell 25.  This is why evaluate_grid charges per cell whenever
        # budget.deadline_ms is set.
        assert tracker.cells_evaluated == 200


class TestMidRowDeadlineParity:
    @pytest.mark.parametrize("deadline_ms", [1.5, 2.5, 3.5, 5.5, 9.5])
    def test_batched_and_naive_degrade_at_the_same_cell(
        self, example, deadline_ms
    ):
        engine = _run(example, deadline_ms, naive=False)
        naive = _run(example, deadline_ms, naive=True)
        assert engine.cells == naive.cells  # identical ⊥ pattern
        assert engine.stats.get("cells_evaluated") == naive.stats.get(
            "cells_evaluated"
        )
        assert engine.stats.get("cells_skipped") == naive.stats.get(
            "cells_skipped"
        )
        assert [d.to_dict() for d in engine.degradations] == [
            d.to_dict() for d in naive.degradations
        ]

    def test_deadline_trips_mid_row(self, example):
        """The regression case: the breach lands inside a row, not at a
        row boundary — charge-per-row batching would round it up."""
        engine = _run(example, 2.5, naive=False)
        naive = _run(example, 2.5, naive=True)
        for result in (engine, naive):
            assert result.is_partial
            assert result.degradations[0].reason == "deadline"
            evaluated = result.stats["cells_evaluated"]
            assert evaluated == 2  # 1ms per charge, breach at 2.5ms
            assert evaluated % len(result.columns) != 0  # mid-row
            assert result.stats["cells_skipped"] > 0


class TestNarrowed:
    """``QueryBudget.narrowed`` — the query service's deadline propagation."""

    def test_none_cap_returns_self(self):
        budget = QueryBudget(deadline_ms=100.0, max_cells=5)
        assert budget.narrowed(None) is budget

    def test_caps_a_looser_deadline(self):
        budget = QueryBudget(deadline_ms=100.0, max_cells=5)
        narrowed = budget.narrowed(60.0)
        assert narrowed.deadline_ms == 60.0
        assert narrowed.max_cells == 5  # non-deadline limits survive

    def test_keeps_a_tighter_existing_deadline(self):
        budget = QueryBudget(deadline_ms=30.0)
        assert budget.narrowed(60.0) is budget

    def test_adds_a_deadline_to_an_unlimited_budget(self):
        narrowed = QueryBudget().narrowed(40.0)
        assert narrowed.deadline_ms == 40.0

    def test_negative_cap_clamps_to_zero(self):
        narrowed = QueryBudget().narrowed(-5.0)
        assert narrowed.deadline_ms == 0.0
        tracker = BudgetTracker(narrowed)
        assert not tracker.charge_cell()  # degrades immediately
        assert tracker.breached == "deadline"

    def test_preserves_the_injected_clock(self):
        ticks = [0.0]
        budget = QueryBudget(deadline_ms=1000.0, clock=lambda: ticks[0])
        narrowed = budget.narrowed(500.0)
        tracker = BudgetTracker(narrowed)
        assert tracker.charge_cell()
        ticks[0] = 0.6  # 600ms on the injected clock
        assert not tracker.charge_cell()
        assert tracker.breached == "deadline"
