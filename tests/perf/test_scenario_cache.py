"""Tests for the scenario-cube cache (repro.perf.scenario_cache)."""

from __future__ import annotations

import pytest

from repro.core.operators import ChangeTuple
from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario, PositiveScenario
from repro.perf.scenario_cache import ScenarioCache
from repro.warehouse import Warehouse

PERSPECTIVE_QUERY = """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
"""


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestFingerprints:
    def test_negative_normalises_perspective_order(self):
        a = NegativeScenario("Org", ["Feb", "Apr"], Semantics.STATIC, Mode.VISUAL)
        b = NegativeScenario("Org", ["Apr", "Feb"], Semantics.STATIC, Mode.VISUAL)
        assert a.fingerprint() == b.fingerprint()

    def test_negative_distinguishes_semantics_and_mode(self):
        base = NegativeScenario("Org", ["Feb"], Semantics.STATIC, Mode.VISUAL)
        other_sem = NegativeScenario(
            "Org", ["Feb"], Semantics.FORWARD, Mode.VISUAL
        )
        other_mode = NegativeScenario(
            "Org", ["Feb"], Semantics.STATIC, Mode.NON_VISUAL
        )
        assert base.fingerprint() != other_sem.fingerprint()
        assert base.fingerprint() != other_mode.fingerprint()

    def test_positive_normalises_change_order(self):
        c1 = ChangeTuple("Joe", "FTE", "PTE", "Feb")
        c2 = ChangeTuple("Lisa", "FTE", "PTE", "Apr")
        a = PositiveScenario("Org", [c1, c2])
        b = PositiveScenario("Org", [c2, c1])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != PositiveScenario("Org", [c1]).fingerprint()

    def test_fingerprints_are_hashable(self):
        scenario = NegativeScenario("Org", ["Feb"])
        assert hash(scenario.fingerprint()) == hash(scenario.fingerprint())


class TestScenarioCacheUnit:
    def test_hit_and_miss_counting(self):
        cache = ScenarioCache()
        assert cache.get("k", 0) is None
        cache.put("k", 0, "value")
        assert cache.get("k", 0) == "value"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_version_mismatch_invalidates(self):
        cache = ScenarioCache()
        cache.put("k", 0, "old")
        assert cache.get("k", 1) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ScenarioCache(maxsize=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh a; b is now LRU
        cache.put("c", 0, 3)
        assert len(cache) == 2
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == 1
        assert cache.get("c", 0) == 3

    def test_discard_counts_invalidation(self):
        cache = ScenarioCache()
        cache.put("k", 0, "v")
        cache.discard("k")
        cache.discard("k")  # absent: no double count
        assert cache.stats.invalidations == 1

    def test_discard_is_not_an_eviction_or_miss(self):
        cache = ScenarioCache()
        cache.put("k", 0, "v")
        cache.discard("k")
        assert cache.stats.invalidations == 1
        assert cache.stats.evictions == 0
        assert cache.stats.misses == 0

    def test_lru_eviction_is_counted_once(self):
        cache = ScenarioCache(maxsize=1)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)  # evicts a
        assert cache.stats.evictions == 1
        assert cache.stats.invalidations == 0
        # Looking up the evicted key is a plain miss, not a second
        # eviction or an invalidation.
        assert cache.get("a", 0) is None
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert cache.stats.invalidations == 0

    def test_version_mismatch_counts_one_invalidation_and_one_miss(self):
        cache = ScenarioCache()
        cache.put("k", 0, "old")
        assert cache.get("k", 1) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0
        # The entry is gone: the next stale-version lookup is a plain
        # miss, not a second invalidation.
        assert cache.get("k", 1) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 2

    def test_overwrite_same_key_never_evicts(self):
        cache = ScenarioCache(maxsize=1)
        cache.put("k", 0, "v1")
        cache.put("k", 1, "v2")
        assert len(cache) == 1
        assert cache.stats.evictions == 0
        assert cache.get("k", 1) == "v2"

    def test_eviction_appears_in_snapshot(self):
        cache = ScenarioCache(maxsize=1)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.stats.snapshot()["evictions"] == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            ScenarioCache(maxsize=0)


class TestWarehouseIntegration:
    def test_repeat_query_hits_cache(self, warehouse):
        first = warehouse.query(PERSPECTIVE_QUERY)
        second = warehouse.query(PERSPECTIVE_QUERY)
        assert first.cells == second.cells
        assert first.stats.get("scenario_cache_misses") == 1
        assert second.stats.get("scenario_cache_hits") == 1
        assert warehouse.scenario_cache.stats.builds == 1

    def test_mutation_invalidates(self, warehouse):
        warehouse.query(PERSPECTIVE_QUERY)
        addr, value = next(iter(warehouse.cube.leaf_cells()))
        warehouse.cube.set_value(addr, value + 1.0)
        result = warehouse.query(PERSPECTIVE_QUERY)
        assert result.stats.get("scenario_cache_misses") == 1
        assert warehouse.scenario_cache.stats.invalidations == 1

    def test_equivalent_with_clauses_share_one_entry(self, warehouse):
        reordered = PERSPECTIVE_QUERY.replace("(Feb), (Apr)", "(Apr), (Feb)")
        first = warehouse.query(PERSPECTIVE_QUERY)
        second = warehouse.query(reordered)
        assert first.cells == second.cells
        assert second.stats.get("scenario_cache_hits") == 1
        assert len(warehouse.scenario_cache) == 1

    def test_unscenarioed_query_bypasses_cache(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Qtr1]} ON COLUMNS FROM Warehouse"
        )
        assert "scenario_cache_misses" not in result.stats
        assert len(warehouse.scenario_cache) == 0

    def test_eviction_surfaces_in_result_stats(self, warehouse):
        warehouse.scenario_cache = ScenarioCache(maxsize=1)
        other = PERSPECTIVE_QUERY.replace("(Feb), (Apr)", "(Mar)")
        first = warehouse.query(PERSPECTIVE_QUERY)
        second = warehouse.query(other)  # displaces the first entry
        assert "scenario_cache_evictions" not in first.stats
        assert second.stats.get("scenario_cache_evictions") == 1
        assert warehouse.scenario_cache.stats.evictions == 1


class TestConcurrentInvalidation:
    """Satellite regression: scenario-cache invalidation under concurrent
    ``Cube.set_value`` — readers racing a writer must neither crash nor
    ever serve a scenario cube computed against a stale base version."""

    def test_queries_race_mutations_without_corruption(self, warehouse):
        import threading

        errors: list[BaseException] = []
        stop = threading.Event()
        addr, base_value = next(iter(warehouse.cube.leaf_cells()))

        def reader() -> None:
            while not stop.is_set():
                try:
                    warehouse.query(PERSPECTIVE_QUERY, analyze=False)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        def writer() -> None:
            bump = 0.0
            while not stop.is_set():
                bump += 1.0
                try:
                    warehouse.cube.set_value(addr, base_value + bump)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        # The cache settles: a fresh warehouse rebuilt from the final leaf
        # data answers identically (nothing stale survived the storm).
        from repro.workload.running_example import build_running_example

        final = warehouse.query(PERSPECTIVE_QUERY, analyze=False)
        rebuilt_example = build_running_example()
        rebuilt = Warehouse(
            rebuilt_example.schema, rebuilt_example.cube, name="Warehouse"
        )
        for leaf_addr, value in warehouse.cube.leaf_cells():
            rebuilt.cube.set_value(leaf_addr, value)
        expected = rebuilt.query(PERSPECTIVE_QUERY, analyze=False)
        assert final.cells == expected.cells

    def test_lookup_accounting_is_atomic(self, warehouse):
        import threading

        addr, value = next(iter(warehouse.cube.leaf_cells()))
        warehouse.query(PERSPECTIVE_QUERY)  # seed one cache entry

        def bump(step: int) -> None:
            warehouse.cube.set_value(addr, value + step)
            warehouse.query(PERSPECTIVE_QUERY)

        threads = [
            threading.Thread(target=bump, args=(step,)) for step in range(1, 5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every scenarioed query does exactly one lookup; under a torn
        # counter update these would not add up.
        stats = warehouse.scenario_cache.stats
        assert stats.hits + stats.misses == 5
        assert stats.invalidations <= stats.misses
        # One query text -> at most one surviving entry.
        assert len(warehouse.scenario_cache) <= 1
