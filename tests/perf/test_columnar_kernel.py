"""Columnar kernel parity: dense planes vs sparse planes vs the dict scan.

The vectorized rollup kernel mirrors leaf values into chunked numpy
planes (dense or coordinate-sparse per chunk) and reduces gathered
arrays.  Its contract is that this is *invisible*: under the default
strict reduction mode every representation produces results bit-identical
to the naive dict scan — across densities, interleaved ``set_value``
mutations, frozen snapshots, and fork-COW plane sharing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.aggregation import AGGREGATORS
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.missing import MISSING, is_missing
from repro.olap.schema import CubeSchema
from repro.perf.config import fast_reduction, fast_tolerance, naive_mode
from repro.perf.rollup_index import RollupIndex

MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun")
MEASURES = ("Sales", "COGS")
LEAF_ADDRESSES = [(m, s) for m in MONTHS for s in MEASURES]

#: tiny planes so a 12-leaf cube spans several chunks
PLANE_SIZE = 4


def _tiny_cube() -> Cube:
    time = Dimension("Time", ordered=True)
    time.add_member("H1")
    time.add_children("H1", ["Jan", "Feb", "Mar"])
    time.add_member("H2")
    time.add_children("H2", ["Apr", "May", "Jun"])
    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Sales", "COGS"])
    return Cube(CubeSchema([time, measures]))


def _all_addresses(schema) -> list[tuple[str, str]]:
    time_members = [
        m.name
        for m in schema.dimension("Time").root.descendants(include_self=True)
    ]
    measure_members = [
        m.name
        for m in schema.dimension("Measures").root.descendants(include_self=True)
    ]
    return [(t, s) for t in time_members for s in measure_members]


def _assert_parity(cube: Cube, index: RollupIndex, addresses) -> None:
    """Indexed (columnar) results must equal the naive scan bit-for-bit."""
    for address in addresses:
        for aggregator in AGGREGATORS:
            indexed = index.rollup(cube._leaf_cells, address, aggregator)
            with naive_mode():
                naive = cube.rollup(address, aggregator)
            if is_missing(indexed) or is_missing(naive):
                assert is_missing(indexed) and is_missing(naive), (
                    address,
                    aggregator,
                )
            else:
                assert repr(indexed) == repr(naive), (address, aggregator)


values_strategy = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

mutations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(LEAF_ADDRESSES) - 1),
        st.one_of(st.none(), values_strategy),
    ),
    min_size=1,
    max_size=12,
)


class TestColumnarParityProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        density=st.floats(min_value=0.01, max_value=1.0),
        chosen=st.permutations(range(len(LEAF_ADDRESSES))),
        values=st.lists(
            values_strategy,
            min_size=len(LEAF_ADDRESSES),
            max_size=len(LEAF_ADDRESSES),
        ),
        ops=mutations,
    )
    def test_dense_sparse_dict_parity(self, density, chosen, values, ops):
        """Across fill densities 0.01-1.0: dense planes, compacted sparse
        planes, and the dict scan all agree bit-for-bit, including under
        interleaved mutations."""
        cube = _tiny_cube()
        n_fill = max(1, round(density * len(LEAF_ADDRESSES)))
        for slot in chosen[:n_fill]:
            cube.set_value(LEAF_ADDRESSES[slot], values[slot])
        addresses = _all_addresses(cube.schema)

        # dense planes (several of them: plane_size 4 over up to 12 leaves)
        index = RollupIndex.build(cube, plane_size=PLANE_SIZE)
        assert index.plane_store.n_planes >= 1
        _assert_parity(cube, index, addresses)

        # sparse planes: compact every sealed chunk regardless of density
        index.compact_planes(ceiling=1.0)
        if index.plane_store.n_planes > 1:
            assert "sparse" in index.plane_store.plane_kinds()
        cube._rollup_index = index  # so set_value maintains this index
        # re-valuing one live leaf flushes the memo without desyncing the
        # planes, so the next parity pass actually gathers from them
        first_addr = LEAF_ADDRESSES[chosen[0]]
        if first_addr in cube._leaf_cells:
            cube.set_value(first_addr, cube._leaf_cells[first_addr])
        _assert_parity(cube, index, addresses)

        # interleaved mutations: inserts, updates and deletes against the
        # mixed dense/sparse layout keep the kernel bit-identical
        for slot, value in ops:
            cube.set_value(
                LEAF_ADDRESSES[slot], MISSING if value is None else value
            )
            _assert_parity(cube, index, addresses)

    @settings(max_examples=15, deadline=None)
    @given(
        density=st.floats(min_value=0.01, max_value=1.0),
        chosen=st.permutations(range(len(LEAF_ADDRESSES))),
        values=st.lists(
            values_strategy,
            min_size=len(LEAF_ADDRESSES),
            max_size=len(LEAF_ADDRESSES),
        ),
        ops=mutations,
    )
    def test_frozen_snapshot_fork_cow(self, density, chosen, values, ops):
        """A frozen snapshot forks the index copy-on-write: the snapshot
        keeps serving the pinned values (bit-identical to its own naive
        scan) while the live cube diverges plane by plane."""
        cube = _tiny_cube()
        n_fill = max(1, round(density * len(LEAF_ADDRESSES)))
        for slot in chosen[:n_fill]:
            cube.set_value(LEAF_ADDRESSES[slot], values[slot])
        addresses = _all_addresses(cube.schema)
        live_index = cube.rollup_index()

        snap = cube.frozen_copy()
        snap_index = snap._rollup_index
        assert snap_index is not None, "frozen_copy must fork a built index"
        # COW: planes are shared objects until either side writes
        assert (
            snap_index.plane_store._planes[0]
            is live_index.plane_store._planes[0]
        )

        pinned = {
            (address, agg): snap.rollup(address, agg)
            for address in addresses
            for agg in AGGREGATORS
        }

        for slot, value in ops:
            cube.set_value(
                LEAF_ADDRESSES[slot], MISSING if value is None else value
            )
        _assert_parity(cube, live_index, addresses)

        # the snapshot still serves the pinned values...
        for (address, agg), expected in pinned.items():
            now = snap.rollup(address, agg)
            if is_missing(expected):
                assert is_missing(now), (address, agg)
            else:
                assert repr(now) == repr(expected), (address, agg)
        # ...and stays bit-identical to its own naive scan
        _assert_parity(snap, snap_index, addresses)


class TestFastReduction:
    def test_fast_mode_exact_on_integer_workloads(self):
        cube = _tiny_cube()
        for i, addr in enumerate(LEAF_ADDRESSES):
            cube.set_value(addr, float(i + 1))
        index = cube.rollup_index()
        addresses = _all_addresses(cube.schema)
        strict = {
            a: index.rollup(cube._leaf_cells, a) for a in addresses
        }
        with fast_reduction():
            for address in addresses:
                fast = index.rollup(cube._leaf_cells, address)
                assert repr(fast) == repr(strict[address]), address

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            values_strategy,
            min_size=len(LEAF_ADDRESSES),
            max_size=len(LEAF_ADDRESSES),
        )
    )
    def test_fast_mode_within_tolerance(self, values):
        cube = _tiny_cube()
        for addr, value in zip(LEAF_ADDRESSES, values):
            cube.set_value(addr, value)
        index = cube.rollup_index()
        addresses = _all_addresses(cube.schema)
        for address in addresses:
            strict = index.rollup(cube._leaf_cells, address)
            with fast_reduction():
                fast = index.rollup(cube._leaf_cells, address)
            scale = max(1.0, abs(strict))
            assert abs(fast - strict) <= fast_tolerance() * scale, address

    def test_fast_and_strict_memoised_separately(self):
        cube = _tiny_cube()
        cube.set_value(("Jan", "Sales"), 0.1)
        cube.set_value(("Feb", "Sales"), 0.2)
        index = cube.rollup_index()
        address = ("H1", "Sales")
        strict = index.rollup(cube._leaf_cells, address)
        with fast_reduction():
            index.rollup(cube._leaf_cells, address)
        # back in strict mode the memo must serve the strict value again
        assert repr(index.rollup(cube._leaf_cells, address)) == repr(strict)
