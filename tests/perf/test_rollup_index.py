"""Unit tests for the per-cube rollup index (repro.perf.rollup_index)."""

from __future__ import annotations

import pytest

from repro.errors import MemberNotFoundError
from repro.olap.aggregation import AGGREGATORS, aggregate
from repro.olap.cube import Cube
from repro.olap.missing import MISSING, is_missing
from repro.perf.config import naive_mode
from repro.perf.rollup_index import RollupIndex


def _all_addresses(schema):
    """Every addressable cell of a (small) schema, leaf and derived."""
    per_dim = []
    for i, dimension in enumerate(schema.dimensions):
        coords = [
            m.name for m in dimension.root.descendants(include_self=True)
        ]
        if schema.is_varying(dimension.name):
            varying = schema.varying_dimension(dimension.name)
            leaf_paths = [
                instance.full_path
                for member in dimension.root.leaves()
                for instance in varying.instances_of(member.name)
            ]
            coords = [
                c for c in coords if not schema.coordinate_is_leaf(i, c)
            ] + leaf_paths
        per_dim.append(coords)
    addresses = [()]
    for coords in per_dim:
        addresses = [a + (c,) for a in addresses for c in coords]
    return addresses


def _naive_rollup(cube, addr, aggregator):
    with naive_mode():
        return cube.rollup(addr, aggregator)


class TestAgreementWithNaive:
    def test_every_address_every_aggregator(self, example):
        cube = example.cube
        for addr in _all_addresses(cube.schema):
            for aggregator in AGGREGATORS:
                indexed = cube.rollup_index().rollup(
                    cube._leaf_cells, addr, aggregator
                )
                naive = _naive_rollup(cube, addr, aggregator)
                assert indexed == naive or (
                    is_missing(indexed) and is_missing(naive)
                ), (addr, aggregator)

    def test_sum_is_bit_identical(self, example):
        """Same leaf visit order => same float summation order."""
        cube = example.cube
        for addr in _all_addresses(cube.schema):
            indexed = cube.rollup(addr)
            naive = _naive_rollup(cube, addr, "sum")
            if is_missing(indexed):
                assert is_missing(naive)
            else:
                assert indexed == naive
                assert repr(indexed) == repr(naive)

    def test_scope_cells_match_naive_order(self, example):
        cube = example.cube
        for addr in _all_addresses(cube.schema):
            indexed = list(cube.scope_cells(addr))
            with naive_mode():
                naive = list(cube.scope_cells(addr))
            assert indexed == naive


class TestIncrementalMaintenance:
    def _assert_consistent(self, cube):
        rebuilt = RollupIndex.build(cube)
        live = cube.rollup_index()
        for addr in _all_addresses(cube.schema):
            assert live.scope_ids(addr) == rebuilt.scope_ids(addr), addr

    def test_add_then_remove_leaf(self, example):
        cube = example.cube
        cube.rollup_index()  # build before mutating
        addr = cube.schema.address(
            Organization="Organization/FTE/Lisa",
            Location="MA",
            Time="Feb",
            Measures="Benefits",
        )
        cube.set_value(addr, 123.0)
        self._assert_consistent(cube)
        cube.set_value(addr, MISSING)
        self._assert_consistent(cube)

    def test_revalue_in_place_updates_rollups(self, example):
        cube = example.cube
        addr, old = next(iter(cube.leaf_cells()))
        parent = tuple(
            cube.schema.dimensions[i].root.name for i in range(cube.schema.n_dims)
        )
        before = cube.rollup(parent)
        cube.set_value(addr, old + 5.0)
        after = cube.rollup(parent)
        assert after == _naive_rollup(cube, parent, "sum")
        assert after != before

    def test_delete_missing_cell_is_noop(self, example):
        cube = example.cube
        version = cube.version
        cube.set_value(
            cube.schema.address(
                Organization="Organization/FTE/Lisa",
                Location="MA",
                Time="Feb",
                Measures="Benefits",
            ),
            MISSING,
        )
        assert cube.version == version

    def test_copy_is_isolated(self, example):
        cube = example.cube
        clone = cube.copy()
        addr, old = next(iter(clone.leaf_cells()))
        clone.set_value(addr, old + 100.0)
        parent = tuple(
            d.root.name for d in cube.schema.dimensions
        )
        assert cube.rollup(parent) == _naive_rollup(cube, parent, "sum")
        assert clone.rollup(parent) == _naive_rollup(clone, parent, "sum")
        assert clone.rollup(parent) != cube.rollup(parent)


class TestContracts:
    def test_unknown_member_raises_like_naive(self, example):
        cube = example.cube
        bad = cube.schema.address(
            Organization="FTE", Location="Nowhere", Time="Jan",
            Measures="Salary",
        )
        with pytest.raises(MemberNotFoundError):
            cube.rollup(bad)
        with naive_mode(), pytest.raises(MemberNotFoundError):
            cube.rollup(bad)

    def test_empty_cube_rollup_is_missing(self, tiny_schema):
        cube = Cube(tiny_schema)
        root = tuple(d.root.name for d in tiny_schema.dimensions)
        assert is_missing(cube.rollup(root))

    def test_memo_counts_hits(self, example):
        cube = example.cube
        index = cube.rollup_index()
        root = tuple(d.root.name for d in cube.schema.dimensions)
        index.rollup(cube._leaf_cells, root)
        misses = index.stats.misses
        hits = index.stats.hits
        index.rollup(cube._leaf_cells, root)
        assert index.stats.hits == hits + 1
        assert index.stats.misses == misses

    def test_mutation_flushes_memo(self, example):
        cube = example.cube
        root = tuple(d.root.name for d in cube.schema.dimensions)
        before = cube.rollup(root)
        addr, old = next(iter(cube.leaf_cells()))
        cube.set_value(addr, old + 1.0)
        assert cube.rollup(root) == float(before) + 1.0


class TestPlaneScopes:
    """partial_scope/combine_scope/rollup_scope — the batched-grid API."""

    def test_partial_plus_combine_equals_full_scope(self, example):
        cube = example.cube
        index = cube.rollup_index()
        for addr in _all_addresses(cube.schema):
            pairs = list(enumerate(addr))
            for split in range(len(pairs) + 1):
                scope = index.combine_scope(
                    index.partial_scope(pairs[:split]),
                    index.partial_scope(pairs[split:]),
                )
                empty, ids = scope
                expected = index.scope_ids(addr)
                if empty:
                    assert expected == []
                elif ids is None:
                    assert expected == sorted(index._addr_of)
                else:
                    assert sorted(ids) == expected

    def test_rollup_scope_matches_rollup(self, example):
        cube = example.cube
        index = cube.rollup_index()
        for addr in _all_addresses(cube.schema):
            scope = index.partial_scope(list(enumerate(addr)))
            via_scope = index.rollup_scope(cube._leaf_cells, addr, scope)
            index.touch()  # drop the memo so rollup() recomputes
            direct = index.rollup(cube._leaf_cells, addr)
            assert via_scope == direct or (
                is_missing(via_scope) and is_missing(direct)
            )


class TestStreamingAggregators:
    def test_agg_count_single_pass(self):
        values = iter([1.0, MISSING, 2.0, MISSING, 3.0])
        assert aggregate("count", values) == 3.0

    def test_all_missing(self):
        # count distinguishes "no cells seen" (⊥) from "cells seen, none
        # present" (0.0); the value aggregators are ⊥ either way.
        assert aggregate("count", iter([MISSING, MISSING])) == 0.0
        for name in ("sum", "avg", "min", "max"):
            assert is_missing(aggregate(name, iter([MISSING, MISSING])))

    def test_empty_is_missing(self):
        for name in AGGREGATORS:
            assert is_missing(aggregate(name, iter([])))
