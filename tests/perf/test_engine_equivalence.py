"""Equivalence properties: the perf engine must be invisible.

Every test here runs the same computation twice — once with the engine
(rollup index + scenario cache + batched grids) and once under
``repro.perf.naive_mode()`` (the pre-engine full-scan/per-cell path) —
and requires *bit-identical* results: same cells, same ⊥ pattern, same
failpoint hits, same budget degradations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultInjectedError
from repro.faults import FAULTS
from repro.mdx.budget import QueryBudget
from repro.olap.aggregation import AGGREGATORS
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.missing import MISSING, is_missing
from repro.olap.schema import CubeSchema
from repro.perf.config import naive_mode
from repro.warehouse import Warehouse

# -- a small static cube for the mutation property ---------------------------

MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun")
MEASURES = ("Sales", "COGS")


def _tiny_cube() -> Cube:
    time = Dimension("Time", ordered=True)
    time.add_member("H1")
    time.add_children("H1", ["Jan", "Feb", "Mar"])
    time.add_member("H2")
    time.add_children("H2", ["Apr", "May", "Jun"])
    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Sales", "COGS"])
    return Cube(CubeSchema([time, measures]))


LEAF_ADDRESSES = [(m, s) for m in MONTHS for s in MEASURES]


def _all_addresses(schema) -> list[tuple[str, str]]:
    time_members = [
        m.name
        for m in schema.dimension("Time").root.descendants(include_self=True)
    ]
    measure_members = [
        m.name
        for m in schema.dimension("Measures").root.descendants(include_self=True)
    ]
    return [(t, s) for t in time_members for s in measure_members]


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(LEAF_ADDRESSES) - 1),
        st.one_of(
            st.none(),  # delete
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
        ),
    ),
    min_size=1,
    max_size=25,
)


class TestIndexedRollupProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_matches_naive_under_interleaved_mutations(self, ops):
        """After every mutation, every (address, aggregator) pair agrees
        bit-for-bit between the indexed and the naive scan path."""
        cube = _tiny_cube()
        addresses = _all_addresses(cube.schema)
        cube.rollup_index()  # force incremental maintenance from op one
        for leaf_index, value in ops:
            addr = LEAF_ADDRESSES[leaf_index]
            cube.set_value(addr, MISSING if value is None else value)
            for address in addresses:
                for aggregator in AGGREGATORS:
                    indexed = cube.rollup(address, aggregator)
                    with naive_mode():
                        naive = cube.rollup(address, aggregator)
                    if is_missing(indexed) or is_missing(naive):
                        assert is_missing(indexed) and is_missing(naive), (
                            address, aggregator
                        )
                    else:
                        assert indexed == naive, (address, aggregator)


# -- full-query equivalence on the running example ---------------------------


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


QUERIES = [
    # plain derived grid (index + batch, no scenario)
    """
    SELECT {Time.Members} ON COLUMNS, {Location.Members} ON ROWS
    FROM Warehouse WHERE (Measures.[Compensation])
    """,
    # negative scenario, visual (scenario cache + relocated cube)
    """
    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
    SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
           {[Joe]} ON ROWS
    FROM Warehouse WHERE ([NY], [Salary])
    """,
    # negative scenario, non-visual (aggregates from the original cube)
    """
    WITH PERSPECTIVE {(Feb)} FOR Organization STATIC
    SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
           {Organization.Children} ON ROWS
    FROM Warehouse WHERE ([Salary])
    """,
    # positive scenario
    """
    WITH CHANGES {([Lisa], FTE, PTE, Apr)} FOR Organization VISUAL
    SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
           {Organization.Children} ON ROWS
    FROM Warehouse WHERE ([Salary])
    """,
    # Filter condition probes (budgeted axis resolution) + slicer
    """
    SELECT {Time.[Qtr1]} ON COLUMNS,
           {Filter(Location.[East].Children, (Measures.[Salary]) > 10)} ON ROWS
    FROM Warehouse
    WHERE (Organization.[Contractor].[Joe], Measures.[Salary])
    """,
]


def _fresh(example_builder):
    from repro.workload.running_example import build_running_example

    ex = build_running_example()
    return Warehouse(ex.schema, ex.cube, name="Warehouse")


class TestQueryEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_engine_matches_naive(self, warehouse, query):
        engine = warehouse.query(query)
        with naive_mode():
            naive = warehouse.query(query)
        assert engine.cells == naive.cells
        assert engine.row_labels() == naive.row_labels()
        assert engine.column_labels() == naive.column_labels()

    @pytest.mark.parametrize("query", QUERIES)
    def test_repeat_under_cache_still_matches(self, warehouse, query):
        warehouse.query(query)  # warm scenario cache + index + memo
        repeat = warehouse.query(query)
        with naive_mode():
            naive = warehouse.query(query)
        assert repeat.cells == naive.cells


class TestFaultEquivalence:
    """The mdx.cell failpoint must fire at the same evaluation step."""

    @settings(max_examples=15, deadline=None)
    @given(nth=st.integers(min_value=1, max_value=30))
    def test_fail_after_nth_hit_is_path_independent(self, nth):
        query = QUERIES[0]

        def outcome(use_naive: bool):
            warehouse = _fresh(None)
            FAULTS.clear()
            FAULTS.fail_after("mdx.cell", nth)
            try:
                if use_naive:
                    with naive_mode():
                        result = warehouse.query(query)
                else:
                    result = warehouse.query(query)
                return ("ok", result.cells)
            except FaultInjectedError as err:
                return ("fault", err.failpoint)
            finally:
                FAULTS.clear()

        assert outcome(False) == outcome(True)

    def test_scenario_query_fault_parity(self, warehouse):
        FAULTS.fail_after("mdx.cell", 3)
        with pytest.raises(FaultInjectedError):
            warehouse.query(QUERIES[1])
        FAULTS.clear()
        FAULTS.fail_after("mdx.cell", 3)
        with naive_mode(), pytest.raises(FaultInjectedError):
            warehouse.query(QUERIES[1])


class TestBudgetEquivalence:
    @pytest.mark.parametrize("max_cells", [0, 1, 2, 3, 5, 8, 13, 1000])
    def test_cell_cap_cuts_identically(self, warehouse, max_cells):
        query = QUERIES[0]
        budget = QueryBudget(max_cells=max_cells)
        engine = warehouse.query(query, budget=budget)
        with naive_mode():
            naive = warehouse.query(query, budget=budget)
        assert engine.cells == naive.cells
        assert [d.to_dict() for d in engine.degradations] == [
            d.to_dict() for d in naive.degradations
        ]

    def test_zero_deadline_evaluates_nothing(self, warehouse):
        budget = QueryBudget(deadline_ms=0)
        engine = warehouse.query(QUERIES[0], budget=budget)
        with naive_mode():
            naive = warehouse.query(QUERIES[0], budget=budget)
        assert all(is_missing(v) for row in engine.cells for v in row)
        assert engine.cells == naive.cells
        assert engine.degradations[0].cells_evaluated == 0
        assert engine.degradations[0].reason == "deadline"
        assert naive.degradations[0].reason == "deadline"


class TestInterleavedMutationQueries:
    def test_mutate_between_queries_stays_equivalent(self, warehouse):
        query = QUERIES[2]
        for step in range(4):
            engine = warehouse.query(query)
            with naive_mode():
                naive = warehouse.query(query)
            assert engine.cells == naive.cells, f"step {step}"
            addr, value = next(iter(warehouse.cube.leaf_cells()))
            warehouse.cube.set_value(addr, value + float(step + 1))
