"""The write-ahead journal: append/recover round trips, checksum and
ordering enforcement, physical torn-tail truncation."""

from __future__ import annotations

import pytest

from repro.catalog.journal import CatalogJournal
from repro.catalog.model import canonical_json, payload_digest


@pytest.fixture
def journal(tmp_path):
    j = CatalogJournal(tmp_path / "journal.wal")
    yield j
    j.close()


class TestAppendRecover:
    def test_round_trip(self, journal):
        assert journal.append({"op": "create", "scenario": "s1"}) == 1
        assert journal.append({"op": "drop", "scenario": "s1"}) == 2
        journal.close()
        records, notes = journal.recover()
        assert notes == []
        assert [r["lsn"] for r in records] == [1, 2]
        assert [r["op"] for r in records] == ["create", "drop"]
        assert journal.next_lsn == 3

    def test_recover_empty_or_missing(self, journal):
        records, notes = journal.recover()
        assert records == [] and notes == []
        assert journal.next_lsn == 1

    def test_reset_truncates_but_keeps_file(self, journal):
        journal.append({"op": "create", "scenario": "s1"})
        journal.reset()
        assert journal.path.exists()
        assert journal.size_bytes() == 0


class TestTornTails:
    """Every corruption class rolls back to the last intact record and
    physically truncates the tail."""

    def _fill(self, journal, n=2):
        for i in range(n):
            journal.append({"op": "create", "scenario": f"s{i}"})
        journal.close()

    def _assert_rolled_back(self, journal, keep=2):
        records, notes = journal.recover()
        assert len(records) == keep
        assert len(notes) == 1
        # truncation is physical: a second recover sees a clean file
        records2, notes2 = journal.recover()
        assert [r["lsn"] for r in records2] == [r["lsn"] for r in records]
        assert notes2 == []

    def test_half_written_line(self, journal):
        self._fill(journal)
        with open(journal.path, "ab") as h:
            h.write(b"deadbeef half-a-record-without-newline")
        self._assert_rolled_back(journal)

    def test_checksum_mismatch(self, journal):
        self._fill(journal)
        body = canonical_json({"lsn": 3, "op": "create", "scenario": "x"})
        with open(journal.path, "ab") as h:
            h.write(f"{'0' * 64} {body}\n".encode())
        self._assert_rolled_back(journal)

    def test_garbage_json(self, journal):
        self._fill(journal)
        body = "not-json{"
        with open(journal.path, "ab") as h:
            h.write(f"{payload_digest(body)} {body}\n".encode())
        self._assert_rolled_back(journal)

    def test_out_of_order_lsn(self, journal):
        self._fill(journal)
        body = canonical_json({"lsn": 1, "op": "create", "scenario": "x"})
        with open(journal.path, "ab") as h:
            h.write(f"{payload_digest(body)} {body}\n".encode())
        self._assert_rolled_back(journal)

    def test_non_utf8_tail(self, journal):
        self._fill(journal)
        with open(journal.path, "ab") as h:
            h.write(b"\xff\xfe\xfd garbage\n")
        self._assert_rolled_back(journal)

    def test_torn_tail_in_the_middle_drops_everything_after(self, journal):
        """Corruption is a *prefix* property: records after a torn line are
        unreachable even if intact, because ordering can't be trusted."""
        self._fill(journal, n=1)
        with open(journal.path, "ab") as h:
            h.write(b"junkline\n")
        journal2 = CatalogJournal(journal.path)
        journal2.append({"op": "create", "scenario": "late"})
        journal2.close()
        records, notes = journal2.recover()
        assert len(records) == 1  # only s0 survives
        assert notes

    def test_append_after_recover_continues_lsn_sequence(self, journal):
        self._fill(journal)
        records, _ = journal.recover()
        lsn = journal.append({"op": "create", "scenario": "s9"})
        assert lsn == records[-1]["lsn"] + 1
