"""materialize_chunked: copy-on-write physical scenario images."""

from __future__ import annotations

import math

import pytest

from repro.errors import CatalogError
from tests.catalog.conftest import JOE, LISA


def _chunk_of(image, address):
    return image.grid.chunk_of_cell(image.cell_of(address))


class TestCopyOnWrite:
    def test_delta_cell_reads_back_overridden(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        image = catalog.materialize_chunked("s1")
        assert image.value(JOE) == 99.0
        assert image.value(LISA) == 10.0

    def test_base_image_is_untouched(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        catalog.materialize_chunked("s1")
        assert catalog._base_image().value(JOE) == 10.0

    def test_untouched_chunks_shared_by_identity(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        image = catalog.materialize_chunked("s1")
        base_image = catalog._base_image()
        joe_chunk = _chunk_of(image, JOE)
        lisa_chunk = _chunk_of(image, LISA)
        assert joe_chunk != lisa_chunk  # precondition for the test
        assert image.store.peek(lisa_chunk) is base_image.store.peek(
            lisa_chunk
        )
        assert image.store.peek(joe_chunk) is not base_image.store.peek(
            joe_chunk
        )

    def test_tombstone_writes_missing(self, catalog):
        catalog.create("fired", cells={JOE: None})
        image = catalog.materialize_chunked("fired")
        assert math.isnan(image.value(JOE))

    def test_matches_semantic_materialization(self, catalog):
        catalog.create("s1", cells={JOE: 99.0, LISA: None})
        image = catalog.materialize_chunked("s1")
        cube = catalog.materialize("s1")
        for address, value in cube.leaf_cells():
            assert image.value(address) == value
        assert math.isnan(image.value(LISA))


class TestCachingAndErrors:
    def test_second_call_hits_the_cache(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        first = catalog.materialize_chunked("s1")
        assert catalog.materialize_chunked("s1") is first

    def test_mutation_invalidates_the_cache(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        first = catalog.materialize_chunked("s1")
        catalog.update("s1", cells={JOE: 42.0})
        second = catalog.materialize_chunked("s1")
        assert second is not first
        assert second.value(JOE) == 42.0

    def test_unaddressable_delta_cell_raises(self, catalog):
        # Dave has no stored FTE instance, so the base image's leaf axes
        # cannot place this delta — no complete physical image exists.
        ghost = ("Organization/FTE/Dave", "NY", "Jan", "Salary")
        catalog.create("ghost", cells={ghost: 1.0})
        with pytest.raises(CatalogError, match="not.*addressable"):
            catalog.materialize_chunked("ghost")
