"""Concurrent catalog use: racing forks/merges from two threads must
serialize cleanly — the journal that results replays to the same state
bit-for-bit, and no torn delta file is ever visible.

The CI stress-smoke step runs this file under ``REPRO_LOCKDEP=1``, so
every lock acquisition is also checked against the declared hierarchy.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import ScenarioCatalog
from repro.catalog.model import encode_state
from repro.errors import ReproError, ScenarioConflictError, ScenarioExistsError

from tests.catalog.conftest import JOE, LISA


def _run_threads(*targets):
    errors: list[BaseException] = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_racing_fork_merge_replays_bit_identical(root, base):
    """Two workers fork off shared ancestry, update, and merge back into
    their own lanes concurrently; afterwards the on-disk journal must
    replay (serially, on reopen) to exactly the state the live catalog
    held — the serialization the catalog lock imposes is durable."""
    catalog = ScenarioCatalog(root, base=base)
    catalog.create("trunk", cells={JOE: 1.0})

    def worker(lane: str, address, rounds: int = 15):
        def run():
            for i in range(rounds):
                branch = f"{lane}-{i}"
                catalog.fork(branch, "trunk")
                catalog.update(branch, {address: float(i)})
                if i % 3 == 2:
                    catalog.drop(branch)
            # fold the surviving branches into one lane scenario
            catalog.fork(lane, "trunk")
            for i in range(rounds):
                branch = f"{lane}-{i}"
                if branch in catalog:
                    catalog.merge(branch, into=lane, on_conflict="theirs")

        return run

    _run_threads(worker("alpha", LISA), worker("beta", JOE))

    live = {
        info.name: encode_state(catalog.get_state(info.name))
        for info in catalog.list_scenarios()
    }
    catalog.close()
    with ScenarioCatalog(root, base=base) as replayed:
        assert not replayed.recovery.lost
        replay = {
            info.name: encode_state(replayed.get_state(info.name))
            for info in replayed.list_scenarios()
        }
    assert replay == live  # bit-identical, not just equivalent


def test_racing_creates_of_one_name_yield_exactly_one_winner(root, base):
    catalog = ScenarioCatalog(root, base=base)
    outcomes: list[str] = []
    gate = threading.Barrier(2)

    def contender():
        gate.wait()
        try:
            catalog.create("contested", cells={JOE: 9.0})
            outcomes.append("won")
        except ScenarioExistsError:
            outcomes.append("lost")

    _run_threads(contender, contender)
    assert sorted(outcomes) == ["lost", "won"]
    assert catalog.info("contested").changed_cells == 1
    catalog.close()


def test_conflicting_merges_race_without_corruption(root, base):
    """Both threads try to merge divergent branches into the same target
    with on_conflict='raise': whichever loses the race gets the typed
    conflict error, and the target is never half-merged."""
    catalog = ScenarioCatalog(root, base=base)
    catalog.create("target")
    catalog.create("left", cells={JOE: 1.0})
    catalog.create("right", cells={JOE: 2.0})
    gate = threading.Barrier(2)
    conflicts: list[str] = []

    def merger(source: str):
        def run():
            gate.wait()
            try:
                catalog.merge(source, into="target")
            except ScenarioConflictError:
                conflicts.append(source)

        return run

    _run_threads(merger("left"), merger("right"))
    # exactly one merge landed; the loser saw the typed conflict
    assert len(conflicts) == 1
    state = catalog.get_state("target")
    assert state.delta[JOE] in (1.0, 2.0)
    assert len(state.delta) == 1
    catalog.close()
    with ScenarioCatalog(root, base=base) as replayed:
        assert replayed.get_state("target").delta == state.delta


def test_readers_race_writers(root, base):
    """materialize/diff/list racing mutations never see torn state or
    raise anything untyped."""
    catalog = ScenarioCatalog(root, base=base)
    catalog.create("s1", cells={JOE: 1.0})
    catalog.create("s2", cells={LISA: 2.0})
    stop = threading.Event()

    def writer():
        i = 0
        while not stop.is_set() and i < 40:
            catalog.update("s1", {JOE: float(i)})
            i += 1

    def reader():
        for _ in range(40):
            cube = catalog.materialize("s1")
            assert cube.value(LISA) == 10.0  # base read-through is stable
            report = catalog.diff("s1", "s2")
            assert report.changed_cells >= 1
            assert len(catalog.list_scenarios()) == 2

    try:
        _run_threads(writer, reader)
    except ReproError as exc:  # typed errors only, and none expected here
        pytest.fail(f"reader/writer race surfaced {exc!r}")
    finally:
        stop.set()
        catalog.close()
