"""ChunkStore fork delta accounting: COW divergence is measured in bytes
and chunks, surfaced through the shared ``CacheStats`` ledger."""

from __future__ import annotations

import numpy as np

from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.storage.io_stats import IoCostModel


def make_store() -> ChunkStore:
    grid = ChunkGrid([4, 4], [2, 2])
    store = ChunkStore(grid, IoCostModel())
    for i, coord in enumerate(grid.iter_chunks((0, 1))):
        store.load(coord, np.full((2, 2), float(i)))
    return store


class TestForkAccounting:
    def test_parent_is_not_a_fork_and_never_charged(self):
        store = make_store()
        assert not store.is_fork
        store.write((0, 0), np.zeros((2, 2)))
        assert store.delta_bytes() == 0
        assert store.changed_chunk_count() == 0

    def test_fork_that_never_writes_costs_zero(self):
        store = make_store()
        fork = store.fork()
        assert fork.is_fork
        fork.read((0, 0))
        fork.read((1, 1))
        assert fork.delta_bytes() == 0
        assert fork.changed_chunk_count() == 0

    def test_write_charges_bytes_and_chunks_once(self):
        store = make_store()
        fork = store.fork()
        data = np.zeros((2, 2))
        fork.write((0, 0), data)
        assert fork.changed_chunk_count() == 1
        assert fork.delta_bytes() == data.nbytes
        # rewriting the same chunk does not double-charge
        fork.write((0, 0), np.ones((2, 2)))
        assert fork.changed_chunk_count() == 1
        assert fork.delta_bytes() == data.nbytes

    def test_parent_data_is_untouched_by_fork_writes(self):
        store = make_store()
        fork = store.fork()
        fork.write((0, 0), np.full((2, 2), -1.0))
        assert store.peek((0, 0))[0, 0] == 0.0
        assert fork.peek((0, 0))[0, 0] == -1.0

    def test_family_ledger_aggregates_across_forks(self):
        store = make_store()
        fork_a = store.fork()
        fork_b = store.fork()
        fork_a.write((0, 0), np.zeros((2, 2)))
        fork_b.write((1, 1), np.zeros((2, 2)))
        fork_b.write((0, 1), np.zeros((2, 2)))
        stats = store.cache_stats
        assert stats.fork_changed_chunks == 3
        assert stats.fork_delta_bytes == 3 * np.zeros((2, 2)).nbytes
        assert stats.snapshot()["fork_delta_bytes"] == stats.fork_delta_bytes

    def test_fork_of_fork_has_its_own_charges(self):
        store = make_store()
        child = store.fork()
        child.write((0, 0), np.zeros((2, 2)))
        grandchild = child.fork()
        assert grandchild.delta_bytes() == 0  # fresh divergence ledger
        grandchild.write((1, 0), np.zeros((2, 2)))
        assert grandchild.changed_chunk_count() == 1
        assert child.changed_chunk_count() == 1  # unaffected by the child
