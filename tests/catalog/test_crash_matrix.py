"""The catalog crash matrix: kill every mutating operation at every
reachable failpoint boundary, reopen, and prove the catalog lands on the
pre-op or the post-op state — never a torn one.

Mirrors ``tests/test_fault_matrix.py``: each registered failpoint on the
commit path (WAL append, apply, the atomic-write/checkpoint machinery) is
armed with ``fail_after(n)`` for every hit index the operation reaches.
With ``REPRO_FAULTS=ci-matrix`` (the CI ``faults`` job) the per-failpoint
hit cap is removed.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog import ScenarioCatalog
from repro.catalog.model import decode_state, encode_state
from repro.errors import FaultInjectedError
from repro.faults import FAULTS
from repro.obs.metrics import METRICS

from tests.catalog.conftest import JOE, LISA

#: every failpoint a catalog commit can cross: the WAL append, the
#: apply window between append and install, and the durability layer the
#: delta files and checkpoints are written through
COMMIT_FAILPOINTS = (
    "catalog.journal.append",
    "catalog.apply",
    "durability.write",
    "durability.fsync",
    "durability.rename",
    "durability.commit",
)

FULL_MATRIX = "ci-matrix" in os.environ.get("REPRO_FAULTS", "")
MAX_HITS = 10_000 if FULL_MATRIX else 6

#: op name -> callable(catalog); each runs against the seeded catalog
#: (scenarios ``seed1`` = {JOE: 2.0} and ``seed2`` = {LISA: 3.0})
OPS = {
    "create": lambda cat: cat.create("probe", cells={JOE: 1.0}),
    "update": lambda cat: cat.update("seed1", {JOE: 5.0}),
    "fork": lambda cat: cat.fork("branch", "seed1"),
    "merge": lambda cat: cat.merge("seed2", into="seed1"),
    "drop": lambda cat: cat.drop("seed2"),
    "gc": lambda cat: cat.gc(),
}


def _seed(root, base) -> None:
    with ScenarioCatalog(root, base=base) as catalog:
        catalog.create("seed1", cells={JOE: 2.0})
        catalog.create("seed2", cells={LISA: 3.0})


def _snapshot(root, base) -> dict[str, str]:
    """Canonical bytes of every scenario after a clean reopen."""
    with ScenarioCatalog(root, base=base) as catalog:
        assert not catalog.recovery.lost
        return {
            name: encode_state(catalog.get_state(name))
            for name in sorted(info.name for info in catalog.list_scenarios())
        }


def _count_hits(failpoint: str, root, base, op) -> int:
    FAULTS.clear()
    FAULTS.fail_after(failpoint, 1_000_000)  # armed but never fires
    with ScenarioCatalog(root, base=base) as catalog:
        op(catalog)
    hits = FAULTS._armed[failpoint].hits
    FAULTS.clear()
    return hits


def _assert_no_torn_files(root) -> None:
    """Every surviving delta file must decode to exactly its own bytes."""
    for path in sorted((root / "deltas").glob("*.json")):
        text = path.read_text(encoding="utf-8")
        state = decode_state(text, source=str(path))
        assert encode_state(state) == text, f"torn delta file {path}"


@pytest.mark.parametrize("failpoint", COMMIT_FAILPOINTS)
@pytest.mark.parametrize("op_name", sorted(OPS))
def test_kill_during_op_lands_pre_or_post(failpoint, op_name, base, tmp_path):
    op = OPS[op_name]
    probe_root = tmp_path / "probe"
    _seed(probe_root, base)
    hits = _count_hits(failpoint, probe_root, base, op)
    if hits == 0:
        pytest.skip(f"{op_name} never crosses {failpoint}")
    # the pre-op and post-op reference states, from clean twins
    pre_root = tmp_path / "pre"
    _seed(pre_root, base)
    pre = _snapshot(pre_root, base)
    post_root = tmp_path / "post"
    _seed(post_root, base)
    with ScenarioCatalog(post_root, base=base) as catalog:
        op(catalog)
    post = _snapshot(post_root, base)

    for n in range(1, min(hits, MAX_HITS) + 1):
        root = tmp_path / f"kill-{n}"
        _seed(root, base)
        FAULTS.clear()
        FAULTS.fail_after(failpoint, n)
        crashed = ScenarioCatalog(root, base=base)
        with pytest.raises(FaultInjectedError):
            op(crashed)
        # process death: the poisoned in-memory object is discarded
        crashed.close()
        FAULTS.clear()
        observed = _snapshot(root, base)
        assert observed in (pre, post), (
            f"{op_name} killed at {failpoint}:{n} left a torn state: "
            f"{sorted(observed)} vs pre={sorted(pre)} post={sorted(post)}"
        )
        _assert_no_torn_files(root)


def test_gc_checkpoint_crash_preserves_scenarios(base, tmp_path):
    """A kill anywhere inside the checkpoint (manifest commit + journal
    reset) must never lose a committed scenario."""
    for failpoint in ("durability.rename", "durability.commit"):
        hits_root = tmp_path / f"hits-{failpoint}"
        _seed(hits_root, base)
        hits = _count_hits(failpoint, hits_root, base, lambda c: c.gc())
        for n in range(1, min(hits, MAX_HITS) + 1):
            root = tmp_path / f"gc-{failpoint}-{n}"
            _seed(root, base)
            FAULTS.clear()
            FAULTS.fail_after(failpoint, n)
            crashed = ScenarioCatalog(root, base=base)
            with pytest.raises(FaultInjectedError):
                crashed.gc()
            crashed.close()
            FAULTS.clear()
            observed = _snapshot(root, base)
            assert sorted(observed) == ["seed1", "seed2"]


def test_auto_checkpoint_crash_is_safe(base, tmp_path):
    """The checkpoint triggered *mid-commit* (interval reached) is covered
    by the same contract: kill it and nothing committed is lost."""
    root = tmp_path / "auto"
    with ScenarioCatalog(root, base=base, checkpoint_interval=3) as catalog:
        catalog.create("s0")
        catalog.create("s1")
    FAULTS.clear()
    FAULTS.fail_after("durability.rename", 1)
    crashed = ScenarioCatalog(root, base=base, checkpoint_interval=3)
    with pytest.raises(FaultInjectedError):
        crashed.create("s2")  # third commit trips the checkpoint
    crashed.close()
    FAULTS.clear()
    with ScenarioCatalog(root, base=base) as reopened:
        names = sorted(info.name for info in reopened.list_scenarios())
        # s2's WAL record landed before the checkpoint crashed, so the
        # post-op state is the only acceptable outcome here
        assert names == ["s0", "s1", "s2"]


def test_kill_during_recovery_is_typed_and_retryable(base, tmp_path):
    root = tmp_path / "cat"
    _seed(root, base)
    FAULTS.clear()
    FAULTS.fail_after("catalog.recover", 1)
    with pytest.raises(FaultInjectedError):
        ScenarioCatalog(root, base=base)
    FAULTS.clear()
    with ScenarioCatalog(root, base=base) as reopened:
        assert len(reopened) == 2  # a failed recovery is repeatable


def test_chunk_fork_failpoint_leaves_parent_intact():
    import numpy as np

    from repro.storage.chunk_store import ChunkStore
    from repro.storage.chunks import ChunkGrid

    grid = ChunkGrid([4], [2])
    store = ChunkStore(grid)
    store.load((0,), np.ones((2,)))
    FAULTS.clear()
    FAULTS.fail_after("chunk.fork", 1)
    with pytest.raises(FaultInjectedError):
        store.fork()
    FAULTS.clear()
    assert store.n_stored == 1
    assert store.read((0,))[0] == 1.0
    fork = store.fork()  # works once disarmed
    assert fork.is_fork


def test_recovery_metrics_account_outcomes(base, tmp_path):
    """``catalog_recoveries_total{outcome}`` moves on every open."""
    root = tmp_path / "cat"
    clean_before = METRICS.counter(
        "catalog_recoveries_total", outcome="clean"
    ).sample()
    replayed_before = METRICS.counter(
        "catalog_recoveries_total", outcome="replayed"
    ).sample()
    _seed(root, base)  # first open of an empty dir: clean
    with ScenarioCatalog(root, base=base):
        pass  # journal has records: replayed
    assert (
        METRICS.counter("catalog_recoveries_total", outcome="clean").sample()
        > clean_before
    )
    assert (
        METRICS.counter(
            "catalog_recoveries_total", outcome="replayed"
        ).sample()
        > replayed_before
    )
