"""Fixtures for the durable scenario-catalog suite.

``JOE`` and ``LISA`` are two leaf addresses of the running example that
live in *different* chunks (chunk key = first coordinate), so tests can
construct both conflicting and cleanly-mergeable deltas.
"""

from __future__ import annotations

import pytest

from repro.catalog import ScenarioCatalog

#: Joe's January NY salary (base value 10.0) — chunk ["Organization/FTE/Joe"]
JOE = ("Organization/FTE/Joe", "NY", "Jan", "Salary")
#: Lisa's January NY salary (base value 10.0) — chunk ["Organization/FTE/Lisa"]
LISA = ("Organization/FTE/Lisa", "NY", "Jan", "Salary")


@pytest.fixture
def base(example):
    return example.cube


@pytest.fixture
def root(tmp_path):
    return tmp_path / "catalog"


@pytest.fixture
def catalog(root, base):
    cat = ScenarioCatalog(root, base=base)
    yield cat
    cat.close()
