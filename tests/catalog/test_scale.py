"""Scale acceptance: catalog cost grows with delta size, not with
cube size × scenarios.

The default run holds 2,000 scenarios; the CI faults job
(``REPRO_FAULTS=ci-matrix``) widens to the full 10,000 the tentpole
specifies.  ``sync=False`` trades per-commit fsync for bulk-load speed —
exactly how the ``repro catalog smoke`` CLI runs.
"""

from __future__ import annotations

import os

from repro.catalog import ScenarioCatalog
from repro.catalog.model import encode_state

from tests.catalog.conftest import JOE

FULL_MATRIX = "ci-matrix" in os.environ.get("REPRO_FAULTS", "")
N_SCENARIOS = 10_000 if FULL_MATRIX else 2_000


def test_10k_scenarios_scale_with_delta_not_cube(base, tmp_path):
    root = tmp_path / "cat"
    catalog = ScenarioCatalog(root, base=base, sync=False)
    for i in range(N_SCENARIOS):
        catalog.create(f"s{i:05d}", cells={JOE: float(i)})
    catalog.flush()

    stats = catalog.stats()
    assert stats["scenarios"] == N_SCENARIOS
    # each scenario persists ~one override, so the per-scenario footprint
    # is a small constant — nowhere near a cube copy (38 leaf cells plus
    # schema would dwarf this, and real cubes are orders bigger)
    one = len(encode_state(catalog.get_state("s00000")).encode("utf-8"))
    assert stats["delta_bytes"] <= N_SCENARIOS * (one + 16)
    assert one < 512

    # auto-checkpoints must have kept the journal bounded: at most one
    # interval of records, not N_SCENARIOS of them
    assert stats["generation"] - stats["checkpoint_lsn"] <= 512
    catalog.close()

    # reopen replays only the post-checkpoint tail and sees every scenario
    with ScenarioCatalog(root, base=base, sync=False) as reopened:
        assert len(reopened) == N_SCENARIOS
        assert reopened.recovery.replayed <= 512
        assert not reopened.recovery.lost
        assert reopened.get_state(f"s{N_SCENARIOS - 1:05d}").delta == {
            JOE: float(N_SCENARIOS - 1)
        }


def test_materialize_cost_is_per_use_not_per_scenario(base, tmp_path):
    """Storing N scenarios must not materialize N cubes: only the ones a
    client actually queries are built, and those go through the LRU."""
    catalog = ScenarioCatalog(tmp_path / "cat", base=base, sync=False, cache_size=4)
    for i in range(200):
        catalog.create(f"s{i:03d}", cells={JOE: float(i)})
    assert catalog.cache.stats.misses == 0  # creation never materializes
    for name in ("s000", "s199", "s000"):
        catalog.materialize(name)
    assert catalog.cache.stats.misses == 2
    assert catalog.cache.stats.hits == 1  # third call was a cache hit
    catalog.close()
