"""Unit tests for the catalog's delta model: names, chunk keys, conflict
detection, and the canonical encode/decode round trip."""

from __future__ import annotations

import pytest

from repro.catalog.model import (
    ScenarioState,
    base_chunk_digests,
    canonical_json,
    chunk_key,
    chunks_of,
    conflicting_chunks,
    decode_state,
    encode_state,
    payload_digest,
    validate_scenario_name,
)
from repro.errors import CatalogError


class TestNames:
    @pytest.mark.parametrize(
        "name", ["a", "budget-cut", "q3.forecast", "S_1", "0day", "x" * 128]
    )
    def test_valid(self, name):
        validate_scenario_name(name)

    @pytest.mark.parametrize(
        "name",
        ["", ".hidden", "-dash", "has space", "a/b", "a\x00b", "x" * 129,
         "..", "über"],
    )
    def test_invalid_raises_typed(self, name):
        with pytest.raises(CatalogError):
            validate_scenario_name(name)


class TestChunking:
    def test_chunk_key_is_coordinate_prefix(self):
        assert chunk_key(("a", "b", "c"), 1) == '["a"]'
        assert chunk_key(("a", "b", "c"), 2) == '["a","b"]'

    def test_chunks_of_groups_by_prefix(self):
        delta = {("a", "x"): 1.0, ("a", "y"): 2.0, ("b", "x"): None}
        grouped = chunks_of(delta, 1)
        assert set(grouped) == {'["a"]', '["b"]'}
        assert set(grouped['["a"]']) == {("a", "x"), ("a", "y")}

    def test_identical_changes_do_not_conflict(self):
        ours = {("a", "x"): 1.0}
        theirs = {("a", "x"): 1.0}
        chunks, addresses = conflicting_chunks(ours, theirs, 1)
        assert chunks == ()
        assert addresses == ()

    def test_divergent_same_chunk_conflicts(self):
        ours = {("a", "x"): 1.0}
        theirs = {("a", "x"): 2.0}
        chunks, addresses = conflicting_chunks(ours, theirs, 1)
        assert chunks == ('["a"]',)
        assert ("a", "x") in addresses

    def test_disjoint_chunks_do_not_conflict(self):
        chunks, _ = conflicting_chunks({("a", "x"): 1.0}, {("b", "x"): 2.0}, 1)
        assert chunks == ()

    def test_tombstone_vs_value_conflicts(self):
        chunks, _ = conflicting_chunks({("a", "x"): None}, {("a", "x"): 1.0}, 1)
        assert chunks == ('["a"]',)


class TestEncoding:
    def _state(self):
        return ScenarioState(
            name="s1",
            tenant="acme",
            parent="s0",
            base_version=7,
            base_digests={'["a"]': "0" * 64},
            delta={("a", "x"): 1.5, ("b", "y"): None},
        )

    def test_round_trip_is_identity(self):
        state = self._state()
        text = encode_state(state)
        decoded = decode_state(text, source="test")
        assert decoded == state
        assert encode_state(decoded) == text

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        assert payload_digest("x") == payload_digest("x")
        assert payload_digest("x") != payload_digest("y")

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not json",
            "[]",
            '{"name": "s1"}',  # missing fields
            '{"name": "s1", "tenant": "t", "parent": "", "base_version": '
            '"seven", "base_digests": {}, "cells": []}',
            '{"name": "s1", "tenant": "t", "parent": "", "base_version": 0, '
            '"base_digests": {}, "cells": [["a", "not-a-number"]]}',
        ],
    )
    def test_malformed_decode_raises_typed(self, text):
        with pytest.raises(CatalogError):
            decode_state(text, source="test")

    def test_base_chunk_digests_change_with_data(self):
        cells = [(("a", "x"), 1.0), (("b", "y"), 2.0)]
        digests = base_chunk_digests(cells, 1)
        assert set(digests) == {'["a"]', '["b"]'}
        moved = base_chunk_digests([(("a", "x"), 9.0), (("b", "y"), 2.0)], 1)
        assert moved['["a"]'] != digests['["a"]']
        assert moved['["b"]'] == digests['["b"]']
