"""ScenarioCatalog behaviour: branching, merging, rebasing, quotas,
materialization caching, gc, metrics — the non-crash half of the API."""

from __future__ import annotations

import pytest

from repro.catalog import ScenarioCatalog, TenantQuota
from repro.errors import (
    CatalogError,
    ScenarioConflictError,
    ScenarioExistsError,
    ScenarioNotFoundError,
    ScenarioQuotaError,
)
from repro.olap.missing import is_missing

from tests.catalog.conftest import JOE, LISA


class TestBranching:
    def test_create_and_materialize(self, catalog, base):
        catalog.create("raise", cells={JOE: 99.0})
        cube = catalog.materialize("raise")
        assert cube.value(JOE) == 99.0
        assert cube.value(LISA) == base.value(LISA)  # reads through
        assert base.value(JOE) == 10.0  # base untouched

    def test_tombstone_reads_as_missing(self, catalog):
        catalog.create("fired", cells={JOE: None})
        assert is_missing(catalog.materialize("fired").value(JOE))

    def test_create_duplicate_raises(self, catalog):
        catalog.create("s1")
        with pytest.raises(ScenarioExistsError):
            catalog.create("s1")

    def test_missing_scenario_raises(self, catalog):
        with pytest.raises(ScenarioNotFoundError):
            catalog.info("nope")

    def test_fork_copies_delta_only(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        info = catalog.fork("s2", "s1")
        assert info.parent == "s1"
        assert info.changed_cells == 1
        # diverge the fork; the source must not see it
        catalog.update("s2", {LISA: 1.0})
        assert catalog.info("s1").changed_cells == 1
        assert catalog.info("s2").changed_cells == 2

    def test_update_clear_reads_base_again(self, catalog, base):
        catalog.create("s1", cells={JOE: 99.0})
        catalog.update("s1", clear=[JOE])
        assert catalog.info("s1").changed_cells == 0
        assert catalog.materialize("s1").value(JOE) == base.value(JOE)

    def test_drop_then_recreate(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        catalog.drop("s1")
        assert "s1" not in catalog
        catalog.create("s1")  # name is free again
        assert catalog.info("s1").changed_cells == 0


class TestMergeRebase:
    def test_disjoint_merge_unions_deltas(self, catalog):
        catalog.create("ours", cells={JOE: 99.0})
        catalog.create("theirs", cells={LISA: 55.0})
        info = catalog.merge("theirs", into="ours")
        assert info.changed_cells == 2
        cube = catalog.materialize("ours")
        assert cube.value(JOE) == 99.0 and cube.value(LISA) == 55.0

    def test_conflicting_merge_raises_with_addresses(self, catalog):
        catalog.create("ours", cells={JOE: 99.0})
        catalog.create("theirs", cells={JOE: 11.0})
        with pytest.raises(ScenarioConflictError) as info:
            catalog.merge("theirs", into="ours")
        assert info.value.chunks == ('["Organization/FTE/Joe"]',)
        assert JOE in info.value.addresses
        # the failed merge changed nothing
        assert catalog.materialize("ours").value(JOE) == 99.0

    def test_identical_change_is_not_a_conflict(self, catalog):
        catalog.create("ours", cells={JOE: 99.0})
        catalog.create("theirs", cells={JOE: 99.0})
        catalog.merge("theirs", into="ours")  # no raise

    @pytest.mark.parametrize(
        "resolution,expected", [("ours", 99.0), ("theirs", 11.0)]
    )
    def test_merge_resolutions(self, catalog, resolution, expected):
        catalog.create("ours", cells={JOE: 99.0})
        catalog.create("theirs", cells={JOE: 11.0})
        catalog.merge("theirs", into="ours", on_conflict=resolution)
        assert catalog.materialize("ours").value(JOE) == expected

    def test_bad_resolution_raises(self, catalog):
        catalog.create("s1")
        with pytest.raises(CatalogError):
            catalog.merge("s1", into="s1", on_conflict="flip-a-coin")

    def test_rebase_clean_when_base_moved_elsewhere(self, catalog, base):
        catalog.create("s1", cells={JOE: 99.0})
        base.set_value(LISA, 77.0)  # different chunk: no conflict
        info = catalog.rebase("s1")
        assert info.base_version == base.version
        cube = catalog.materialize("s1")
        assert cube.value(JOE) == 99.0 and cube.value(LISA) == 77.0

    def test_rebase_conflict_when_base_moved_under_scenario(self, catalog, base):
        catalog.create("s1", cells={JOE: 99.0})
        base.set_value(JOE, 42.0)  # same chunk the scenario changed
        with pytest.raises(ScenarioConflictError) as info:
            catalog.rebase("s1")
        assert '["Organization/FTE/Joe"]' in info.value.chunks
        # "ours": keep the override despite the moved base
        catalog.rebase("s1", on_conflict="ours")
        assert catalog.materialize("s1").value(JOE) == 99.0

    def test_rebase_theirs_drops_conflicted_overrides(self, catalog, base):
        catalog.create("s1", cells={JOE: 99.0, LISA: 55.0})
        base.set_value(JOE, 42.0)
        catalog.rebase("s1", on_conflict="theirs")
        cube = catalog.materialize("s1")
        assert cube.value(JOE) == 42.0  # override gone, reads moved base
        assert cube.value(LISA) == 55.0  # unconflicted override survives


class TestMaterializationCache:
    def test_cache_hit_on_repeat(self, catalog):
        catalog.create("s1", cells={JOE: 99.0})
        assert catalog.materialize("s1") is catalog.materialize("s1")

    def test_no_stale_read_after_merge(self, catalog):
        """Generation keying: a merge changes the scenario but not
        ``base.version`` — the cache must still miss."""
        catalog.create("s1", cells={JOE: 99.0})
        catalog.create("s2", cells={LISA: 55.0})
        before = catalog.materialize("s1")
        catalog.merge("s2", into="s1")
        after = catalog.materialize("s1")
        assert after is not before
        assert after.value(LISA) == 55.0

    def test_no_stale_read_after_rebase(self, catalog, base):
        """The regression the satellite names: materialize → rebase →
        materialize must never serve the pre-rebase cube."""
        catalog.create("s1", cells={JOE: 99.0})
        before = catalog.materialize("s1")
        assert before.value(LISA) == 10.0
        base.set_value(LISA, 77.0)
        catalog.rebase("s1")
        after = catalog.materialize("s1")
        assert after is not before
        assert after.value(LISA) == 77.0

    def test_materialized_cube_is_frozen(self, catalog):
        from repro.errors import SnapshotImmutableError

        catalog.create("s1", cells={JOE: 99.0})
        with pytest.raises(SnapshotImmutableError):
            catalog.materialize("s1").set_value(JOE, 1.0)


class TestQuotas:
    def test_scenario_count_quota(self, root, base):
        catalog = ScenarioCatalog(
            root, base=base, default_quota=TenantQuota(max_scenarios=2)
        )
        catalog.create("s1")
        catalog.create("s2")
        with pytest.raises(ScenarioQuotaError) as info:
            catalog.create("s3")
        assert info.value.quota == "max-scenarios"
        assert info.value.limit == 2
        # nothing was evicted to make room
        assert sorted(i.name for i in catalog.list_scenarios()) == ["s1", "s2"]
        catalog.close()

    def test_delta_bytes_quota_blocks_update(self, root, base):
        catalog = ScenarioCatalog(
            root, base=base, default_quota=TenantQuota(max_delta_bytes=400)
        )
        catalog.create("s1", cells={JOE: 1.0})
        with pytest.raises(ScenarioQuotaError) as info:
            catalog.update(
                "s1",
                {LISA[:2] + (f"M{i}", "Salary"): 1.0 for i in range(50)},
            )
        assert info.value.quota == "max-delta-bytes"
        assert catalog.info("s1").changed_cells == 1  # op failed atomically
        catalog.close()

    def test_quotas_are_per_tenant(self, root, base):
        catalog = ScenarioCatalog(
            root,
            base=base,
            quotas={"acme": TenantQuota(max_scenarios=1)},
        )
        catalog.create("a1", tenant="acme")
        with pytest.raises(ScenarioQuotaError):
            catalog.create("a2", tenant="acme")
        catalog.create("b1", tenant="globex")  # other tenants unaffected
        catalog.create("b2", tenant="globex")
        assert len(catalog.list_scenarios(tenant="acme")) == 1
        catalog.close()

    def test_drop_frees_quota(self, root, base):
        catalog = ScenarioCatalog(
            root, base=base, default_quota=TenantQuota(max_scenarios=1)
        )
        catalog.create("s1")
        catalog.drop("s1")
        catalog.create("s2")  # room again
        catalog.close()


class TestObservability:
    def test_metrics_gauges_and_counters(self, catalog):
        from repro.obs.metrics import METRICS

        catalog.create("s1", tenant="acme", cells={JOE: 1.0})
        assert METRICS.gauge("catalog_scenarios", tenant="acme").sample() == 1
        assert METRICS.gauge("catalog_delta_bytes").sample() > 0
        assert METRICS.counter("catalog_ops_total", op="create").sample() >= 1
        catalog.drop("s1")
        assert METRICS.gauge("catalog_scenarios", tenant="acme").sample() == 0

    def test_stats_collector_shape(self, catalog):
        catalog.create("s1", cells={JOE: 1.0})
        stats = catalog.stats()
        assert stats["scenarios"] == 1
        assert stats["delta_bytes"] > 0
        assert stats["generation"] >= 1
        assert stats["journal_bytes"] > 0

    def test_warehouse_accessor_registers_collector(self, example, tmp_path):
        from repro.warehouse import Warehouse

        warehouse = Warehouse(example.schema, example.cube)
        assert warehouse.catalog is None
        catalog = warehouse.attach_catalog(tmp_path / "cat")
        assert warehouse.catalog is catalog
        catalog.create("s1")
        dumped = warehouse.metrics.snapshot()
        assert dumped["catalog.scenarios"] == 1
        catalog.close()


class TestGc:
    def test_gc_truncates_journal_and_survives_reopen(self, root, base):
        with ScenarioCatalog(root, base=base) as catalog:
            for i in range(5):
                catalog.create(f"s{i}", cells={JOE: float(i)})
            assert catalog.stats()["journal_bytes"] > 0
            report = catalog.gc()
            assert report["journal_bytes_reclaimed"] > 0
            assert catalog.stats()["journal_bytes"] == 0
        with ScenarioCatalog(root, base=base) as reopened:
            assert reopened.recovery.outcome == "clean"
            assert len(reopened) == 5

    def test_gc_sweeps_orphan_delta_files(self, catalog):
        catalog.create("s1")
        orphan = catalog.root / "deltas" / "ghost.json"
        orphan.write_text("{}", encoding="utf-8")
        report = catalog.gc()
        assert report["orphan_deltas_removed"] == 1
        assert not orphan.exists()

    def test_auto_checkpoint_bounds_journal(self, root, base):
        catalog = ScenarioCatalog(root, base=base, checkpoint_interval=4)
        for i in range(10):
            catalog.create(f"s{i}")
        # at least two auto-checkpoints fired; journal holds < interval
        assert catalog.stats()["checkpoint_lsn"] >= 8
        catalog.close()


class TestDiff:
    def test_diff_report(self, catalog):
        catalog.create("a", cells={JOE: 99.0, LISA: 1.0})
        catalog.create("b", cells={JOE: 99.0})
        report = catalog.diff("a", "b")
        assert report.b_contained_in_a and not report.a_contained_in_b
        assert report.agree == (JOE,)
        assert report.only_in_a == (LISA,)
        assert report.changed_cells == 1
        payload = report.to_dict()
        assert payload["overlap"] == 0.5

    def test_diff_identical(self, catalog):
        catalog.create("a", cells={JOE: 99.0})
        catalog.fork("b", "a")
        report = catalog.diff("a", "b")
        assert report.identical and report.overlap == 1.0
