"""Tests for the MDX Order function."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.mdx.ast_nodes import OrderExpr
from repro.mdx.parser import parse_query
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestParsing:
    def test_defaults_ascending(self):
        query = parse_query("SELECT Order({[a]}, ([x])) ON COLUMNS FROM W")
        expr = query.axes[0].expr
        assert isinstance(expr, OrderExpr)
        assert not expr.descending

    def test_desc(self):
        query = parse_query("SELECT Order({[a]}, ([x]), DESC) ON COLUMNS FROM W")
        assert query.axes[0].expr.descending

    def test_bdesc_accepted(self):
        query = parse_query("SELECT Order({[a]}, [x], BDESC) ON COLUMNS FROM W")
        assert query.axes[0].expr.descending

    def test_bad_direction_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse_query("SELECT Order({[a]}, [x], SIDEWAYS) ON COLUMNS FROM W")


class TestEvaluation:
    def test_ascending_by_value(self, warehouse):
        # Joe's NY salaries: Jan 10 (FTE), Mar 30, Apr 20 (Contractor).
        result = warehouse.query(
            """
            SELECT Order({Time.[Mar], Time.[Jan], Time.[Apr]},
                         (Organization.[Contractor].[Joe], [NY], [Salary])) ON COLUMNS
            FROM Warehouse
            """
        )
        # Contractor/Joe has no Jan value: ⊥ sorts last.
        assert result.column_labels() == ["Apr", "Mar", "Jan"]

    def test_descending(self, warehouse):
        result = warehouse.query(
            """
            SELECT Order({Time.[Mar], Time.[Jan], Time.[Apr]},
                         (Organization.[Contractor].[Joe], [NY], [Salary]),
                         DESC) ON COLUMNS
            FROM Warehouse
            """
        )
        assert result.column_labels() == ["Mar", "Apr", "Jan"]

    def test_ties_keep_input_order(self, warehouse):
        # Lisa's Jan-Jun salaries are all 10: input order preserved.
        result = warehouse.query(
            """
            SELECT Order({Time.[Feb], Time.[Jan]},
                         (Organization.[FTE].[Lisa], [NY], [Salary])) ON COLUMNS
            FROM Warehouse
            """
        )
        assert result.column_labels() == ["Feb", "Jan"]

    def test_order_members_by_their_own_cells(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Mar]} ON COLUMNS,
                   Order({[Lisa], [Joe], [Tom]},
                         ([NY], [Salary], Time.[Mar]), DESC) ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        labels = result.row_labels()
        # Contractor/Joe's Mar 30 outranks Lisa/Tom's 10; Joe's ⊥ rows last.
        assert labels[0] == "Contractor/Joe"
        assert set(labels[-2:]) == {"FTE/Joe", "PTE/Joe"}

    def test_order_with_head_top_n(self, warehouse):
        """Order + Head = top-N, a classic reporting idiom."""
        result = warehouse.query(
            """
            SELECT {Time.[Mar]} ON COLUMNS,
                   Head(Order({[Lisa], [Joe], [Tom], [Jane]},
                              ([NY], [Salary], Time.[Mar]), DESC), 1) ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["Contractor/Joe"]
