"""Tests for NON EMPTY axis filtering."""

from __future__ import annotations

import pytest

from repro.mdx.parser import parse_query
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestParsing:
    def test_non_empty_flag(self):
        query = parse_query(
            "SELECT NON EMPTY {[Jan]} ON COLUMNS, {[Joe]} ON ROWS FROM W"
        )
        assert query.axes[0].non_empty
        assert not query.axes[1].non_empty

    def test_non_empty_on_rows(self):
        query = parse_query(
            "SELECT {[Jan]} ON COLUMNS, NON EMPTY {[Joe]} ON ROWS FROM W"
        )
        assert not query.axes[0].non_empty
        assert query.axes[1].non_empty


class TestEvaluation:
    def test_empty_rows_dropped(self, warehouse):
        # Sue and Dave have no data; NON EMPTY removes their rows.
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS,
                   NON EMPTY {[Lisa], [Sue], [Dave]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Lisa"]

    def test_empty_columns_dropped(self, warehouse):
        # No data beyond June in the running example.
        result = warehouse.query(
            """
            SELECT NON EMPTY {Time.[Jun], Time.[Jul], Time.[Aug]} ON COLUMNS,
                   {[Lisa]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.column_labels() == ["Jun"]

    def test_without_non_empty_rows_kept(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS, {[Lisa], [Sue]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Lisa", "FTE/Sue"]

    def test_non_empty_with_perspective(self, warehouse):
        """Under static P={Jan}, Joe's only surviving row has Jan data; the
        Feb/Mar columns become empty and NON EMPTY drops them."""
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Jan)} FOR Organization STATIC
            SELECT NON EMPTY {Time.[Jan], Time.[Feb], Time.[Mar]} ON COLUMNS,
                   NON EMPTY {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Joe"]
        assert result.column_labels() == ["Jan"]

    def test_all_rows_empty_gives_empty_grid(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Dec]} ON COLUMNS, NON EMPTY {[Sue]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.shape == (0, 1)
