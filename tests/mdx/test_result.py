"""Tests for MDX result grids and their text rendering."""

from __future__ import annotations

import pytest

from repro.mdx.result import AxisTuple, MdxResult
from repro.olap.missing import MISSING, is_missing


def grid() -> MdxResult:
    columns = [
        AxisTuple((("Time", "Qtr1"),), ("Qtr1",)),
        AxisTuple((("Time", "Qtr2"),), ("Qtr2",)),
    ]
    rows = [
        AxisTuple(
            (("Organization", "Organization/FTE/Joe"),),
            ("FTE/Joe",),
            (("Department", "FTE"),),
        ),
        AxisTuple((("Organization", "Organization/PTE/Tom"),), ("PTE/Tom",)),
    ]
    cells = [[60.0, MISSING], [30.0, 30.5]]
    return MdxResult(columns=columns, rows=rows, cells=cells)


class TestAccessors:
    def test_shape(self):
        assert grid().shape == (2, 2)

    def test_cell_by_index(self):
        assert grid().cell(0, 0) == 60.0
        assert is_missing(grid().cell(0, 1))

    def test_cell_by_labels(self):
        result = grid()
        assert result.cell_by_labels("PTE/Tom", "Qtr2") == 30.5

    def test_label_includes_properties(self):
        result = grid()
        assert result.rows[0].label() == "FTE/Joe / FTE"

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            grid().cell_by_labels("Nobody", "Qtr1")

    def test_coordinate_lookup(self):
        row = grid().rows[0]
        assert row.coordinate("Organization") == "Organization/FTE/Joe"
        assert row.coordinate("Time") is None

    def test_axis_label_lists(self):
        result = grid()
        assert result.column_labels() == ["Qtr1", "Qtr2"]
        assert result.row_labels() == ["FTE/Joe / FTE", "PTE/Tom"]


class TestRendering:
    def test_to_text_contains_values_and_missing(self):
        text = grid().to_text()
        assert "60" in text
        assert "30.50" in text
        assert "-" in text  # the ⊥ cell

    def test_to_text_alignment(self):
        lines = grid().to_text(width=8).splitlines()
        # header + rule + 2 data rows
        assert len(lines) == 4
        assert lines[0].count("|") == lines[2].count("|")

    def test_integer_values_render_without_decimals(self):
        text = grid().to_text()
        assert "60.00" not in text

    def test_custom_missing_marker(self):
        text = grid().to_text(missing="#Missing")
        assert "#Missing" in text

    def test_empty_grid(self):
        result = MdxResult(columns=[], rows=[], cells=[])
        assert result.to_text()  # renders without crashing
