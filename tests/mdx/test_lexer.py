"""Tests for the MDX tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.mdx.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_names_and_punct(self):
        assert kinds("SELECT {a} ON COLUMNS") == [
            ("name", "SELECT"),
            ("punct", "{"),
            ("name", "a"),
            ("punct", "}"),
            ("name", "ON"),
            ("name", "COLUMNS"),
        ]

    def test_bracketed_names_keep_spaces(self):
        tokens = tokenize("[BU Version_1]")
        assert tokens[0].value == "BU Version_1"
        assert tokens[0].bracketed

    def test_bracketed_name_with_dash(self):
        tokens = tokenize("[EmployeesWithAtleastOneMove-Set1]")
        assert tokens[0].value == "EmployeesWithAtleastOneMove-Set1"

    def test_numbers(self):
        assert kinds("Head(x, 50)")[3] == ("punct", ",")
        assert kinds("50")[0] == ("number", "50")

    def test_dots_and_parens(self):
        assert kinds("a.b(1)") == [
            ("name", "a"),
            ("punct", "."),
            ("name", "b"),
            ("punct", "("),
            ("number", "1"),
            ("punct", ")"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("a -- comment\nb") == [("name", "a"), ("name", "b")]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestKeywordMatching:
    def test_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.matches_keyword("SELECT")
        assert token.matches_keyword("Select")

    def test_bracketed_names_never_match_keywords(self):
        token = tokenize("[SELECT]")[0]
        assert not token.matches_keyword("SELECT")


class TestErrors:
    def test_unterminated_bracket(self):
        with pytest.raises(MdxSyntaxError):
            tokenize("[abc")

    def test_empty_bracketed_name(self):
        with pytest.raises(MdxSyntaxError):
            tokenize("[ ]")

    def test_bad_character(self):
        with pytest.raises(MdxSyntaxError):
            tokenize("a ; b")

    def test_bad_number(self):
        with pytest.raises(MdxSyntaxError):
            tokenize("1.2.3")
