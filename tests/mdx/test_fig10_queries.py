"""The three experiment queries of Fig. 10, verbatim, over the workforce
warehouse (scaled)."""

from __future__ import annotations

import pytest

from repro.mdx.parser import parse_query
from repro.workload.workforce import WorkforceConfig, build_workforce

FIG10A = """
WITH perspective {(Jan), (Jul)} for Department STATIC
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
   { Union(
       {Union(
           {[EmployeesWithAtleastOneMove-Set1].Children},
           {[EmployeesWithAtleastOneMove-Set2].Children}
       )},
       {[EmployeesWithAtleastOneMove-Set3].Children})},
   {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""

FIG10B = """
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin( {EmployeeS3}, {Descendants([Period],1,self_and_after)} )}
DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""

FIG10C = """
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {CrossJoin(
   {[Account].Levels(0).Members},
   {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
   {Head({[EmployeesWithAtleastOneMove-Set1].Children}, 50)},
   {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]
"""


@pytest.fixture(scope="module")
def workforce():
    return build_workforce(
        WorkforceConfig(
            n_employees=60,
            n_departments=5,
            n_changing=9,
            n_accounts=4,
            n_scenarios=2,
            seed=7,
        )
    )


class TestParsing:
    @pytest.mark.parametrize("text", [FIG10A, FIG10B, FIG10C])
    def test_queries_parse(self, text):
        query = parse_query(text)
        assert query.cube == ("App", "Db")
        assert query.perspective is not None
        assert query.perspective.dimension == "Department"

    def test_fig10a_semantics(self):
        clause = parse_query(FIG10A).perspective
        assert clause.semantics == "static"
        assert clause.perspectives == ("Jan", "Jul")

    def test_fig10bc_semantics(self):
        for text in (FIG10B, FIG10C):
            clause = parse_query(text).perspective
            assert clause.semantics == "forward"
            assert clause.perspectives == ("Jan", "Apr", "Jul", "Oct")


class TestExecution:
    def test_fig10a_runs(self, workforce):
        result = workforce.warehouse.query(FIG10A)
        n_rows_expected = 0
        for name in workforce.changing_employees:
            # static with P={Jan, Jul}: instances valid in Jan or Jul
            instances = workforce.employee_varying.instances_of(name)
            n_rows_expected += sum(
                1
                for inst in instances
                if inst.validity.intersects_moments({0, 6})
            )
        # 16 Period members (4 quarters + 12 months) per instance row.
        assert len(result.rows) == n_rows_expected * 16
        assert len(result.columns) == workforce.config.n_accounts

    def test_fig10a_rows_carry_department_property(self, workforce):
        result = workforce.warehouse.query(FIG10A)
        assert all(
            row.properties and row.properties[0][0] == "Department"
            for row in result.rows
        )

    def test_fig10b_single_employee(self, workforce):
        result = workforce.warehouse.query(FIG10B)
        employee = workforce.warehouse.named_set("EmployeeS3").members[0]
        row_members = {
            row.coordinates[0][1].split("/")[-1] for row in result.rows
        }
        assert row_members == {employee}

    def test_fig10c_head_limits_rows(self, workforce):
        result = workforce.warehouse.query(FIG10C)
        set1 = workforce.warehouse.named_set(
            "EmployeesWithAtleastOneMove-Set1"
        )
        # Head(..., 50) caps employees at 50; our set is smaller, so every
        # member appears.  Rows = surviving instances x 16 Period members.
        members_in_rows = {
            row.coordinates[0][1].split("/")[-1] for row in result.rows
        }
        assert members_in_rows <= set(set1.members)

    def test_fig10b_values_follow_forward_semantics(self, workforce):
        """Cross-check one cell against the semantic scenario engine."""
        from repro.core.perspective import Semantics
        from repro.core.scenario import NegativeScenario

        result = workforce.warehouse.query(FIG10B)
        scenario = NegativeScenario(
            "Department",
            ["Jan", "Apr", "Jul", "Oct"],
            Semantics.FORWARD,
        )
        reference = scenario.apply(workforce.cube)
        # Pick the first month-level row and first column.
        month_rows = [
            row
            for row in result.rows
            if row.coordinates[1][1]
            in workforce.warehouse.schema.dimension("Period").leaf_members()[0].name
        ]
        row = result.rows[1]  # first month row after the Q1 row
        column = result.columns[0]
        coords = {
            "Currency": "Local",
            "Version": "BU Version_1",
            "Value": "HSP_InputValue",
        }
        coords.update(dict(row.coordinates))
        coords.update(dict(column.coordinates))
        address = workforce.warehouse.schema.address(**coords)
        expected = reference.effective_value(address)
        got = result.cell(1, 0)
        if expected is None or got is None:
            assert got == expected
        else:
            from repro.olap.missing import is_missing

            assert is_missing(got) == is_missing(expected)
            if not is_missing(expected):
                assert got == expected
