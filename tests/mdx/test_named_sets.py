"""Tests for WITH SET ... AS query-scoped named sets."""

from __future__ import annotations

import pytest

from repro.errors import MdxEvaluationError, MdxSyntaxError
from repro.mdx.parser import parse_query
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestParsing:
    def test_set_definition(self):
        query = parse_query(
            "WITH SET [Mine] AS {[Jan], [Feb]} "
            "SELECT {[Mine]} ON COLUMNS FROM W"
        )
        assert len(query.named_sets) == 1
        assert query.named_sets[0][0] == "Mine"

    def test_multiple_sets(self):
        query = parse_query(
            "WITH SET [A] AS {[Jan]} SET [B] AS {[Feb]} "
            "SELECT {[A], [B]} ON COLUMNS FROM W"
        )
        assert [name for name, _ in query.named_sets] == ["A", "B"]

    def test_set_combined_with_perspective(self):
        query = parse_query(
            "WITH SET [A] AS {[Joe]} "
            "PERSPECTIVE {(Jan)} FOR Organization STATIC "
            "SELECT {[A]} ON COLUMNS FROM W"
        )
        assert query.named_sets
        assert query.perspective is not None

    def test_duplicate_perspective_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse_query(
                "WITH PERSPECTIVE {(Jan)} FOR D PERSPECTIVE {(Feb)} FOR D "
                "SELECT {[x]} ON COLUMNS FROM W"
            )

    def test_missing_as_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse_query("WITH SET [A] {[Jan]} SELECT {[A]} ON COLUMNS FROM W")


class TestEvaluation:
    def test_set_used_on_axis(self, warehouse):
        result = warehouse.query(
            "WITH SET [Early] AS {Time.[Jan], Time.[Feb]} "
            "SELECT {[Early]} ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb"]

    def test_set_with_function_body(self, warehouse):
        result = warehouse.query(
            "WITH SET [EastStates] AS [East].Children "
            "SELECT {Time.[Jan]} ON COLUMNS, {[EastStates]} ON ROWS "
            "FROM Warehouse"
        )
        assert result.row_labels() == ["NY", "MA", "NH"]

    def test_set_referencing_set(self, warehouse):
        result = warehouse.query(
            "WITH SET [A] AS {Time.[Jan]} SET [B] AS {[A], Time.[Feb]} "
            "SELECT {[B]} ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb"]

    def test_self_referencing_set_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError, match="itself"):
            warehouse.query(
                "WITH SET [A] AS {[A]} SELECT {[A]} ON COLUMNS FROM Warehouse"
            )

    def test_query_set_shadows_member_resolution(self, warehouse):
        """A query set named like nothing else resolves before members;
        member names still resolve when no set matches."""
        result = warehouse.query(
            "WITH SET [JoeSet] AS {[Joe]} "
            "SELECT {Time.[Jan]} ON COLUMNS, {[JoeSet]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        assert result.row_labels() == ["FTE/Joe", "PTE/Joe", "Contractor/Joe"]

    def test_set_inside_crossjoin(self, warehouse):
        result = warehouse.query(
            "WITH SET [Q] AS {Time.[Qtr1], Time.[Qtr2]} "
            "SELECT CrossJoin({[Q]}, {[Salary]}) ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse WHERE ([NY])"
        )
        assert len(result.columns) == 2
        assert result.cell(0, 0) == 30.0

    def test_set_visible_in_perspective_query(self, warehouse):
        result = warehouse.query(
            "WITH SET [JoeSet] AS {[Joe]} "
            "PERSPECTIVE {(Jan)} FOR Organization DYNAMIC FORWARD "
            "SELECT {Time.[Mar]} ON COLUMNS, {[JoeSet]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        assert result.row_labels() == ["FTE/Joe"]
        assert result.cell(0, 0) == 30.0
