"""Tests for the MDX Filter function (value-predicate σ, Sec. 4.1)."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.mdx.ast_nodes import FilterExpr
from repro.mdx.lexer import tokenize
from repro.mdx.parser import parse_query
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestLexerRelops:
    @pytest.mark.parametrize("op", ["<", ">", "=", "<=", ">=", "<>"])
    def test_relop_tokens(self, op):
        tokens = tokenize(f"a {op} 5")
        assert tokens[1].kind == "punct"
        assert tokens[1].value == op

    def test_adjacent_relops_split_correctly(self):
        values = [t.value for t in tokenize("x >= 1")][:-1]
        assert values == ["x", ">=", "1"]


class TestParsing:
    def test_filter_with_tuple_condition(self):
        query = parse_query(
            "SELECT Filter({[a]}, ([Sales], [NY]) > 100) ON COLUMNS FROM W"
        )
        expr = query.axes[0].expr
        assert isinstance(expr, FilterExpr)
        assert expr.relop == ">"
        assert expr.threshold == 100.0
        assert len(expr.condition.members) == 2

    def test_filter_with_bare_member_condition(self):
        query = parse_query(
            "SELECT Filter({[a]}, [Sales] >= 10) ON COLUMNS FROM W"
        )
        expr = query.axes[0].expr
        assert isinstance(expr, FilterExpr)
        assert expr.relop == ">="

    def test_filter_missing_relop_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse_query("SELECT Filter({[a]}, ([Sales]) 10) ON COLUMNS FROM W")

    def test_nested_filter(self):
        query = parse_query(
            "SELECT Filter(Filter({[a]}, [x] > 1), [y] < 2) ON COLUMNS FROM W"
        )
        outer = query.axes[0].expr
        assert isinstance(outer, FilterExpr)
        assert isinstance(outer.base, FilterExpr)


class TestEvaluation:
    def test_filter_members_by_value(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Mar]} ON COLUMNS,
                   Filter({[Joe], [Lisa], [Tom], [Jane]},
                          ([NY], [Salary], Time.[Mar]) > 25) ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["Contractor/Joe"]

    def test_filter_keeps_all_when_threshold_low(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS,
                   Filter({[Lisa], [Tom]},
                          ([NY], [Salary], Time.[Jan]) >= 10) ON ROWS
            FROM Warehouse
            """
        )
        assert result.row_labels() == ["FTE/Lisa", "PTE/Tom"]

    def test_filter_missing_cells_fail_comparison(self, warehouse):
        # Sue has no data at all: she never passes a Filter.
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS,
                   Filter({[Sue], [Lisa]}, ([NY], [Salary]) > 0) ON ROWS
            FROM Warehouse
            """
        )
        assert result.row_labels() == ["FTE/Lisa"]

    def test_filter_not_equal(self, warehouse):
        result = warehouse.query(
            """
            SELECT Filter({Time.[Jan], Time.[Feb]},
                          ([Lisa], [NY], [Salary]) <> 10) ON COLUMNS
            FROM Warehouse
            """
        )
        assert result.column_labels() == []

    def test_filter_sees_perspective_view(self, warehouse):
        """Filter evaluates on the hypothetical cube: under forward-from-Feb
        visual, PTE/Joe holds March's 30."""
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Feb)} FOR Organization DYNAMIC FORWARD VISUAL
            SELECT {Time.[Mar]} ON COLUMNS,
                   Filter({[Joe]}, ([NY], [Salary], Time.[Mar]) > 25) ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["PTE/Joe"]
        assert result.cell(0, 0) == 30.0
