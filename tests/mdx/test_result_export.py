"""Tests for MdxResult export forms and Filter/σ equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import select
from repro.core.predicates import value_predicate
from repro.warehouse import Warehouse
from repro.workload.running_example import build_running_example


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


class TestRecords:
    def test_records_shape(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS, "
            "{[Lisa], [Tom]} ON ROWS FROM Warehouse WHERE ([NY], [Salary])"
        )
        records = result.to_records()
        assert len(records) == 4
        first = records[0]
        assert first["Time"] == "Qtr1"
        assert first["Organization"] == "Organization/FTE/Lisa"
        assert first["value"] == 30.0

    def test_missing_as_none(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Dec]} ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        assert result.to_records()[0]["value"] is None

    def test_properties_included(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Jan]} ON COLUMNS, "
            "{[Lisa]} DIMENSION PROPERTIES [Organization] ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        record = result.to_records()[0]
        assert record["Organization (property)"] == "FTE"


class TestCsv:
    def test_csv_grid(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Qtr1]} ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        lines = result.to_csv().splitlines()
        assert lines[0] == ",Qtr1"
        assert lines[1] == "FTE/Lisa,30.0"

    def test_csv_quoting(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Qtr1]} ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        # Inject a label needing quoting via a crafted rendering check.
        text = result.to_csv()
        assert '"' not in text  # nothing needed quoting here

    def test_csv_missing_marker(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Dec]} ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        assert result.to_csv(missing="#Missing").splitlines()[1].endswith(
            "#Missing"
        )


@settings(max_examples=20, deadline=None)
@given(threshold=st.integers(min_value=0, max_value=40))
def test_mdx_filter_equals_sigma_value_predicate(threshold):
    """The MDX Filter surface form and the σ value predicate (two renderings
    of the same Sec. 4.1 construct) agree on which members qualify."""
    example = build_running_example()
    warehouse = Warehouse(example.schema, example.cube, name="Warehouse")
    result = warehouse.query(
        f"""
        SELECT {{Time.[Mar]}} ON COLUMNS,
               Filter({{[Joe], [Lisa], [Tom], [Jane]}},
                      ([NY], [Salary], Time.[Mar]) > {threshold}) ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
        """
    )
    mdx_members = {
        row.coordinates[0][1].split("/")[-1] for row in result.rows
    }

    pred = value_predicate(
        {"Location": "NY", "Time": "Mar", "Measures": "Salary"}, ">", threshold
    )
    selected = select(example.cube, "Organization", pred)
    sigma_members = {
        c.split("/")[-1] for c in selected.coordinates_used("Organization")
    }
    # Filter keeps instances whose *specific* cell passes; σ keeps members
    # with *some* passing cell — for this single-cell pin they coincide.
    assert mdx_members == sigma_members