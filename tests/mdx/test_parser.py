"""Tests for the extended-MDX parser."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.mdx.ast_nodes import (
    ChildrenExpr,
    CrossJoinExpr,
    DescendantsExpr,
    HeadExpr,
    LevelsMembersExpr,
    MemberPath,
    MembersExpr,
    SetLiteral,
    TailExpr,
    TupleExpr,
    UnionExpr,
)
from repro.mdx.parser import parse_query


def parse(text):
    return parse_query(text)


BASIC = "SELECT {[Jan]} ON COLUMNS FROM Warehouse"


class TestCoreQuery:
    def test_minimal(self):
        query = parse(BASIC)
        assert query.cube == ("Warehouse",)
        assert query.axes[0].axis == "columns"
        assert query.slicer is None
        assert query.perspective is None

    def test_two_axes(self):
        query = parse(
            "SELECT {[Jan]} ON COLUMNS, {[Joe]} ON ROWS FROM Warehouse"
        )
        assert [a.axis for a in query.axes] == ["columns", "rows"]

    def test_numbered_axes(self):
        query = parse("SELECT {[Jan]} ON 0 FROM Warehouse")
        assert query.axes[0].axis == "axis0"
        query = parse("SELECT {[Jan]} ON AXIS(1) FROM Warehouse")
        assert query.axes[0].axis == "axis1"

    def test_dotted_cube_reference(self):
        query = parse("SELECT {[Jan]} ON COLUMNS FROM [App].[Db]")
        assert query.cube == ("App", "Db")

    def test_where_tuple(self):
        query = parse(
            "SELECT {[Jan]} ON COLUMNS FROM W "
            "WHERE (Organization.[FTE].[Joe], Measures.[Salary])"
        )
        assert isinstance(query.slicer, TupleExpr)
        assert query.slicer.members[0].parts == ("Organization", "FTE", "Joe")

    def test_where_single_member(self):
        query = parse("SELECT {[Jan]} ON COLUMNS FROM W WHERE [NY]")
        assert query.slicer.members[0].parts == ("NY",)

    def test_dimension_properties(self):
        query = parse(
            "SELECT {[x]} DIMENSION PROPERTIES [Department] ON ROWS FROM W"
        )
        assert query.axes[0].properties[0].parts == ("Department",)

    def test_multiple_dimension_properties(self):
        query = parse(
            "SELECT {[x]} DIMENSION PROPERTIES [A], [B] ON ROWS FROM W"
        )
        assert len(query.axes[0].properties) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse(BASIC + " bogus extra")

    def test_missing_from_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse("SELECT {[Jan]} ON COLUMNS")


class TestSetExpressions:
    def axis_expr(self, text):
        return parse(f"SELECT {text} ON COLUMNS FROM W").axes[0].expr

    def test_set_literal(self):
        expr = self.axis_expr("{[Jan], [Feb]}")
        assert isinstance(expr, SetLiteral)
        assert len(expr.elements) == 2

    def test_empty_set(self):
        assert self.axis_expr("{}") == SetLiteral(())

    def test_nested_sets(self):
        expr = self.axis_expr("{{[a]}, {[b], [c]}}")
        assert isinstance(expr, SetLiteral)
        assert isinstance(expr.elements[0], SetLiteral)

    def test_tuple(self):
        expr = self.axis_expr("{([Current], [Local])}")
        inner = expr.elements[0]
        assert isinstance(inner, TupleExpr)
        assert [m.parts for m in inner.members] == [("Current",), ("Local",)]

    def test_member_path(self):
        expr = self.axis_expr("Organization.[FTE].[Joe]")
        assert expr == MemberPath(("Organization", "FTE", "Joe"))

    def test_children(self):
        expr = self.axis_expr("[East].Children")
        assert isinstance(expr, ChildrenExpr)
        assert expr.base.parts == ("East",)

    def test_members(self):
        expr = self.axis_expr("Location.Members")
        assert isinstance(expr, MembersExpr)

    def test_levels_members(self):
        expr = self.axis_expr("[Account].Levels(0).Members")
        assert isinstance(expr, LevelsMembersExpr)
        assert expr.level == 0

    def test_crossjoin_union(self):
        expr = self.axis_expr("CrossJoin({[a]}, Union({[b]}, {[c]}))")
        assert isinstance(expr, CrossJoinExpr)
        assert isinstance(expr.right, UnionExpr)

    def test_head_tail(self):
        expr = self.axis_expr("Head({[a]}, 5)")
        assert isinstance(expr, HeadExpr)
        assert expr.count == 5
        expr = self.axis_expr("Tail({[a]}, 2)")
        assert isinstance(expr, TailExpr)

    def test_descendants_full_form(self):
        expr = self.axis_expr("Descendants([Period], 1, self_and_after)")
        assert isinstance(expr, DescendantsExpr)
        assert expr.depth == 1
        assert expr.flag == "self_and_after"

    def test_descendants_defaults(self):
        expr = self.axis_expr("Descendants([Period])")
        assert expr.depth == 0
        assert expr.flag == "self"

    def test_bracketed_function_name_is_member(self):
        expr = self.axis_expr("[CrossJoin]")
        assert expr == MemberPath(("CrossJoin",))

    def test_tuple_with_set_component_rejected(self):
        with pytest.raises(MdxSyntaxError):
            self.axis_expr("([a].Children, [b])")


class TestPerspectiveClause:
    def test_static(self):
        query = parse(
            "WITH PERSPECTIVE {(Jan), (Jul)} FOR Department STATIC " + BASIC
        )
        clause = query.perspective
        assert clause.perspectives == ("Jan", "Jul")
        assert clause.dimension == "Department"
        assert clause.semantics == "static"
        assert clause.mode == "non_visual"

    def test_dynamic_forward(self):
        query = parse(
            "WITH PERSPECTIVE {(Jan)} FOR Department DYNAMIC FORWARD VISUAL "
            + BASIC
        )
        assert query.perspective.semantics == "forward"
        assert query.perspective.mode == "visual"

    def test_plain_forward(self):
        query = parse("WITH PERSPECTIVE {(Jan)} FOR D FORWARD " + BASIC)
        assert query.perspective.semantics == "forward"

    def test_extended_backward(self):
        query = parse(
            "WITH PERSPECTIVE {(Jan)} FOR D DYNAMIC EXTENDED BACKWARD " + BASIC
        )
        assert query.perspective.semantics == "extended_backward"

    def test_default_semantics_is_static(self):
        query = parse("WITH PERSPECTIVE {(Jan)} FOR D " + BASIC)
        assert query.perspective.semantics == "static"

    def test_points_without_parens(self):
        query = parse("WITH PERSPECTIVE {Jan, Feb} FOR D " + BASIC)
        assert query.perspective.perspectives == ("Jan", "Feb")

    def test_dangling_extended_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse("WITH PERSPECTIVE {(Jan)} FOR D EXTENDED " + BASIC)

    def test_nonvisual_spelling(self):
        query = parse("WITH PERSPECTIVE {(Jan)} FOR D STATIC NONVISUAL " + BASIC)
        assert query.perspective.mode == "non_visual"


class TestChangesClause:
    def test_single_change(self):
        query = parse(
            "WITH CHANGES {([Lisa], FTE, PTE, Apr)} FOR Organization VISUAL "
            + BASIC
        )
        clause = query.changes
        assert clause.dimension == "Organization"
        assert clause.mode == "visual"
        (change,) = clause.changes
        assert change.member.parts == ("Lisa",)
        assert (change.old_parent, change.new_parent, change.moment) == (
            "FTE",
            "PTE",
            "Apr",
        )
        assert not change.expand

    def test_children_expansion(self):
        query = parse("WITH CHANGES {([FTE].Children, FTE, PTE, Apr)} " + BASIC)
        (change,) = query.changes.changes
        assert change.expand
        assert change.member.parts == ("FTE",)

    def test_multiple_changes(self):
        query = parse(
            "WITH CHANGES {([a], X, Y, Jan), ([b], Y, Z, Mar)} " + BASIC
        )
        assert len(query.changes.changes) == 2

    def test_with_requires_known_clause(self):
        with pytest.raises(MdxSyntaxError):
            parse("WITH FOO " + BASIC)
