"""Tests for MDX evaluation against the running-example warehouse."""

from __future__ import annotations

import pytest

from repro.errors import MdxEvaluationError
from repro.olap.missing import is_missing
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    wh = Warehouse(example.schema, example.cube, name="Warehouse")
    wh.define_named_set("Changers", ["Joe"])
    return wh


class TestClassicQueries:
    def test_fig3_style_grid(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
                   Location.[East].Children ON ROWS
            FROM Warehouse
            WHERE (Organization.[Contractor].[Joe], Measures.[Salary])
            """
        )
        assert result.column_labels() == ["Qtr1", "Qtr2"]
        assert result.row_labels() == ["NY", "MA", "NH"]
        # Contractor/Joe NY: Mar 30 in Q1; Apr 20 + Jun 20 in Q2.
        assert result.cell_by_labels("NY", "Qtr1") == 30.0
        assert result.cell_by_labels("NY", "Qtr2") == 40.0
        assert result.cell_by_labels("MA", "Qtr1") == 15.0
        assert is_missing(result.cell_by_labels("NH", "Qtr1"))

    def test_default_members_are_roots(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Qtr1]} ON COLUMNS FROM Warehouse"
        )
        # Everything else defaults to dimension roots: grand total of Q1.
        expected = warehouse.cube.effective_value(
            warehouse.schema.address(
                Organization="Organization",
                Location="Location",
                Time="Qtr1",
                Measures="Measures",
            )
        )
        assert result.cell(0, 0) == expected

    def test_varying_leaf_expands_to_instances(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Jan], Time.[Feb], Time.[Mar]} ON COLUMNS,
                   {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Joe", "PTE/Joe", "Contractor/Joe"]
        assert result.cell_by_labels("FTE/Joe", "Jan") == 10.0
        assert is_missing(result.cell_by_labels("FTE/Joe", "Feb"))
        assert result.cell_by_labels("PTE/Joe", "Feb") == 10.0
        assert result.cell_by_labels("Contractor/Joe", "Mar") == 30.0

    def test_parent_qualified_member_selects_one_instance(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS,
                   {Organization.[PTE].[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["PTE/Joe"]

    def test_crossjoin_axis(self, warehouse):
        result = warehouse.query(
            """
            SELECT CrossJoin({[Qtr1]}, {[Salary], [Benefits]}) ON COLUMNS,
                   {[Lisa]} ON ROWS
            FROM Warehouse WHERE ([NY])
            """
        )
        assert len(result.columns) == 2
        assert result.cell(0, 0) == 30.0  # Lisa Q1 salary
        assert result.cell(0, 1) == 6.0  # Lisa Q1 benefits

    def test_union_deduplicates(self, warehouse):
        result = warehouse.query(
            "SELECT Union({[Jan], [Feb]}, {[Feb], [Mar]}) ON COLUMNS "
            "FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb", "Mar"]

    def test_head_and_tail(self, warehouse):
        result = warehouse.query(
            "SELECT Head({[Jan], [Feb], [Mar]}, 2) ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb"]
        result = warehouse.query(
            "SELECT Tail({[Jan], [Feb], [Mar]}, 1) ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Mar"]

    def test_levels_members(self, warehouse):
        result = warehouse.query(
            "SELECT [Measures].Levels(0).Members ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == [
            "Salary",
            "Benefits",
            "Products",
            "Services",
        ]

    def test_descendants_self_and_after(self, warehouse):
        result = warehouse.query(
            "SELECT {Descendants([Time], 1, self_and_after)} ON COLUMNS "
            "FROM Warehouse"
        )
        labels = result.column_labels()
        assert labels[:4] == ["Qtr1", "Jan", "Feb", "Mar"]
        assert len(labels) == 16  # 4 quarters + 12 months

    def test_descendants_exact_depth(self, warehouse):
        result = warehouse.query(
            "SELECT {Descendants([Time], 2)} ON COLUMNS FROM Warehouse"
        )
        assert len(result.column_labels()) == 12  # months only

    def test_named_set_reference(self, warehouse):
        result = warehouse.query(
            "SELECT {Time.[Jan]} ON COLUMNS, {[Changers]} ON ROWS "
            "FROM Warehouse WHERE ([NY], [Salary])"
        )
        assert result.row_labels() == ["FTE/Joe", "PTE/Joe", "Contractor/Joe"]

    def test_dimension_properties_render(self, warehouse):
        result = warehouse.query(
            """
            SELECT {Time.[Jan]} ON COLUMNS,
                   {[Joe]} DIMENSION PROPERTIES [Organization] ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.rows[0].properties == (("Organization", "FTE"),)


class TestPerspectiveQueries:
    def test_static_drops_other_instances(self, warehouse):
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Jan)} FOR Organization STATIC
            SELECT {Time.[Jan], Time.[Feb]} ON COLUMNS, {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Joe"]
        assert result.cell_by_labels("FTE/Joe", "Jan") == 10.0
        assert is_missing(result.cell_by_labels("FTE/Joe", "Feb"))

    def test_forward_relocates_values(self, warehouse):
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
            SELECT {Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
                   {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["PTE/Joe", "Contractor/Joe"]
        assert result.cell_by_labels("PTE/Joe", "Mar") == 30.0
        assert result.cell_by_labels("Contractor/Joe", "Apr") == 20.0
        assert is_missing(result.cell_by_labels("Contractor/Joe", "Mar"))

    def test_visual_vs_non_visual_aggregates(self, warehouse):
        visual = warehouse.query(
            """
            WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
            SELECT {Time.[Qtr1]} ON COLUMNS, {[PTE]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        non_visual = warehouse.query(
            """
            WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD NON_VISUAL
            SELECT {Time.[Qtr1]} ON COLUMNS, {[PTE]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert visual.cell(0, 0) == 70.0  # Tom 30 + PTE/Joe (10 + 30)
        assert non_visual.cell(0, 0) == 40.0  # original aggregate

    def test_extended_forward_via_mdx(self, warehouse):
        """EXTENDED FORWARD assigns pre-Pmin moments to Pmin's instance:
        with P={Mar}, Contractor/Joe also absorbs Jan and Feb."""
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Mar)} FOR Organization DYNAMIC EXTENDED FORWARD
            SELECT {Time.[Jan], Time.[Feb], Time.[Mar]} ON COLUMNS,
                   {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["Contractor/Joe"]
        assert result.cell_by_labels("Contractor/Joe", "Jan") == 10.0
        assert result.cell_by_labels("Contractor/Joe", "Feb") == 10.0
        assert result.cell_by_labels("Contractor/Joe", "Mar") == 30.0

    def test_backward_via_mdx(self, warehouse):
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(Feb)} FOR Organization DYNAMIC BACKWARD
            SELECT {Time.[Jan], Time.[Feb], Time.[Mar]} ON COLUMNS,
                   {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        # PTE/Joe (valid at Feb) absorbs the past: Jan from FTE/Joe.
        assert result.row_labels() == ["PTE/Joe"]
        assert result.cell_by_labels("PTE/Joe", "Jan") == 10.0
        assert result.cell_by_labels("PTE/Joe", "Feb") == 10.0
        assert is_missing(result.cell_by_labels("PTE/Joe", "Mar"))

    def test_changes_clause(self, warehouse):
        result = warehouse.query(
            """
            WITH CHANGES {([Lisa], FTE, PTE, Apr)} FOR Organization VISUAL
            SELECT {Time.[Mar], Time.[Apr]} ON COLUMNS, {[Lisa]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert result.row_labels() == ["FTE/Lisa", "PTE/Lisa"]
        assert result.cell_by_labels("FTE/Lisa", "Mar") == 10.0
        assert is_missing(result.cell_by_labels("FTE/Lisa", "Apr"))
        assert result.cell_by_labels("PTE/Lisa", "Apr") == 10.0

    def test_changes_children_expansion(self, warehouse):
        result = warehouse.query(
            """
            WITH CHANGES {([PTE].Children, PTE, Contractor, Mar)} VISUAL
            SELECT {Time.[Feb], Time.[Mar]} ON COLUMNS,
                   {[Tom], [Dave]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        labels = result.row_labels()
        assert "PTE/Tom" in labels and "Contractor/Tom" in labels
        assert result.cell_by_labels("Contractor/Tom", "Mar") == 10.0


class TestErrors:
    def test_unknown_member(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.query("SELECT {[Nobody]} ON COLUMNS FROM Warehouse")

    def test_wrong_cube_name(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.query("SELECT {Time.[Jan]} ON COLUMNS FROM OtherCube")

    def test_missing_columns_axis(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.query("SELECT {Time.[Jan]} ON ROWS FROM Warehouse")

    def test_three_axes_rejected(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.query(
                "SELECT {[Jan]} ON COLUMNS, {[Joe]} ON ROWS, "
                "{[NY]} ON AXIS(2) FROM Warehouse"
            )

    def test_ambiguous_tuple_component(self, warehouse):
        # [Joe] in a tuple is ambiguous: three instances.
        with pytest.raises(MdxEvaluationError, match="ambiguous"):
            warehouse.query(
                "SELECT {([Joe], [Salary])} ON COLUMNS FROM Warehouse"
            )

    def test_ambiguous_member_across_dimensions(self, example):
        example.location.add_member("Clash")
        example.measures.add_member("Clash")
        warehouse = Warehouse(example.schema, example.cube)
        with pytest.raises(MdxEvaluationError, match="ambiguous across"):
            warehouse.query("SELECT {[Clash]} ON COLUMNS FROM Warehouse")

    def test_changes_dimension_mismatch(self, warehouse):
        with pytest.raises(MdxEvaluationError):
            warehouse.query(
                "WITH CHANGES {([Lisa], FTE, PTE, Apr)} FOR Location "
                "SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse"
            )


class TestRegressions:
    """Pinned behavior for bugs surfaced by the static-analysis pass."""

    def test_tail_larger_than_set_returns_whole_set(self, warehouse):
        # Tail(s, n) with n > |s| used to wrap around via a negative
        # index and return a truncated set.
        result = warehouse.query(
            "SELECT Tail({[Jan], [Feb], [Mar]}, 5) ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb", "Mar"]

    def test_duplicate_axis_is_rejected_at_runtime(self, warehouse):
        # Previously the later binding silently won; now the evaluator
        # refuses (and the analyzer flags it as WIF004 first).
        with pytest.raises(MdxEvaluationError, match="bound more than once"):
            warehouse.query(
                "SELECT {Time.[Jan]} ON COLUMNS, {Time.[Feb]} ON COLUMNS "
                "FROM Warehouse",
                analyze=False,
            )

    def test_changes_and_perspective_compose(self, warehouse):
        # WITH CHANGES used to be silently dropped when a PERSPECTIVE
        # clause was also present.  Relocating Joe FTE -> PTE at Jan must
        # be visible under the Jan perspective.
        combined = warehouse.query(
            """
            WITH CHANGES {([Joe], [FTE], [PTE], [Jan])} FOR Organization
                 PERSPECTIVE {(Jan)} FOR Organization
            SELECT {Time.[Jan]} ON COLUMNS, {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert combined.row_labels() == ["PTE/Joe"]
        assert combined.cell(0, 0) == 10.0
        baseline = warehouse.query(
            """
            WITH PERSPECTIVE {(Jan)} FOR Organization
            SELECT {Time.[Jan]} ON COLUMNS, {[Joe]} ON ROWS
            FROM Warehouse WHERE ([NY], [Salary])
            """
        )
        assert baseline.row_labels() == ["FTE/Joe"]
