"""Source spans: parse errors and AST nodes carry line/column positions in
one shared format (``line L, column C``)."""

from __future__ import annotations

import pytest

from repro.errors import MdxSyntaxError
from repro.mdx.parser import parse_query
from repro.mdx.span import SourceSpan


class TestParseErrorSpans:
    def test_error_carries_line_and_column(self):
        with pytest.raises(MdxSyntaxError) as excinfo:
            parse_query(
                "SELECT {Time.[Jan]} ON COLUMNS\nFROM Warehouse WHERE !"
            )
        exc = excinfo.value
        assert exc.line == 2
        assert exc.column == 22
        assert "(line 2, column 22)" in str(exc)

    def test_span_property_matches_message_format(self):
        with pytest.raises(MdxSyntaxError) as excinfo:
            parse_query("SELECT {")
        span = excinfo.value.span
        assert span is not None
        assert str(span) in str(excinfo.value)

    def test_raw_message_strips_position(self):
        with pytest.raises(MdxSyntaxError) as excinfo:
            parse_query("SELECT {")
        exc = excinfo.value
        assert "line" not in exc.raw_message
        assert exc.raw_message in str(exc)

    def test_span_is_none_without_position(self):
        exc = MdxSyntaxError("positionless")
        assert exc.span is None
        assert str(exc) == "positionless"


class TestAstSpans:
    QUERY = (
        "WITH PERSPECTIVE {(Feb)} FOR Organization\n"
        "SELECT {Time.[Jan]} ON COLUMNS,\n"
        "       {[Joe]} ON ROWS\n"
        "FROM Warehouse"
    )

    def test_member_path_span(self):
        query = parse_query(self.QUERY)
        rows = query.axes[1]
        member = rows.expr.elements[0]
        assert member.span == SourceSpan(3, 9)

    def test_axis_and_clause_spans(self):
        query = parse_query(self.QUERY)
        assert query.perspective.span is not None
        assert query.perspective.span.line == 1
        assert query.axes[0].span.line == 2
        assert query.cube_span.line == 4

    def test_spans_do_not_affect_equality(self):
        from repro.mdx.ast_nodes import MemberPath

        with_span = MemberPath(("Joe",), span=SourceSpan(3, 9))
        without = MemberPath(("Joe",))
        assert with_span == without
        assert hash(with_span) == hash(without)

    def test_from_token_classmethod(self):
        class FakeToken:
            line = 7
            column = 3

        assert SourceSpan.from_token(FakeToken()) == SourceSpan(7, 3)
