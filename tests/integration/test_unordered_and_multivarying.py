"""Integration: unordered parameter dimensions and multiple varying dims.

The paper (Sec. 2, 3.1): "structural changes are not necessarily temporal,
but can vary by location or by both time and location" and "a cube may have
several varying dimensions, each depending on one or more parameters".

Scenario S2: FTE Lisa performs some work in MA where she is classified as
PTE — Organization varies over the *unordered* Location dimension.  Static
perspectives apply; dynamic semantics require an order and are rejected.
"""

from __future__ import annotations

import pytest

from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario, apply_scenarios
from repro.errors import QueryError
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.missing import is_missing
from repro.olap.schema import CubeSchema
from repro.warehouse import Warehouse

LOCATIONS = ["NY", "MA", "CA"]


@pytest.fixture
def location_world():
    """Organization varying over Location (unordered): Lisa is FTE in NY
    and CA but PTE in MA (scenario S2)."""
    org = Dimension("Organization")
    org.add_children(None, ["FTE", "PTE"])
    org.add_member("Lisa", "FTE")
    org.add_member("Tom", "PTE")
    location = Dimension("Location")  # unordered
    for name in LOCATIONS:
        location.add_member(name)
    measures = Dimension("Measures", is_measures=True)
    measures.add_member("Hours")

    schema = CubeSchema([org, location, measures])
    varying = schema.make_varying("Organization", "Location")
    varying.assign("Lisa", "FTE", ["NY", "CA"])
    varying.assign("Lisa", "PTE", ["MA"])

    cube = Cube(schema)
    for instance in varying.instances_of("Lisa"):
        for index in instance.validity:
            cube.set_value(
                (instance.full_path, LOCATIONS[index], "Hours"), 8.0
            )
    for location_name in LOCATIONS:
        cube.set_value(("Organization/PTE/Tom", location_name, "Hours"), 6.0)
    return schema, varying, cube


class TestUnorderedParameter:
    def test_instances_by_location(self, location_world):
        _, varying, _ = location_world
        instances = {i.qualified_name: i for i in varying.instances_of("Lisa")}
        assert instances["FTE/Lisa"].validity.sorted_moments() == [0, 2]
        assert instances["PTE/Lisa"].validity.sorted_moments() == [1]

    def test_static_perspective_over_location(self, location_world):
        """Perspective {NY}: only Lisa-as-FTE remains (her NY/CA self)."""
        schema, varying, cube = location_world
        scenario = NegativeScenario(
            "Organization", ["NY"], Semantics.STATIC, Mode.VISUAL
        )
        result = scenario.apply(cube)
        assert "Organization/FTE/Lisa" in result.validity_out
        assert "Organization/PTE/Lisa" not in result.validity_out
        assert result.at(
            Organization="Organization/FTE/Lisa", Location="NY", Measures="Hours"
        ) == 8.0
        assert is_missing(
            result.at(
                Organization="Organization/PTE/Lisa",
                Location="MA",
                Measures="Hours",
            )
        )

    def test_static_perspective_ma_keeps_pte_lisa(self, location_world):
        schema, varying, cube = location_world
        scenario = NegativeScenario("Organization", ["MA"], Semantics.STATIC)
        result = scenario.apply(cube)
        assert set(result.validity_out) == {
            "Organization/PTE/Lisa",
            "Organization/PTE/Tom",
        }

    def test_dynamic_semantics_rejected_on_unordered_parameter(
        self, location_world
    ):
        _, _, cube = location_world
        scenario = NegativeScenario("Organization", ["NY"], Semantics.FORWARD)
        with pytest.raises(QueryError, match="unordered"):
            scenario.apply(cube)

    def test_mdx_static_perspective_over_location(self, location_world):
        schema, varying, cube = location_world
        warehouse = Warehouse(schema, cube, name="W")
        result = warehouse.query(
            """
            WITH PERSPECTIVE {(MA)} FOR Organization STATIC
            SELECT {[NY], [MA], [CA]} ON COLUMNS, {[Lisa]} ON ROWS
            FROM W WHERE ([Hours])
            """
        )
        assert result.row_labels() == ["PTE/Lisa"]
        assert result.cell_by_labels("PTE/Lisa", "MA") == 8.0
        assert is_missing(result.cell_by_labels("PTE/Lisa", "NY"))


@pytest.fixture
def two_varying_world():
    """Organization varies over Time AND Product varies over Time."""
    org = Dimension("Organization")
    org.add_children(None, ["FTE", "PTE"])
    org.add_member("Joe", "FTE")
    product = Dimension("Product")
    product.add_children(None, ["A", "B"])
    product.add_member("p1", "A")
    time = Dimension("Time", ordered=True)
    for month in ("Jan", "Feb", "Mar", "Apr"):
        time.add_member(month)
    schema = CubeSchema([org, product, time])
    org_varying = schema.make_varying("Organization", "Time")
    product_varying = schema.make_varying("Product", "Time")
    org_varying.reparent("Joe", "PTE", "Mar")
    product_varying.reparent("p1", "B", "Feb")

    cube = Cube(schema)
    for org_instance in org_varying.instances_of("Joe"):
        for product_instance in product_varying.instances_of("p1"):
            overlap = org_instance.validity & product_instance.validity
            for t in overlap:
                cube.set_value(
                    (
                        org_instance.full_path,
                        product_instance.full_path,
                        ("Jan", "Feb", "Mar", "Apr")[t],
                    ),
                    float(t + 1),
                )
    return schema, org_varying, product_varying, cube


class TestMultipleVaryingDimensions:
    def test_scenarios_compose_across_dimensions(self, two_varying_world):
        schema, org_varying, product_varying, cube = two_varying_world
        result = apply_scenarios(
            cube,
            [
                NegativeScenario("Organization", ["Jan"], Semantics.FORWARD),
                NegativeScenario("Product", ["Jan"], Semantics.FORWARD),
            ],
        )
        # Everything lands on (FTE/Joe, A/p1): the Jan structures of both
        # dimensions imposed over the year.
        for t, month in enumerate(("Jan", "Feb", "Mar", "Apr")):
            value = result.at(
                Organization="Organization/FTE/Joe",
                Product="Product/A/p1",
                Time=month,
            )
            assert value == float(t + 1)

    def test_partial_negation_keeps_other_dimension_changes(
        self, two_varying_world
    ):
        schema, org_varying, product_varying, cube = two_varying_world
        result = NegativeScenario(
            "Organization", ["Jan"], Semantics.FORWARD
        ).apply(cube)
        # Org change negated; the product change is still visible.
        assert result.at(
            Organization="Organization/FTE/Joe",
            Product="Product/B/p1",
            Time="Feb",
        ) == 2.0
        assert is_missing(
            result.at(
                Organization="Organization/PTE/Joe",
                Product="Product/B/p1",
                Time="Mar",
            )
        )

    def test_order_of_scenarios_is_immaterial_across_dimensions(
        self, two_varying_world
    ):
        schema, org_varying, product_varying, cube = two_varying_world
        ab = apply_scenarios(
            cube,
            [
                NegativeScenario("Organization", ["Jan"], Semantics.FORWARD),
                NegativeScenario("Product", ["Jan"], Semantics.FORWARD),
            ],
        )
        ba = apply_scenarios(
            cube,
            [
                NegativeScenario("Product", ["Jan"], Semantics.FORWARD),
                NegativeScenario("Organization", ["Jan"], Semantics.FORWARD),
            ],
        )
        assert ab.leaf_cube.leaf_equal(ba.leaf_cube)
