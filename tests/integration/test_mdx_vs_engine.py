"""Cross-layer integration: MDX results vs direct engine calls on the
workforce warehouse."""

from __future__ import annotations

import pytest

from repro.core.perspective import Mode, PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.core.scenario import NegativeScenario
from repro.olap.missing import is_missing
from repro.workload.workforce import WorkforceConfig, build_workforce

MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


@pytest.fixture(scope="module")
def workforce():
    return build_workforce(
        WorkforceConfig(
            n_employees=40,
            n_departments=4,
            n_changing=6,
            n_accounts=3,
            n_scenarios=2,
            seed=7,
        )
    )


@pytest.mark.parametrize(
    "perspectives,semantics_kw,semantics",
    [
        (("Jan", "Jul"), "STATIC", Semantics.STATIC),
        (("Jan", "Apr", "Jul", "Oct"), "DYNAMIC FORWARD", Semantics.FORWARD),
        (("Jun",), "DYNAMIC BACKWARD", Semantics.BACKWARD),
    ],
)
def test_mdx_matches_scenario_engine(
    workforce, perspectives, semantics_kw, semantics
):
    """Every cell of an MDX perspective query equals the scenario engine."""
    employee = workforce.changing_employees[0]
    account = workforce.accounts[0]
    points = ", ".join(f"({p})" for p in perspectives)
    result = workforce.warehouse.query(
        f"""
        WITH PERSPECTIVE {{{points}}} FOR Department {semantics_kw}
        SELECT {{{", ".join(f"Period.[{m}]" for m in MONTHS)}}} ON COLUMNS,
               {{[{employee}]}} ON ROWS
        FROM [App].[Db]
        WHERE ([{account}], [Current], [Local], [BU Version_1],
               [HSP_InputValue])
        """
    )
    reference = NegativeScenario(
        "Department", list(perspectives), semantics, Mode.NON_VISUAL
    ).apply(workforce.cube)

    expected_rows = {
        label
        for label in reference.validity_out
        if label.split("/")[-1] == employee
    }
    got_rows = {row.coordinates[0][1] for row in result.rows}
    assert got_rows == expected_rows

    for r, row in enumerate(result.rows):
        label = row.coordinates[0][1]
        for c, column in enumerate(result.columns):
            month = column.coordinates[0][1]
            address = workforce.schema.address(
                Department=label,
                Period=month,
                Account=account,
                Scenario="Current",
                Currency="Local",
                Version="BU Version_1",
                Value="HSP_InputValue",
            )
            expected = reference.leaf_cube.value(address)
            got = result.cell(r, c)
            assert is_missing(got) == is_missing(expected), (label, month)
            if not is_missing(expected):
                assert got == expected


def test_mdx_matches_chunk_engine_totals(workforce):
    """MDX row sums equal the chunk engine's relocated row sums."""
    chunked, spec = workforce.chunked()
    employee = workforce.changing_employees[1]
    pset = PerspectiveSet.from_names(
        ["Jan", "Apr", "Jul", "Oct"], workforce.employee_varying
    )
    chunk_result = run_perspective_query(
        spec, [employee], pset, Semantics.FORWARD
    )

    # VISUAL mode: the per-cell aggregates (non-axis dimensions default to
    # their roots) must be computed over the *relocated* leaves to be
    # comparable with the chunk engine's row totals.
    months = ", ".join(f"Period.[{m}]" for m in MONTHS)
    mdx = workforce.warehouse.query(
        f"""
        WITH PERSPECTIVE {{(Jan), (Apr), (Jul), (Oct)}} FOR Department
        DYNAMIC FORWARD VISUAL
        SELECT {{{months}}} ON COLUMNS, {{[{employee}]}} ON ROWS
        FROM [App].[Db]
        """
    )
    import math

    for row in mdx.rows:
        label = row.coordinates[0][1]
        mdx_total = 0.0
        row_index = mdx.rows.index(row)
        for c in range(len(mdx.columns)):
            value = mdx.cell(row_index, c)
            if not is_missing(value):
                mdx_total += float(value)
        chunk_total = chunk_result.total(label)
        if math.isnan(chunk_total):
            assert mdx_total == 0.0
        else:
            # The MDX query's cells default every non-axis dimension to its
            # root, i.e. they sum over accounts and scenarios — same scope
            # as the chunk engine's row totals.
            assert mdx_total == pytest.approx(chunk_total)
