"""Integration: the semantic scenario engine and the chunk-level engine
must agree cell-for-cell on randomized changing-dimension workloads.

Hypothesis drives random legal-change sequences, random perspective sets,
and random semantics; both engines evaluate the same query and every
output cell is compared.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge_graph import VaryingAxisSpec
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.core.scenario import NegativeScenario
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.missing import is_missing
from repro.olap.schema import CubeSchema
from repro.storage.array_cube import Axis, ChunkedCube

MONTHS = [f"m{i:02d}" for i in range(12)]
GROUPS = ["G0", "G1", "G2"]
MEMBERS = ["p", "q"]


def build_world(change_plan, invalid_months, values_seed):
    """One varying dimension (Product over Time) with a data cube and its
    chunked twin."""
    product = Dimension("Product")
    product.add_children(None, GROUPS)
    for name in MEMBERS:
        product.add_member(name, GROUPS[0])
    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)
    schema = CubeSchema([product, time])
    varying = schema.make_varying("Product", "Time")

    for member, moves in change_plan.items():
        varying.assign(member, GROUPS[0])
        for group, moment in moves:
            varying.reparent(member, group, moment)
    for member, months in invalid_months.items():
        if months:
            varying.set_invalid(member, sorted(months))

    rng = np.random.default_rng(values_seed)
    cube = Cube(schema)
    for member in MEMBERS:
        for instance in varying.instances_of(member):
            for t in instance.validity:
                cube.set_value(
                    (instance.full_path, MONTHS[t]), float(rng.integers(1, 100))
                )

    labels = []
    member_of_slot = {}
    validity = {}
    for member in MEMBERS:
        for instance in varying.instances_of(member):
            labels.append(instance.full_path)
            member_of_slot[instance.full_path] = member
            validity[instance.full_path] = instance.validity
    axes = [Axis("Product", sorted(labels)), Axis("Time", MONTHS)]
    chunked = ChunkedCube.build(
        axes,
        ((addr, value) for addr, value in cube.leaf_cells()),
        chunk_shape=(1, 3),
    )
    spec = VaryingAxisSpec(chunked, "Product", "Time", member_of_slot, validity)
    return schema, varying, cube, spec


moves_strategy = st.lists(
    st.tuples(st.sampled_from(GROUPS), st.integers(min_value=1, max_value=11)),
    max_size=4,
)
invalid_strategy = st.sets(st.integers(min_value=0, max_value=11), max_size=3)


@settings(max_examples=30, deadline=None)
@given(
    p_moves=moves_strategy,
    q_moves=moves_strategy,
    p_invalid=invalid_strategy,
    perspectives=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
    semantics=st.sampled_from(
        [
            Semantics.STATIC,
            Semantics.FORWARD,
            Semantics.EXTENDED_FORWARD,
            Semantics.BACKWARD,
            Semantics.EXTENDED_BACKWARD,
        ]
    ),
    values_seed=st.integers(min_value=0, max_value=10_000),
)
def test_chunk_engine_matches_semantic_engine(
    p_moves, q_moves, p_invalid, perspectives, semantics, values_seed
):
    schema, varying, cube, spec = build_world(
        {"p": p_moves, "q": q_moves}, {"p": p_invalid}, values_seed
    )
    # Skip degenerate worlds where p is invalid everywhere relevant: if a
    # member has no instances at all the engines reject it identically.
    if not varying.instances_of("p"):
        return

    pset = PerspectiveSet(perspectives, 12)
    result = run_perspective_query(spec, ["p", "q"], pset, semantics)

    reference = NegativeScenario(
        "Product", [MONTHS[m] for m in sorted(perspectives)], semantics
    ).apply(cube)

    # 1. Same surviving instances.
    assert set(result.rows) == set(reference.validity_out)

    # 2. Same validity sets.
    for label, vs in result.validity_out.items():
        assert vs == reference.validity_out[label]

    # 3. Same cell values everywhere.
    for label, data in result.rows.items():
        for t, month in enumerate(MONTHS):
            expected = reference.leaf_cube.value(
                schema.address(Product=label, Time=month)
            )
            got = float(data[t])
            if is_missing(expected):
                assert math.isnan(got), (label, month)
            else:
                assert got == expected, (label, month)


@settings(max_examples=20, deadline=None)
@given(
    p_moves=moves_strategy,
    perspectives=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=3
    ),
    values_seed=st.integers(min_value=0, max_value=10_000),
)
def test_pebbling_order_never_changes_results(p_moves, perspectives, values_seed):
    """The read order is an optimisation; output must be order-invariant."""
    schema, varying, cube, spec = build_world(
        {"p": p_moves, "q": []}, {}, values_seed
    )
    pset = PerspectiveSet(perspectives, 12)
    with_pebbling = run_perspective_query(
        spec, ["p"], pset, Semantics.FORWARD, use_pebbling=True
    )
    naive = run_perspective_query(
        spec, ["p"], pset, Semantics.FORWARD, use_pebbling=False
    )
    assert set(with_pebbling.rows) == set(naive.rows)
    for label in with_pebbling.rows:
        np.testing.assert_allclose(
            with_pebbling.rows[label], naive.rows[label], equal_nan=True
        )


@settings(max_examples=20, deadline=None)
@given(
    p_moves=moves_strategy,
    q_moves=moves_strategy,
    perspectives=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
    values_seed=st.integers(min_value=0, max_value=10_000),
)
def test_relocation_conserves_values(p_moves, q_moves, perspectives, values_seed):
    """Forward relocation only *moves* leaf values between instances of a
    member: the multiset of surviving values is a subset of the input's,
    and each output cell equals some input cell of the same member/moment."""
    schema, varying, cube, spec = build_world(
        {"p": p_moves, "q": q_moves}, {}, values_seed
    )
    pset = PerspectiveSet(perspectives, 12)
    reference = NegativeScenario(
        "Product", [MONTHS[m] for m in sorted(perspectives)], Semantics.FORWARD
    ).apply(cube)

    input_by_member_moment = {}
    for addr, value in cube.leaf_cells():
        member = addr[0].split("/")[-1]
        input_by_member_moment[(member, addr[1])] = value
    for addr, value in reference.leaf_cube.leaf_cells():
        member = addr[0].split("/")[-1]
        assert input_by_member_moment[(member, addr[1])] == value
