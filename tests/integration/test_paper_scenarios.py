"""The paper's Sec. 1 analyst scenarios S1-S4 as executable stories.

* S1 — "What if Tom became a contractor from March onward and became an
  FTE July onward?" (positive changes, a sequence);
* S2 — "What if FTE Lisa performed some work in MA where she is
  classified as PTE?" (location-driven; covered in
  ``test_unordered_and_multivarying.py``, cross-referenced here);
* S3 — "What if whatever structure existed in January continued until
  April and then the structure in April continued through the rest of the
  year?" (P = {Jan, Apr}, forward);
* S4 — "What if Feb's structure continued through April, April's till
  July, and July's through the rest of the year?" (P = {Feb, Apr, Jul},
  forward).
"""

from __future__ import annotations

import pytest

from repro.core.operators import ChangeTuple
from repro.core.perspective import Mode, PerspectiveSet, Semantics
from repro.core.scenario import NegativeScenario, PositiveScenario
from repro.olap.missing import is_missing


class TestS1TomReclassified:
    """Positive scenario: Tom PTE -> Contractor (Mar) -> FTE (Jul)."""

    @pytest.fixture
    def applied(self, example):
        scenario = PositiveScenario(
            "Organization",
            [
                ChangeTuple("Tom", "PTE", "Contractor", "Mar"),
                ChangeTuple("Tom", "Contractor", "FTE", "Jul"),
            ],
            Mode.VISUAL,
        )
        return scenario.apply(example.cube)

    def test_instance_timeline(self, applied):
        instances = {
            i.qualified_name: i.validity.sorted_moments()
            for i in applied.varying_out.instances_of("Tom")
        }
        assert instances == {
            "PTE/Tom": [0, 1],
            "Contractor/Tom": [2, 3, 4, 5],
            "FTE/Tom": list(range(6, 12)),
        }

    def test_salary_follows_the_moves(self, applied, example):
        assert applied.at(
            Organization="Organization/PTE/Tom",
            Location="NY", Time="Feb", Measures="Salary",
        ) == 10.0
        assert applied.at(
            Organization="Organization/Contractor/Tom",
            Location="NY", Time="Apr", Measures="Salary",
        ) == 10.0
        assert is_missing(applied.at(
            Organization="Organization/PTE/Tom",
            Location="NY", Time="Apr", Measures="Salary",
        ))

    def test_impact_on_type_totals(self, applied):
        """The analyst's goal: impact on salary allocation per type."""
        # PTE Q2 loses Tom entirely (he's a contractor Apr-Jun).
        assert is_missing(applied.at(
            Organization="PTE", Location="NY", Time="Qtr2", Measures="Salary",
        )) or applied.at(
            Organization="PTE", Location="NY", Time="Qtr2", Measures="Salary",
        ) != 30.0


class TestS3JanuaryThenApril:
    """P = {Jan, Apr} forward: Joe is FTE (per Jan) through Mar, then
    Contractor (per Apr) for the rest of the year."""

    @pytest.fixture
    def applied(self, example):
        return NegativeScenario(
            "Organization", ["Jan", "Apr"], Semantics.FORWARD, Mode.VISUAL
        ).apply(example.cube)

    def test_joe_under_jan_structure_until_april(self, applied):
        assert applied.at(
            Organization="Organization/FTE/Joe",
            Location="NY", Time="Feb", Measures="Salary",
        ) == 10.0  # actual Feb salary, classified as FTE
        assert applied.at(
            Organization="Organization/FTE/Joe",
            Location="NY", Time="Mar", Measures="Salary",
        ) == 30.0

    def test_joe_under_april_structure_after(self, applied):
        assert applied.at(
            Organization="Organization/Contractor/Joe",
            Location="NY", Time="Jun", Measures="Salary",
        ) == 20.0
        assert is_missing(applied.at(
            Organization="Organization/FTE/Joe",
            Location="NY", Time="Jun", Measures="Salary",
        ))

    def test_pte_joe_gone(self, applied):
        assert "Organization/PTE/Joe" not in applied.validity_out


class TestS4ThreeRanges:
    """P = {Feb, Apr, Jul} forward: three governed ranges."""

    def test_range_boundaries(self, example):
        applied = NegativeScenario(
            "Organization", ["Feb", "Apr", "Jul"], Semantics.FORWARD
        ).apply(example.cube)
        # Feb's structure (PTE/Joe) governs Feb-Mar.
        assert applied.validity_out[
            "Organization/PTE/Joe"
        ].sorted_moments() == [1, 2]
        # Apr's structure (Contractor/Joe) governs Apr-Jun AND Jul onward
        # (Joe is also a contractor at the Jul perspective).  Def. 4.3's
        # Stretch keeps May in the validity set even though no instance
        # exists there — the May *value* is ⊥ via relocate (Def. 4.4).
        assert applied.validity_out[
            "Organization/Contractor/Joe"
        ].sorted_moments() == list(range(3, 12))
        assert is_missing(applied.at(
            Organization="Organization/Contractor/Joe",
            Location="NY", Time="May", Measures="Salary",
        ))

    def test_matches_stretch_construction(self, example):
        """The validity sets equal the Def. 4.3 Stretch computed directly."""
        from repro.core.perspective import phi_member, stretch

        pset = PerspectiveSet.from_names(["Feb", "Apr", "Jul"], example.org)
        for instance, out in phi_member(
            example.org.instances_of("Joe"), pset, Semantics.FORWARD
        ).items():
            expected = stretch(instance.validity, pset) | (
                instance.validity.restrict_before(pset.pmin)
            )
            assert out == expected


class TestS2CrossReference:
    def test_s2_lives_in_unordered_suite(self):
        """S2 (location-driven changes) is exercised in
        tests/integration/test_unordered_and_multivarying.py."""
        import tests.integration.test_unordered_and_multivarying as module

        assert hasattr(module, "TestUnorderedParameter")
