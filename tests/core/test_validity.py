"""Unit and property tests for ValiditySet."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidityError
from repro.validity import ValiditySet

UNIVERSE = 12


def vs(*moments: int, universe: int = UNIVERSE) -> ValiditySet:
    return ValiditySet(moments, universe)


class TestConstruction:
    def test_empty(self):
        empty = ValiditySet.empty(UNIVERSE)
        assert empty.is_empty
        assert len(empty) == 0
        assert not empty

    def test_full(self):
        full = ValiditySet.full(UNIVERSE)
        assert len(full) == UNIVERSE
        assert all(m in full for m in range(UNIVERSE))

    def test_single(self):
        single = ValiditySet.single(3, UNIVERSE)
        assert single.sorted_moments() == [3]

    def test_interval_half_open(self):
        assert ValiditySet.interval(2, 5, UNIVERSE).sorted_moments() == [2, 3, 4]

    def test_interval_unbounded(self):
        assert ValiditySet.interval(9, None, UNIVERSE).sorted_moments() == [9, 10, 11]

    def test_interval_clamps(self):
        assert ValiditySet.interval(-3, 99, UNIVERSE) == ValiditySet.full(UNIVERSE)

    def test_interval_empty_when_degenerate(self):
        assert ValiditySet.interval(5, 5, UNIVERSE).is_empty
        assert ValiditySet.interval(7, 3, UNIVERSE).is_empty

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidityError):
            vs(12)
        with pytest.raises(ValidityError):
            vs(-1)

    def test_non_int_rejected(self):
        with pytest.raises(ValidityError):
            ValiditySet(["Jan"], UNIVERSE)  # type: ignore[list-item]

    def test_negative_universe_rejected(self):
        with pytest.raises(ValidityError):
            ValiditySet((), -1)


class TestAlgebra:
    def test_union(self):
        assert (vs(1, 2) | vs(2, 3)).sorted_moments() == [1, 2, 3]

    def test_intersection(self):
        assert (vs(1, 2, 3) & vs(2, 3, 4)).sorted_moments() == [2, 3]

    def test_difference(self):
        assert (vs(1, 2, 3) - vs(2)).sorted_moments() == [1, 3]

    def test_complement(self):
        assert vs(0, 1, universe=3).complement().sorted_moments() == [2]

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValidityError):
            vs(1) | ValiditySet((1,), 5)

    def test_intersects_and_disjoint(self):
        assert vs(1, 2).intersects(vs(2, 3))
        assert vs(1).is_disjoint(vs(2))

    def test_intersects_moments(self):
        assert vs(3, 4).intersects_moments({4, 9})
        assert not vs(3, 4).intersects_moments({5})

    def test_issubset(self):
        assert vs(1).issubset(vs(1, 2))
        assert not vs(1, 5).issubset(vs(1, 2))


class TestIntervalHelpers:
    def test_restrict_before(self):
        assert vs(1, 4, 7).restrict_before(5).sorted_moments() == [1, 4]

    def test_restrict_from(self):
        assert vs(1, 4, 7).restrict_from(4).sorted_moments() == [4, 7]

    def test_reversed_mirrors(self):
        assert vs(0, 2, universe=5).reversed().sorted_moments() == [2, 4]

    def test_min_max(self):
        assert vs(3, 7).min() == 3
        assert vs(3, 7).max() == 7

    def test_min_of_empty_raises(self):
        with pytest.raises(ValidityError):
            ValiditySet.empty(UNIVERSE).min()


class TestEquality:
    def test_equal_and_hash(self):
        assert vs(1, 2) == vs(2, 1)
        assert hash(vs(1, 2)) == hash(vs(2, 1))

    def test_unequal_universe(self):
        assert ValiditySet((1,), 5) != ValiditySet((1,), 6)

    def test_not_equal_other_type(self):
        assert vs(1) != {1}


moments_strategy = st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1))


@given(a=moments_strategy, b=moments_strategy)
def test_union_is_commutative(a, b):
    left = ValiditySet(a, UNIVERSE) | ValiditySet(b, UNIVERSE)
    right = ValiditySet(b, UNIVERSE) | ValiditySet(a, UNIVERSE)
    assert left == right


@given(a=moments_strategy, b=moments_strategy)
def test_de_morgan(a, b):
    sa, sb = ValiditySet(a, UNIVERSE), ValiditySet(b, UNIVERSE)
    assert (sa | sb).complement() == sa.complement() & sb.complement()


@given(a=moments_strategy)
def test_double_complement_is_identity(a):
    sa = ValiditySet(a, UNIVERSE)
    assert sa.complement().complement() == sa


@given(a=moments_strategy)
def test_double_reverse_is_identity(a):
    sa = ValiditySet(a, UNIVERSE)
    assert sa.reversed().reversed() == sa


@given(a=moments_strategy, cut=st.integers(min_value=0, max_value=UNIVERSE))
def test_before_from_partition(a, cut):
    sa = ValiditySet(a, UNIVERSE)
    before, after = sa.restrict_before(cut), sa.restrict_from(cut)
    assert before | after == sa
    assert before.is_disjoint(after)
