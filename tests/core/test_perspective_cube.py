"""Tests for the chunk-level perspective query engine.

The key check: the chunk engine's relocated rows must agree cell-by-cell
with the semantic scenario engine on the running example.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.merge_graph import VaryingAxisSpec
from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import (
    run_multiple_mdx_simulation,
    run_perspective_query,
)
from repro.core.scenario import NegativeScenario
from repro.errors import QueryError
from repro.olap.missing import is_missing
from repro.storage.array_cube import ChunkedCube


def make_spec(example, chunk_shape=(2, 2, 3, 2)) -> VaryingAxisSpec:
    chunked = ChunkedCube.from_cube(example.cube, chunk_shape=chunk_shape)
    member_of_slot = {}
    validity_of_slot = {}
    org_axis = chunked.axis("Organization")
    for label in org_axis.labels:
        member = label.split("/")[-1]
        member_of_slot[label] = member
        for instance in example.org.instances_of(member):
            if instance.full_path == label:
                validity_of_slot[label] = instance.validity
                break
    return VaryingAxisSpec(
        chunked, "Organization", "Time", member_of_slot, validity_of_slot
    )


@pytest.fixture
def spec(example):
    return make_spec(example)


def month_index(spec, month: str) -> int:
    return spec.param_axis.index(month)


class TestAgainstSemanticEngine:
    @pytest.mark.parametrize(
        "perspectives,semantics",
        [
            (["Jan"], Semantics.STATIC),
            (["Jan"], Semantics.FORWARD),
            (["Feb", "Apr"], Semantics.FORWARD),
            (["Feb", "Apr"], Semantics.STATIC),
            (["Apr"], Semantics.BACKWARD),
            (["Mar"], Semantics.EXTENDED_FORWARD),
        ],
    )
    def test_rows_match_scenario_engine(self, example, spec, perspectives, semantics):
        pset = PerspectiveSet.from_names(perspectives, example.org)
        result = run_perspective_query(spec, ["Joe"], pset, semantics)

        scenario = NegativeScenario("Organization", perspectives, semantics)
        reference = scenario.apply(example.cube)

        schema = example.schema
        loc_axis = spec.cube.axis("Location")
        msr_axis = spec.cube.axis("Measures")
        for label, data in result.rows.items():
            for t, month in enumerate(spec.param_axis.labels):
                for li, location in enumerate(loc_axis.labels):
                    for mi, measure in enumerate(msr_axis.labels):
                        got = data[t, li, mi]
                        expected = reference.leaf_cube.value(
                            schema.address(
                                Organization=label,
                                Location=location,
                                Time=month,
                                Measures=measure,
                            )
                        )
                        if is_missing(expected):
                            assert math.isnan(got), (label, month, location, measure)
                        else:
                            assert got == expected, (label, month, location, measure)

    def test_surviving_instances_match(self, example, spec):
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        assert set(result.rows) == {
            "Organization/PTE/Joe",
            "Organization/Contractor/Joe",
        }

    def test_validity_out_reported(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        assert result.validity_out[
            "Organization/FTE/Joe"
        ].sorted_moments() == list(range(12))


class TestEngineMechanics:
    def test_io_and_memory_reported(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        assert result.chunks_read > 0
        assert result.memory_high_water >= 1
        assert result.io["chunk_reads"] >= result.chunks_read

    def test_pebbling_vs_naive_order_same_rows(self, example, spec):
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        with_pebbling = run_perspective_query(
            spec, ["Joe"], pset, Semantics.FORWARD, use_pebbling=True
        )
        naive = run_perspective_query(
            spec, ["Joe"], pset, Semantics.FORWARD, use_pebbling=False
        )
        assert set(with_pebbling.rows) == set(naive.rows)
        for label in with_pebbling.rows:
            np.testing.assert_allclose(
                with_pebbling.rows[label], naive.rows[label], equal_nan=True
            )

    def test_explicit_plane_order(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        probe = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        reordered = run_perspective_query(
            spec,
            ["Joe"],
            pset,
            Semantics.FORWARD,
            plane_order=list(reversed(probe.plane_order)),
        )
        for label in probe.rows:
            np.testing.assert_allclose(
                probe.rows[label], reordered.rows[label], equal_nan=True
            )

    def test_incomplete_plane_order_rejected(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        with pytest.raises(QueryError):
            run_perspective_query(
                spec, ["Joe"], pset, Semantics.FORWARD, plane_order=[]
            )

    def test_unknown_member_rejected(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        with pytest.raises(QueryError):
            run_perspective_query(spec, ["Nobody"], pset)

    def test_universe_mismatch_rejected(self, example, spec):
        with pytest.raises(QueryError):
            run_perspective_query(spec, ["Joe"], PerspectiveSet([0], 5))

    def test_total_helper(self, example, spec):
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        # FTE/Joe absorbs all of Joe's NY+MA salary and benefits data.
        assert result.total("Organization/FTE/Joe") == pytest.approx(
            10 + 5 + 10 + 5 + 30 + 15 + 20 + 20
        )


class TestMultipleMdxSimulation:
    def test_static_simulation_matches_direct(self, example, spec):
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        direct = run_perspective_query(spec, ["Joe"], pset, Semantics.STATIC)
        simulated = run_multiple_mdx_simulation(
            spec, ["Joe"], pset, Semantics.STATIC
        )
        assert set(direct.rows) == set(simulated.rows)
        for label in direct.rows:
            np.testing.assert_allclose(
                direct.rows[label], simulated.rows[label], equal_nan=True
            )

    def test_simulation_reads_more_chunks(self, example, spec):
        """The paper: direct multi-perspective outperforms the simulation."""
        pset = PerspectiveSet.from_names(["Jan", "Feb", "Mar", "Apr"], example.org)
        direct = run_perspective_query(spec, ["Joe"], pset, Semantics.STATIC)
        spec2 = make_spec(example)
        simulated = run_multiple_mdx_simulation(
            spec2, ["Joe"], pset, Semantics.STATIC
        )
        assert simulated.chunks_read >= direct.chunks_read
