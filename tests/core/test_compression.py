"""Tests for delta-encoded (compressed) perspective cubes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import compress
from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario
from repro.errors import QueryError
from repro.olap.missing import is_missing
from repro.workload.running_example import build_running_example
from repro.workload.workforce import WorkforceConfig, build_workforce


def forward_result(example, perspectives=("Feb", "Apr")):
    scenario = NegativeScenario(
        "Organization", list(perspectives), Semantics.FORWARD, Mode.NON_VISUAL
    )
    return scenario.apply(example.cube)


class TestRoundTrip:
    def test_materialize_equals_output(self, example):
        result = forward_result(example)
        compressed = compress(example.cube, result)
        assert compressed.materialize().leaf_equal(result.leaf_cube)

    def test_point_reads_match(self, example):
        result = forward_result(example)
        compressed = compress(example.cube, result)
        for addr, _ in example.cube.leaf_cells():
            expected = result.leaf_cube.value(addr)
            got = compressed.value(addr)
            assert is_missing(got) == is_missing(expected)
            if not is_missing(expected):
                assert got == expected

    def test_override_reads(self, example):
        result = forward_result(example)
        compressed = compress(example.cube, result)
        # (PTE/Joe, Mar) is an override: ⊥ in base, 30 in output.
        addr = example.schema.address(
            Organization="Organization/PTE/Joe",
            Location="NY",
            Time="Mar",
            Measures="Salary",
        )
        assert addr in compressed.overrides
        assert compressed.value(addr) == 30.0

    def test_deletion_reads(self, example):
        result = forward_result(example)
        compressed = compress(example.cube, result)
        # (FTE/Joe, Jan) is deleted: FTE/Joe does not survive P={Feb, Apr}.
        addr = example.schema.address(
            Organization="Organization/FTE/Joe",
            Location="NY",
            Time="Jan",
            Measures="Salary",
        )
        assert addr in compressed.deletions
        assert is_missing(compressed.value(addr))

    def test_at_keyword_form(self, example):
        compressed = compress(example.cube, forward_result(example))
        assert compressed.at(
            Organization="Organization/PTE/Joe",
            Location="NY",
            Time="Mar",
            Measures="Salary",
        ) == 30.0


class TestStatistics:
    def test_delta_much_smaller_than_cube(self):
        """With ~8% of employees changing, the delta stays a small fraction."""
        workforce = build_workforce(
            WorkforceConfig(
                n_employees=100, n_departments=8, n_changing=8, seed=3
            )
        )
        scenario = NegativeScenario(
            "Department", ["Jan"], Semantics.FORWARD, Mode.NON_VISUAL
        )
        result = scenario.apply(workforce.cube)
        compressed = compress(workforce.cube, result)
        assert 0.0 < compressed.compression_ratio < 0.35

    def test_identity_scenario_compresses_to_nothing(self, example):
        """Static P covering every instance changes nothing: empty delta."""
        scenario = NegativeScenario(
            "Organization",
            ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
             "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"],
            Semantics.STATIC,
        )
        result = scenario.apply(example.cube)
        compressed = compress(example.cube, result)
        assert compressed.delta_cells == 0
        assert compressed.compression_ratio == 0.0

    def test_validity_out_carried(self, example):
        result = forward_result(example)
        compressed = compress(example.cube, result)
        assert compressed.validity_out == result.validity_out

    def test_schema_mismatch_rejected(self, example):
        other = build_running_example()
        with pytest.raises(QueryError):
            compress(example.cube, other.cube)


@settings(max_examples=20, deadline=None)
@given(
    p_moments=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
    semantics=st.sampled_from(
        [Semantics.STATIC, Semantics.FORWARD, Semantics.BACKWARD]
    ),
)
def test_compression_round_trip_property(p_moments, semantics):
    """compress + materialize is lossless for any perspective query."""
    example = build_running_example()
    months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
              "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
    scenario = NegativeScenario(
        "Organization", [months[m] for m in sorted(p_moments)], semantics
    )
    result = scenario.apply(example.cube)
    compressed = compress(example.cube, result)
    assert compressed.materialize().leaf_equal(result.leaf_cube)
