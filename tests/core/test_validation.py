"""Tests for the warehouse consistency checker."""

from __future__ import annotations

import pytest

from repro.core.validation import check_warehouse
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


def codes(findings):
    return sorted(f.code for f in findings)


class TestCleanWarehouse:
    def test_running_example_is_consistent(self, warehouse):
        assert check_warehouse(warehouse) == []

    def test_workforce_is_consistent(self):
        from repro.workload.workforce import WorkforceConfig, build_workforce

        workforce = build_workforce(
            WorkforceConfig(n_employees=30, n_departments=4, n_changing=4, seed=3)
        )
        assert check_warehouse(workforce.warehouse) == []


class TestViolations:
    def test_meaningless_cell_detected(self, warehouse, example):
        # FTE/Joe is only valid in Jan; plant data in Feb.
        example.cube.set(
            99.0,
            Organization="Organization/FTE/Joe",
            Location="NY",
            Time="Feb",
            Measures="Salary",
        )
        findings = check_warehouse(warehouse)
        assert "meaningless-cell" in codes(findings)
        bad = next(f for f in findings if f.code == "meaningless-cell")
        assert bad.address is not None
        assert "Feb" in bad.message

    def test_unknown_instance_detected(self, warehouse, example):
        # Joe never appears under a made-up path component ordering.
        example.cube.set(
            1.0,
            Organization="Organization/Contractor/Lisa",
            Location="NY",
            Time="Jan",
            Measures="Salary",
        )
        findings = check_warehouse(warehouse)
        assert "unknown-instance" in codes(findings)

    def test_unknown_coordinate_detected(self, warehouse, example):
        # set_value() rejects unknown coordinates, so simulate external
        # corruption (e.g. a hand-edited cells.json) directly.
        example.cube._leaf_cells[
            ("Organization/FTE/Lisa", "Atlantis", "Jan", "Salary")
        ] = 5.0
        findings = check_warehouse(warehouse)
        assert "unknown-coordinate" in codes(findings)

    def test_orphan_named_set_detected(self, warehouse, example):
        warehouse.define_named_set("Ghosts", ["Lisa"])
        # Simulate drift: replace the set with one naming a missing member.
        from repro.warehouse import NamedSet

        warehouse._named_sets["Ghosts"] = NamedSet("Ghosts", ("Casper",))
        findings = check_warehouse(warehouse)
        assert "orphan-named-set" in codes(findings)

    def test_multiple_findings_reported(self, warehouse, example):
        example.cube.set(
            99.0,
            Organization="Organization/FTE/Joe",
            Location="NY",
            Time="Feb",
            Measures="Salary",
        )
        example.cube._leaf_cells[
            ("Organization/FTE/Lisa", "Atlantis", "Jan", "Salary")
        ] = 5.0
        findings = check_warehouse(warehouse)
        assert len(findings) >= 2
