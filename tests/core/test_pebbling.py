"""Tests for graph pebbling (Sec. 5.2), anchored on the Fig. 9 example."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge_graph import fig8_example_graph
from repro.core.pebbling import (
    node_cost,
    optimal_pebbles,
    pebble,
    pebbles_for_order,
)


@pytest.fixture
def fig9() -> nx.Graph:
    return fig8_example_graph()


class TestFig9Golden:
    def test_edges_match_paper(self, fig9):
        assert set(map(frozenset, fig9.edges)) == {
            frozenset({1, 5}),
            frozenset({1, 9}),
            frozenset({1, 10}),
            frozenset({5, 3}),
            frozenset({10, 7}),
            frozenset({9, 6}),
        }

    def test_node_costs_match_paper(self, fig9):
        """cost(1)=cost(3)=cost(6)=cost(7)=1, cost(5)=cost(9)=cost(10)=0."""
        expected = {1: 1, 3: 1, 6: 1, 7: 1, 5: 0, 9: 0, 10: 0}
        assert {n: node_cost(fig9, n) for n in fig9.nodes} == expected

    def test_heuristic_uses_three_pebbles(self, fig9):
        result = pebble(fig9)
        assert result.max_pebbles == 3
        assert sorted(result.order) == sorted(fig9.nodes)

    def test_three_is_optimal(self, fig9):
        assert optimal_pebbles(fig9) == 3

    def test_without_node_7_two_suffice(self, fig9):
        """The paper: removing node 7 makes the graph 2-pebbleable."""
        fig9.remove_node(7)
        assert optimal_pebbles(fig9) == 2

    def test_naive_sequential_order_needs_more(self, fig9):
        """Reading chunks 1..10 in file order: nothing frees until chunk 10
        arrives, so all four of 1, 5, 9, 10 pile up (plus 6 and 7 pending)."""
        naive = pebbles_for_order(fig9, [1, 3, 5, 6, 7, 9, 10])
        assert naive > 3
        assert naive >= pebble(fig9).max_pebbles

    def test_paper_discussed_order(self, fig9):
        """The order 3, 5, 1, 9, 6, 10, 7 keeps at most three chunks."""
        assert pebbles_for_order(fig9, [3, 5, 1, 9, 6, 10, 7]) == 3


class TestStar:
    def test_star_needs_two_pebbles(self):
        """The paper: a star with centre x can be pebbled with two pebbles
        (one fewer than max-degree + 1)."""
        star = nx.star_graph(6)  # centre 0, leaves 1..6
        assert optimal_pebbles(star) == 2
        assert pebble(star).max_pebbles == 2


class TestEdgeCases:
    def test_empty_graph(self):
        graph = nx.Graph()
        assert pebble(graph).max_pebbles == 0
        assert optimal_pebbles(graph) == 0

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("a")
        result = pebble(graph)
        assert result.max_pebbles == 1
        assert result.order == ["a"]

    def test_single_edge(self):
        graph = nx.path_graph(2)
        assert pebble(graph).max_pebbles == 2

    def test_path_graph_two_pebbles(self):
        graph = nx.path_graph(8)
        assert pebble(graph).max_pebbles == 2
        assert optimal_pebbles(graph) == 2

    def test_disconnected_components(self):
        graph = nx.union(nx.path_graph(3), nx.path_graph(3, create_using=None), rename=("a", "b"))
        result = pebble(graph)
        assert sorted(result.order) == sorted(graph.nodes)
        assert result.max_pebbles == 2

    def test_clique_needs_full_size(self):
        clique = nx.complete_graph(4)
        assert optimal_pebbles(clique) == 4
        assert pebble(clique).max_pebbles == 4

    def test_order_missing_nodes_rejected(self, fig9):
        with pytest.raises(ValueError):
            pebbles_for_order(fig9, [1, 3])

    def test_optimal_rejects_big_graphs(self):
        with pytest.raises(ValueError):
            optimal_pebbles(nx.path_graph(40))

    def test_events_trace_is_consistent(self, fig9):
        result = pebble(fig9)
        placed = [n for _, kind, n in result.events if kind == "place"]
        removed = [n for _, kind, n in result.events if kind == "remove"]
        assert placed == result.order
        assert set(removed) <= set(placed)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=9),
    edge_seed=st.integers(min_value=0, max_value=10_000),
)
def test_heuristic_pebbles_every_node_once(n, edge_seed):
    """Lemma 5.2: the heuristic eventually pebbles every node."""
    graph = nx.gnp_random_graph(n, 0.4, seed=edge_seed)
    result = pebble(graph)
    assert sorted(result.order) == sorted(graph.nodes)
    assert len(result.order) == len(set(result.order))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    edge_seed=st.integers(min_value=0, max_value=10_000),
)
def test_heuristic_at_least_optimal_and_optimal_bounded(n, edge_seed):
    graph = nx.gnp_random_graph(n, 0.4, seed=edge_seed)
    optimum = optimal_pebbles(graph)
    heuristic = pebble(graph).max_pebbles
    assert heuristic >= optimum
    if graph.number_of_edges():
        max_degree = max(d for _, d in graph.degree)
        # Paper: the optimum needs at most max degree + 1 pebbles.
        assert optimum <= max_degree + 1


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    edge_seed=st.integers(min_value=0, max_value=10_000),
)
def test_fixed_orders_never_beat_the_optimum(n, edge_seed):
    graph = nx.gnp_random_graph(n, 0.4, seed=edge_seed)
    naive = pebbles_for_order(graph, sorted(graph.nodes))
    heuristic_order = pebble(graph).order
    assert naive >= optimal_pebbles(graph)
    assert pebbles_for_order(graph, heuristic_order) >= optimal_pebbles(graph)
