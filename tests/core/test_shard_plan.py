"""plan_axis_shards: determinism, co-residency, coverage, range packing."""

from __future__ import annotations

import pytest

from repro.core.merge_graph import ShardPlan, plan_axis_shards
from repro.errors import QueryError


def _slots(n_members: int, instances: int = 1, prefix: str = "m") -> dict:
    return {
        f"{prefix}{i:03d}": [
            f"Dim/cat{i % 4}/{prefix}{i:03d}-{k}" for k in range(instances)
        ]
        for i in range(n_members)
    }


class TestPlanning:
    def test_deterministic(self):
        slots = _slots(40, instances=2)
        a = plan_axis_shards("Dim", slots, 4, chunk=4)
        b = plan_axis_shards("Dim", slots, 4, chunk=4)
        assert a.shards == b.shards
        assert dict(a.member_shard) == dict(b.member_shard)
        assert dict(a.label_shard) == dict(b.label_shard)

    def test_every_member_covered_exactly_once(self):
        slots = _slots(33, instances=3)
        plan = plan_axis_shards("Dim", slots, 5, chunk=4)
        seen: list[str] = []
        for owned in plan.shards:
            seen.extend(owned)
        assert sorted(seen) == sorted(slots)
        for member, labels in slots.items():
            shard = plan.member_shard[member]
            for label in labels:
                assert plan.label_shard[label] == shard

    def test_member_spanning_chunks_is_co_resident(self):
        # m1's slots land in chunks 0 and 2 (chunk=2, 3 members x 2 slots):
        # all of m1 — and via the merge graph every member sharing those
        # chunks — must end up on one shard.
        slots = {
            "m0": ["D/a/m0-0", "D/a/m0-1"],
            "m1": ["D/a/m1-0", "D/b/m1-1", "D/b/m1-2"],
            "m2": ["D/b/m2-0"],
        }
        plan = plan_axis_shards("D", slots, 3, chunk=2)
        shard_of = plan.member_shard
        # slots: m0-0 m0-1 | m1-0 m1-1 | m1-2 m2-0  (chunks 0,1,2)
        # m1 occupies chunks 1,2 -> chunk 2 joins chunk 1 -> m2 rides along
        assert shard_of["m1"] == shard_of["m2"]
        for labels, member in ((slots["m1"], "m1"), (slots["m2"], "m2")):
            for label in labels:
                assert plan.label_shard[label] == shard_of[member]

    def test_range_packing_is_contiguous_in_axis_order(self):
        slots = _slots(64)
        plan = plan_axis_shards("Dim", slots, 4, chunk=4)
        order = {member: i for i, member in enumerate(slots)}
        boundaries = []
        for owned in plan.shards:
            assert owned, "64 singleton groups must fill every shard"
            ranks = sorted(order[m] for m in owned)
            # contiguous: the shard owns one unbroken run of the axis
            assert ranks == list(range(ranks[0], ranks[-1] + 1))
            boundaries.append((ranks[0], ranks[-1]))
        assert boundaries == sorted(boundaries)

    def test_balanced_within_group_granularity(self):
        slots = _slots(80)
        plan = plan_axis_shards("Dim", slots, 4, chunk=4)
        loads = [
            sum(len(slots[m]) for m in owned) for owned in plan.shards
        ]
        assert max(loads) - min(loads) <= 4  # one chunk of slack

    def test_single_shard_owns_everything(self):
        slots = _slots(10, instances=2)
        plan = plan_axis_shards("Dim", slots, 1, chunk=8)
        assert len(plan.shards) == 1
        assert sorted(plan.shards[0]) == sorted(slots)


class TestShardOfCoordinate:
    @pytest.fixture
    def plan(self) -> ShardPlan:
        return plan_axis_shards("Dim", _slots(16, instances=2), 2, chunk=2)

    def test_resolves_slot_label(self, plan):
        assert plan.shard_of_coordinate("Dim/cat1/m001-0") == plan.member_shard["m001"]

    def test_resolves_bare_member_name(self, plan):
        assert plan.shard_of_coordinate("m005") == plan.member_shard["m005"]

    def test_resolves_member_path_by_last_component(self, plan):
        assert (
            plan.shard_of_coordinate("Dim/whatever/m009")
            == plan.member_shard["m009"]
        )

    def test_root_and_categories_span(self, plan):
        assert plan.shard_of_coordinate("Dim") is None
        assert plan.shard_of_coordinate("Dim/cat1") is None


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(QueryError):
            plan_axis_shards("Dim", _slots(4), 0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(QueryError):
            plan_axis_shards("Dim", _slots(4), 2, chunk=0)
