"""Tests for scenario application and the WhatIfCube facade (Theorem 4.1)."""

from __future__ import annotations

import pytest

from repro.core.operators import ChangeTuple, relocate
from repro.core.perspective import Mode, PerspectiveSet, Semantics, phi_member
from repro.core.scenario import (
    NegativeScenario,
    PositiveScenario,
    apply_scenarios,
)
from repro.errors import QueryError
from repro.olap.missing import is_missing

JOE_FTE = "Organization/FTE/Joe"
JOE_PTE = "Organization/PTE/Joe"
JOE_CONTR = "Organization/Contractor/Joe"


def val(result, org, month, measure="Salary", location="NY"):
    return result.at(
        Organization=org, Location=location, Time=month, Measures=measure
    )


class TestNegativeScenario:
    def test_static_keeps_original_values(self, example):
        sc = NegativeScenario("Organization", ["Jan"], Semantics.STATIC)
        out = sc.apply(example.cube)
        assert val(out, JOE_FTE, "Jan") == 10.0
        # PTE/Joe and Contractor/Joe rows are removed (Sec. 3.3 example).
        assert is_missing(val(out, JOE_PTE, "Feb"))
        assert is_missing(val(out, JOE_CONTR, "Mar"))
        assert JOE_FTE in out.validity_out
        assert JOE_PTE not in out.validity_out

    def test_forward_single_perspective_jan(self, example):
        """Sec. 3.3: P={Jan} forward gives FTE/Joe the values of PTE/Joe
        for Feb and Contractor/Joe for Mar, Apr, Jun, ..."""
        sc = NegativeScenario("Organization", ["Jan"], Semantics.FORWARD)
        out = sc.apply(example.cube)
        assert val(out, JOE_FTE, "Jan") == 10.0
        assert val(out, JOE_FTE, "Feb") == 10.0  # from PTE/Joe
        assert val(out, JOE_FTE, "Mar") == 30.0  # from Contractor/Joe
        assert is_missing(val(out, JOE_FTE, "May"))  # no instance in May
        assert is_missing(val(out, JOE_PTE, "Feb"))
        assert out.validity_out[JOE_FTE].sorted_moments() == list(range(12))

    def test_forward_multi_perspective_fig4(self, example):
        sc = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD, Mode.VISUAL
        )
        out = sc.apply(example.cube)
        assert val(out, JOE_PTE, "Feb") == 10.0
        assert val(out, JOE_PTE, "Mar") == 30.0
        assert is_missing(val(out, JOE_PTE, "Jan"))
        assert val(out, JOE_CONTR, "Apr") == 20.0
        assert is_missing(val(out, JOE_CONTR, "Mar"))
        assert is_missing(val(out, JOE_FTE, "Jan"))

    def test_visual_mode_reaggregates(self, example):
        sc = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD, Mode.VISUAL
        )
        out = sc.apply(example.cube)
        # PTE at Qtr1 = Tom (10+10+10) + PTE/Joe (Feb 10, Mar 30) = 70
        assert val(out, "PTE", "Qtr1") == 70.0
        # FTE at Qtr1 = Lisa only = 30 (FTE/Joe dropped)
        assert val(out, "FTE", "Qtr1") == 30.0

    def test_non_visual_mode_keeps_input_aggregates(self, example):
        sc = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD, Mode.NON_VISUAL
        )
        out = sc.apply(example.cube)
        # Input-cube aggregates: PTE Qtr1 = Tom 30 + PTE/Joe Feb 10 = 40.
        assert val(out, "PTE", "Qtr1") == 40.0
        # Leaf values still reflect the hypothetical structure.
        assert val(out, JOE_PTE, "Mar") == 30.0

    def test_backward_semantics(self, example):
        sc = NegativeScenario("Organization", ["Apr"], Semantics.BACKWARD)
        out = sc.apply(example.cube)
        # Contractor/Joe (valid at Apr) is imposed on the past: it absorbs
        # Jan (from FTE/Joe), Feb (PTE/Joe), Mar (itself).
        assert val(out, JOE_CONTR, "Jan") == 10.0
        assert val(out, JOE_CONTR, "Feb") == 10.0
        assert val(out, JOE_CONTR, "Mar") == 30.0
        assert val(out, JOE_CONTR, "Apr") == 20.0
        # Backward keeps post-Pmax original moments of the instance.
        assert val(out, JOE_CONTR, "Jun") == 20.0

    def test_empty_perspectives_rejected(self, example):
        with pytest.raises(QueryError):
            NegativeScenario("Organization", []).apply(example.cube)

    def test_non_varying_dimension_rejected(self, example):
        with pytest.raises(Exception):
            NegativeScenario("Location", ["Jan"]).apply(example.cube)

    def test_statics_unaffected_by_perspectives(self, example):
        sc = NegativeScenario("Organization", ["Feb"], Semantics.FORWARD)
        out = sc.apply(example.cube)
        for month in ("Jan", "Feb", "Jun"):
            assert val(out, "Organization/FTE/Lisa", month) == 10.0
            assert val(out, "Organization/PTE/Tom", month) == 10.0

    def test_matches_manual_algebra_composition(self, example):
        """Theorem 4.1: scenario application == Φ then ρ composition."""
        sc = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD, Mode.NON_VISUAL
        )
        out = sc.apply(example.cube)
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        validity = {}
        for member in ("Joe", "Lisa", "Tom", "Jane"):
            for inst, vs in phi_member(
                example.org.instances_of(member), pset, Semantics.FORWARD
            ).items():
                validity[inst.full_path] = vs
        manual = relocate(example.cube, "Organization", validity)
        assert out.leaf_cube.leaf_equal(manual)


class TestPositiveScenario:
    def test_split_visual(self, example):
        sc = PositiveScenario(
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
            Mode.VISUAL,
        )
        out = sc.apply(example.cube)
        assert val(out, "Organization/PTE/Lisa", "Apr") == 10.0
        assert is_missing(val(out, "Organization/FTE/Lisa", "Apr"))
        # Visual aggregates move with the data: Tom (3 x 10) + Lisa's
        # relocated Apr-Jun salaries (3 x 10).
        assert val(out, "PTE", "Qtr2") == 60.0
        assert out.varying_out is not None
        names = {
            i.qualified_name for i in out.varying_out.instances_of("Lisa")
        }
        assert names == {"FTE/Lisa", "PTE/Lisa"}

    def test_split_non_visual_keeps_aggregates(self, example):
        cube = example.cube.copy()
        q2 = cube.schema.address(
            Organization="PTE", Location="NY", Time="Qtr2", Measures="Salary"
        )
        cube.materialize_derived([q2])
        sc = PositiveScenario(
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
            Mode.NON_VISUAL,
        )
        out = sc.apply(cube)
        assert out.effective_value(q2) == 30.0  # Tom only, from the input

    def test_empty_changes_rejected(self, example):
        with pytest.raises(QueryError):
            PositiveScenario("Organization", []).apply(example.cube)

    def test_validity_out_covers_statics(self, example):
        sc = PositiveScenario(
            "Organization", [ChangeTuple("Lisa", "FTE", "PTE", "Apr")]
        )
        out = sc.apply(example.cube)
        assert "Organization/PTE/Tom" in out.validity_out
        assert "Organization/PTE/Lisa" in out.validity_out


class TestScenarioPipelines:
    def test_negative_then_positive(self, example):
        """A query can carry both scenario kinds (Sec. 3.2)."""
        out = apply_scenarios(
            example.cube,
            [
                NegativeScenario(
                    "Organization", ["Jan"], Semantics.FORWARD
                ),
                PositiveScenario(
                    "Organization",
                    [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
                ),
            ],
        )
        # Joe's entire year lives under FTE/Joe (forward from Jan)...
        assert val(out, JOE_FTE, "Mar") == 30.0
        # ...and Lisa moved to PTE from Apr.
        assert val(out, "Organization/PTE/Lisa", "Apr") == 10.0

    def test_positive_then_negative_uses_hypothetical_structure(self, example):
        out = apply_scenarios(
            example.cube,
            [
                PositiveScenario(
                    "Organization",
                    [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
                ),
                NegativeScenario(
                    "Organization", ["Jan"], Semantics.FORWARD
                ),
            ],
        )
        # Forward-from-Jan now negates the hypothetical change too: Lisa's
        # Apr salary returns to FTE/Lisa.
        assert val(out, "Organization/FTE/Lisa", "Apr") == 10.0
        assert is_missing(val(out, "Organization/PTE/Lisa", "Apr"))

    def test_empty_pipeline_rejected(self, example):
        with pytest.raises(QueryError):
            apply_scenarios(example.cube, [])


class TestWhatIfCubeFacade:
    def test_value_aliases(self, example):
        out = NegativeScenario(
            "Organization", ["Jan"], Semantics.STATIC
        ).apply(example.cube)
        addr = example.schema.address(
            Organization=JOE_FTE, Location="NY", Time="Jan", Measures="Salary"
        )
        assert out.value(addr) == out.effective_value(addr) == 10.0

    def test_as_cube_returns_leaf_cube(self, example):
        out = NegativeScenario(
            "Organization", ["Jan"], Semantics.STATIC
        ).apply(example.cube)
        assert out.as_cube() is out.leaf_cube

    def test_schema_passthrough(self, example):
        out = NegativeScenario(
            "Organization", ["Jan"], Semantics.STATIC
        ).apply(example.cube)
        assert out.schema is example.schema
