"""Tests for delta aggregation over perspective cubes.

The ground truth: apply the visual scenario on the semantic cube and roll
up; the delta-adjusted chunk-level group-by must match cell for cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta_aggregate import adjusted_group_by, original_rows
from repro.core.merge_graph import VaryingAxisSpec
from repro.core.perspective import Mode, PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.core.scenario import NegativeScenario
from repro.errors import QueryError
from repro.storage.array_cube import ChunkedCube
from repro.storage.cube_compute import compute_group_bys


@pytest.fixture
def spec(example) -> VaryingAxisSpec:
    chunked = ChunkedCube.from_cube(example.cube, chunk_shape=(2, 2, 3, 2))
    member_of, validity = {}, {}
    for label in chunked.axis("Organization").labels:
        member = label.split("/")[-1]
        member_of[label] = member
        for instance in example.org.instances_of(member):
            if instance.full_path == label:
                validity[label] = instance.validity
    return VaryingAxisSpec(chunked, "Organization", "Time", member_of, validity)


def reference_rollup(example, perspectives, dims_axes, spec):
    """Visual scenario on the semantic cube, rolled up over axis labels."""
    scenario = NegativeScenario(
        "Organization", perspectives, Semantics.FORWARD, Mode.VISUAL
    )
    whatif = scenario.apply(example.cube)
    axes = spec.cube.axes
    shape = tuple(len(axes[d]) for d in dims_axes)
    expected = np.full(shape, np.nan)
    for addr, value in whatif.leaf_cube.leaf_cells():
        position = tuple(
            axes[d].index(addr[d]) for d in dims_axes
        )
        current = expected[position]
        expected[position] = value if np.isnan(current) else current + value
    return expected


class TestOriginalRows:
    def test_rows_hold_stored_values(self, example, spec):
        rows = original_rows(spec, ["Joe"])
        assert set(rows) == {
            "Organization/FTE/Joe",
            "Organization/PTE/Joe",
            "Organization/Contractor/Joe",
        }
        # Contractor/Joe at Mar, NY, Salary = 30.
        data = rows["Organization/Contractor/Joe"]
        t = spec.param_axis.index("Mar")
        li = spec.cube.axes[1].index("NY")
        mi = spec.cube.axes[3].index("Salary")
        assert data[t, li, mi] == 30.0

    def test_invalid_moments_stay_missing(self, example, spec):
        rows = original_rows(spec, ["Joe"])
        data = rows["Organization/Contractor/Joe"]
        t_may = spec.param_axis.index("May")
        assert np.isnan(data[t_may]).all()


class TestAdjustedGroupBy:
    @pytest.mark.parametrize(
        "dims",
        [
            (1, 2),      # Location x Time (varying axis aggregated away)
            (0, 2),      # Organization x Time (varying axis retained)
            (2,),        # Time alone
            (0, 1, 2, 3),  # everything (the relocated base itself)
        ],
    )
    def test_matches_semantic_visual_rollup(self, example, spec, dims):
        perspectives = ["Feb", "Apr"]
        pset = PerspectiveSet.from_names(perspectives, example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        adjusted = adjusted_group_by(spec, result, ["Joe"], dims)
        expected = reference_rollup(example, perspectives, dims, spec)
        np.testing.assert_allclose(adjusted.data, expected, equal_nan=True)

    def test_cached_base_reused(self, example, spec):
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        dims = (1, 2)
        base = compute_group_bys(spec.cube.store, [dims])[dims]
        adjusted = adjusted_group_by(spec, result, ["Joe"], dims, base=base)
        expected = reference_rollup(example, ["Feb", "Apr"], dims, spec)
        np.testing.assert_allclose(adjusted.data, expected, equal_nan=True)

    def test_wrong_cached_dims_rejected(self, example, spec):
        pset = PerspectiveSet.from_names(["Feb"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        base = compute_group_bys(spec.cube.store, [(2,)])[(2,)]
        with pytest.raises(QueryError):
            adjusted_group_by(spec, result, ["Joe"], (1, 2), base=base)

    def test_base_without_counts_rejected(self, example, spec):
        from repro.storage.cube_compute import GroupByResult

        pset = PerspectiveSet.from_names(["Feb"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)
        bare = GroupByResult((2,), np.zeros(12), 1, counts=None)
        with pytest.raises(QueryError, match="counts"):
            adjusted_group_by(spec, result, ["Joe"], (2,), base=bare)

    def test_random_perspectives_property(self, example, spec):
        """Delta adjustment == semantic visual rollup for random P and dims."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        months = list(spec.param_axis.labels)

        @settings(max_examples=15, deadline=None)
        @given(
            p_moments=st.sets(
                st.integers(min_value=0, max_value=11), min_size=1, max_size=3
            ),
            dims=st.sampled_from([(1, 2), (0, 2), (2, 3), (0, 1, 2, 3)]),
        )
        def run(p_moments, dims):
            perspectives = [months[m] for m in sorted(p_moments)]
            pset = PerspectiveSet.from_names(perspectives, example.org)
            result = run_perspective_query(
                spec, ["Joe"], pset, Semantics.FORWARD
            )
            adjusted = adjusted_group_by(spec, result, ["Joe"], dims)
            expected = reference_rollup(example, perspectives, dims, spec)
            np.testing.assert_allclose(adjusted.data, expected, equal_nan=True)

        run()

    def test_dropped_member_cells_become_missing(self, example, spec):
        """Static P={Jan} drops PTE/Joe and Contractor/Joe entirely; their
        moments' totals must revert to the colleagues' values only."""
        pset = PerspectiveSet.from_names(["Jan"], example.org)
        result = run_perspective_query(spec, ["Joe"], pset, Semantics.STATIC)
        dims = (2,)
        adjusted = adjusted_group_by(spec, result, ["Joe"], dims)
        t_mar = spec.param_axis.index("Mar")
        # Mar total without Joe's 30+15: Lisa 10 + Tom 10 + Jane 10 +
        # benefits 2+2 = 34.
        assert adjusted.data[t_mar] == pytest.approx(34.0)
