"""Tests for the algebra operators σ, ρ, S, E (Sec. 4)."""

from __future__ import annotations

import pytest

from repro.core.operators import ChangeTuple, evaluate, relocate, select, split
from repro.core.perspective import PerspectiveSet, Semantics, phi_member
from repro.core.predicates import (
    and_,
    descendant_of,
    member_equals,
    member_in,
    not_,
    or_,
    validity_intersects,
    value_predicate,
)
from repro.errors import InvalidChangeError, QueryError
from repro.olap.missing import is_missing
from repro.validity import ValiditySet

JOE = {
    "FTE": "Organization/FTE/Joe",
    "PTE": "Organization/PTE/Joe",
    "CONTR": "Organization/Contractor/Joe",
}


def salary(cube, org, month, location="NY"):
    return cube.effective_value(
        cube.schema.address(
            Organization=org, Location=location, Time=month, Measures="Salary"
        )
    )


class TestSelection:
    def test_member_equals_keeps_all_instances(self, example):
        out = select(example.cube, "Organization", member_equals("Joe"))
        assert salary(out, JOE["FTE"], "Jan") == 10.0
        assert salary(out, JOE["PTE"], "Feb") == 10.0
        assert is_missing(
            salary(out, "Organization/FTE/Lisa", "Jan")
        )

    def test_descendant_of(self, example):
        out = select(example.cube, "Organization", descendant_of("FTE"))
        assert salary(out, "Organization/FTE/Lisa", "Jan") == 10.0
        assert is_missing(salary(out, "Organization/PTE/Tom", "Jan"))
        # only FTE/Joe survives among Joe's instances
        assert salary(out, JOE["FTE"], "Jan") == 10.0
        assert is_missing(salary(out, JOE["PTE"], "Feb"))

    def test_validity_intersects(self, example):
        # Instances valid in Feb or Apr: PTE/Joe, Contractor/Joe, statics.
        out = select(example.cube, "Organization", validity_intersects({1, 3}))
        assert is_missing(salary(out, JOE["FTE"], "Jan"))
        assert salary(out, JOE["PTE"], "Feb") == 10.0
        assert salary(out, "Organization/FTE/Lisa", "Jan") == 10.0

    def test_value_predicate(self, example):
        # Members with some NY salary > 25 in March: only Joe (30 at Mar).
        pred = value_predicate(
            {"Location": "NY", "Time": "Mar", "Measures": "Salary"}, ">", 25
        )
        out = select(example.cube, "Organization", pred)
        used = {c.split("/")[-1] for c in out.coordinates_used("Organization")}
        assert used == {"Joe"}

    def test_value_predicate_bad_relop(self):
        with pytest.raises(QueryError):
            value_predicate({}, "~", 1)

    def test_value_predicate_pinning_selection_dim_rejected(self, example):
        pred = value_predicate({"Organization": "FTE"}, ">", 1)
        with pytest.raises(QueryError):
            select(example.cube, "Organization", pred)

    def test_combinators(self, example):
        pred = and_(
            or_(member_equals("Joe"), member_equals("Lisa")),
            not_(descendant_of("Contractor")),
        )
        out = select(example.cube, "Organization", pred)
        used = set(out.coordinates_used("Organization"))
        assert JOE["CONTR"] not in used
        assert JOE["FTE"] in used
        assert "Organization/FTE/Lisa" in used

    def test_member_in(self, example):
        out = select(example.cube, "Organization", member_in({"Tom", "Jane"}))
        used = {c.split("/")[-1] for c in out.coordinates_used("Organization")}
        assert used == {"Tom", "Jane"}

    def test_selection_preserves_input(self, example):
        before = example.cube.n_leaf_cells
        select(example.cube, "Organization", member_equals("Joe"))
        assert example.cube.n_leaf_cells == before


class TestRelocate:
    def test_identity_relocation(self, example):
        """ρ with the input validity sets reproduces the input leaf cells."""
        validity = {
            inst.full_path: inst.validity
            for member in ("Joe", "Lisa", "Tom", "Jane")
            for inst in example.org.instances_of(member)
        }
        out = relocate(example.cube, "Organization", validity)
        assert out.leaf_equal(example.cube)

    def test_forward_relocation_moves_values(self, example):
        pset = PerspectiveSet.from_names(["Feb", "Apr"], example.org)
        validity = {}
        for member in ("Joe", "Lisa", "Tom", "Jane"):
            moved = phi_member(
                example.org.instances_of(member), pset, Semantics.FORWARD
            )
            validity.update(
                {inst.full_path: vs for inst, vs in moved.items()}
            )
        out = relocate(example.cube, "Organization", validity)
        # (PTE/Joe, Mar) inherits 30 from (Contractor/Joe, Mar)
        assert salary(out, JOE["PTE"], "Mar") == 30.0
        assert is_missing(salary(out, JOE["CONTR"], "Mar"))
        # (PTE/Joe, Jan) stays ⊥: PTE/Joe was not valid in Jan (paper note)
        assert is_missing(salary(out, JOE["PTE"], "Jan"))

    def test_relocate_carries_stored_derived(self, example):
        cube = example.cube.copy()
        addr = cube.schema.address(
            Organization="FTE", Location="NY", Time="Qtr1", Measures="Salary"
        )
        cube.set_value(addr, 123.0)
        out = relocate(
            cube,
            "Organization",
            {"Organization/FTE/Lisa": ValiditySet.full(12)},
        )
        assert out.value(addr) == 123.0

    def test_relocate_moves_all_other_dimensions(self, example):
        """Values move for every ē (Location, Measures) tuple, not just one."""
        pset = PerspectiveSet.from_names(["Feb"], example.org)
        moved = phi_member(
            example.org.instances_of("Joe"), pset, Semantics.FORWARD
        )
        validity = {inst.full_path: vs for inst, vs in moved.items()}
        out = relocate(example.cube, "Organization", validity)
        # MA data moves too: (Contractor/Joe, Mar, MA) -> (PTE/Joe, Mar, MA)
        assert salary(out, JOE["PTE"], "Mar", location="MA") == 15.0

    def test_overlapping_input_instances_rejected(self, example):
        cube = example.cube.copy()
        # Corrupt the cube: give FTE/Joe data in Feb while PTE/Joe has Feb data.
        cube.set(
            1.0,
            Organization=JOE["FTE"],
            Location="NY",
            Time="Feb",
            Measures="Salary",
        )
        with pytest.raises(QueryError, match="two instances"):
            relocate(
                cube,
                "Organization",
                {JOE["FTE"]: ValiditySet.single(1, 12)},
            )


class TestSplit:
    def test_paper_example_lisa(self, example):
        """R = {(FTE/Lisa, FTE, PTE, Apr)} from Sec. 3.4."""
        out, hypo = split(
            example.cube,
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
        )
        assert salary(out, "Organization/FTE/Lisa", "Mar") == 10.0
        assert is_missing(salary(out, "Organization/FTE/Lisa", "Apr"))
        assert salary(out, "Organization/PTE/Lisa", "Apr") == 10.0
        assert is_missing(salary(out, "Organization/PTE/Lisa", "Mar"))
        instances = {i.qualified_name: i for i in hypo.instances_of("Lisa")}
        assert instances["FTE/Lisa"].validity.sorted_moments() == [0, 1, 2]
        assert instances["PTE/Lisa"].validity.sorted_moments() == list(range(3, 12))

    def test_multiple_changes_same_member(self, example):
        out, hypo = split(
            example.cube,
            "Organization",
            [
                ChangeTuple("Tom", "PTE", "Contractor", "Mar"),
                ChangeTuple("Tom", "Contractor", "FTE", "May"),
            ],
        )
        assert salary(out, "Organization/PTE/Tom", "Feb") == 10.0
        assert salary(out, "Organization/Contractor/Tom", "Mar") == 10.0
        assert salary(out, "Organization/Contractor/Tom", "Apr") == 10.0
        assert salary(out, "Organization/FTE/Tom", "May") == 10.0
        assert salary(out, "Organization/FTE/Tom", "Jun") == 10.0

    def test_wrong_old_parent_rejected(self, example):
        with pytest.raises(InvalidChangeError, match="old parent"):
            split(
                example.cube,
                "Organization",
                [ChangeTuple("Lisa", "PTE", "Contractor", "Apr")],
            )

    def test_change_at_invalid_moment_rejected(self, example):
        # Joe is invalid in May.
        with pytest.raises(InvalidChangeError, match="no instance"):
            split(
                example.cube,
                "Organization",
                [ChangeTuple("Joe", "Contractor", "FTE", "May")],
            )

    def test_unaffected_members_untouched(self, example):
        out, _ = split(
            example.cube,
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
        )
        assert salary(out, "Organization/PTE/Tom", "Apr") == 10.0
        assert salary(out, JOE["CONTR"], "Apr") == 20.0

    def test_split_applies_on_top_of_existing_instances(self, example):
        """Positive change on a member that already changes (Joe)."""
        out, hypo = split(
            example.cube,
            "Organization",
            [ChangeTuple("Joe", "Contractor", "FTE", "Apr")],
        )
        assert salary(out, JOE["CONTR"], "Mar") == 30.0
        assert salary(out, JOE["FTE"], "Apr") == 20.0
        assert is_missing(salary(out, JOE["CONTR"], "Apr"))
        instances = {i.qualified_name: i for i in hypo.instances_of("Joe")}
        # {Jan} ∪ {Apr} ∪ {Jun..Dec} — May stays invalid (vacation).
        assert instances["FTE/Joe"].validity.sorted_moments() == (
            [0, 3] + list(range(5, 12))
        )


class TestEvaluate:
    def test_visual_reevaluation(self, example):
        cube = example.cube.copy()
        q1 = cube.schema.address(
            Organization="PTE", Location="NY", Time="Qtr1", Measures="Salary"
        )
        cube.materialize_derived([q1])
        original = cube.value(q1)
        moved, _ = split(
            cube, "Organization", [ChangeTuple("Lisa", "FTE", "PTE", "Feb")]
        )
        out = evaluate(cube, moved)
        # Lisa's Feb+Mar salary (20) now counts under PTE.
        assert out.value(q1) == original + 20.0

    def test_evaluate_with_explicit_addresses(self, example):
        out = evaluate(
            example.cube,
            example.cube,
            addresses=[
                example.cube.schema.address(
                    Organization="FTE",
                    Location="NY",
                    Time="Qtr1",
                    Measures="Salary",
                )
            ],
        )
        assert out.n_stored_derived == 1

    def test_evaluate_does_not_mutate_inputs(self, example):
        cube = example.cube
        before = cube.n_stored_derived
        evaluate(cube, cube, addresses=[])
        assert cube.n_stored_derived == before
