"""Tests for memory-budgeted multi-pass perspective evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.perspective import PerspectiveSet, Semantics
from repro.core.perspective_cube import run_perspective_query
from repro.errors import QueryError
from repro.workload.retail import RetailConfig, build_retail


@pytest.fixture(scope="module")
def world():
    retail = build_retail(
        RetailConfig(
            n_groups=6,
            products_per_group=4,
            n_varying=6,
            max_moves=3,
            n_locations=2,
            seed=17,
        )
    )
    chunked, spec = retail.chunked(chunk_shape=(1, 3, 2))
    return retail, chunked, spec


def run(spec, retail, budget=None):
    pset = PerspectiveSet([0, 6], 12)
    return run_perspective_query(
        spec,
        retail.varying_products,
        pset,
        Semantics.FORWARD,
        memory_budget=budget,
    )


class TestBudgetedExecution:
    def test_results_identical_to_single_pass(self, world):
        retail, chunked, spec = world
        single = run(spec, retail)
        budgeted = run(spec, retail, budget=2)
        assert set(single.rows) == set(budgeted.rows)
        for label in single.rows:
            np.testing.assert_allclose(
                single.rows[label], budgeted.rows[label], equal_nan=True
            )
        assert single.validity_out == budgeted.validity_out

    def test_budget_respected(self, world):
        retail, chunked, spec = world
        budgeted = run(spec, retail, budget=2)
        assert budgeted.memory_high_water <= 2

    def test_tighter_budget_reads_at_least_as_many_chunks(self, world):
        retail, chunked, spec = world
        single = run(spec, retail)
        budgeted = run(spec, retail, budget=2)
        assert budgeted.chunks_read >= single.chunks_read

    def test_generous_budget_single_batch(self, world):
        retail, chunked, spec = world
        single = run(spec, retail)
        budgeted = run(spec, retail, budget=10_000)
        assert budgeted.chunks_read == single.chunks_read

    def test_zero_budget_rejected(self, world):
        retail, chunked, spec = world
        with pytest.raises(QueryError):
            run(spec, retail, budget=0)

    def test_impossible_budget_reported(self, world):
        retail, chunked, spec = world
        # Every member with >= 2 merging chunks needs at least 2 pebbles;
        # a budget of 1 cannot accommodate any changing member.
        with pytest.raises(QueryError, match="over the budget"):
            run(spec, retail, budget=1)
