"""Tests for the algebraic optimiser: every rewrite preserves results."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import optimize
from repro.core.perspective import Semantics
from repro.core.plans import (
    And,
    BaseCube,
    DescendantOf,
    EvaluateNode,
    MemberEquals,
    MemberIn,
    PerspectiveNode,
    PlanNode,
    SelectNode,
    SplitNode,
    execute_plan,
    explain,
)


def plan_depth(plan: PlanNode) -> int:
    depth = 0
    node = plan
    while node.child is not None:
        depth += 1
        node = node.child
    return depth


class TestRewrites:
    def test_merge_same_dimension_selections(self):
        plan = SelectNode(
            SelectNode(BaseCube(), "Organization", MemberEquals("Joe")),
            "Organization",
            MemberIn({"Joe", "Lisa"}),
        )
        optimized, trace = optimize(plan)
        assert "merge-selections" in trace.rules_fired
        assert isinstance(optimized, SelectNode)
        assert isinstance(optimized.input_plan, BaseCube)
        assert isinstance(optimized.predicate, And)

    def test_reorder_then_merge_across_dimensions(self):
        plan = SelectNode(
            SelectNode(
                SelectNode(BaseCube(), "Location", MemberEquals("NY")),
                "Organization",
                MemberEquals("Joe"),
            ),
            "Location",
            MemberEquals("NY"),
        )
        optimized, trace = optimize(plan)
        assert "reorder-selections" in trace.rules_fired
        assert "merge-selections" in trace.rules_fired
        assert plan_depth(optimized) == 2  # two selects left

    def test_push_member_select_through_perspective(self):
        plan = SelectNode(
            PerspectiveNode(BaseCube(), "Organization", (0,), Semantics.FORWARD),
            "Organization",
            MemberEquals("Joe"),
        )
        optimized, trace = optimize(plan)
        assert "push-select-through-perspective" in trace.rules_fired
        assert isinstance(optimized, PerspectiveNode)
        assert isinstance(optimized.input_plan, SelectNode)

    def test_descendant_select_not_pushed_same_dimension(self):
        plan = SelectNode(
            PerspectiveNode(BaseCube(), "Organization", (0,), Semantics.FORWARD),
            "Organization",
            DescendantOf("FTE"),
        )
        optimized, trace = optimize(plan)
        assert trace.rules_fired == []
        assert optimized == plan

    def test_other_dimension_select_always_pushed(self):
        plan = SelectNode(
            PerspectiveNode(BaseCube(), "Organization", (0,), Semantics.FORWARD),
            "Location",
            DescendantOf("East"),
        )
        optimized, trace = optimize(plan)
        assert "push-select-through-perspective" in trace.rules_fired

    def test_push_select_through_split(self):
        plan = SelectNode(
            SplitNode(BaseCube(), "Organization", (("Lisa", "FTE", "PTE", "Apr"),)),
            "Organization",
            MemberEquals("Lisa"),
        )
        optimized, trace = optimize(plan)
        assert "push-select-through-split" in trace.rules_fired
        assert isinstance(optimized, SplitNode)

    def test_drop_redundant_static_perspective(self):
        plan = PerspectiveNode(
            PerspectiveNode(BaseCube(), "Organization", (0,), Semantics.STATIC),
            "Organization",
            (0, 3),
            Semantics.STATIC,
        )
        optimized, trace = optimize(plan)
        assert "drop-redundant-static-perspective" in trace.rules_fired
        assert isinstance(optimized, PerspectiveNode)
        assert optimized.perspectives == (0,)

    def test_non_subset_static_perspectives_kept(self):
        plan = PerspectiveNode(
            PerspectiveNode(BaseCube(), "Organization", (0, 5), Semantics.STATIC),
            "Organization",
            (0, 3),
            Semantics.STATIC,
        )
        optimized, trace = optimize(plan)
        assert "drop-redundant-static-perspective" not in trace.rules_fired

    def test_collapse_evaluate(self):
        plan = EvaluateNode(EvaluateNode(BaseCube()))
        optimized, trace = optimize(plan)
        assert "collapse-evaluate" in trace.rules_fired
        assert plan_depth(optimized) == 1

    def test_fixpoint_terminates(self):
        plan = BaseCube()
        for _ in range(6):
            plan = SelectNode(plan, "Organization", MemberEquals("Joe"))
        optimized, _ = optimize(plan)
        assert plan_depth(optimized) == 1


class TestEquivalence:
    """Optimised plans must produce identical result cubes."""

    CASES = [
        # (description, plan builder)
        (
            "select-over-forward",
            lambda: SelectNode(
                PerspectiveNode(
                    BaseCube(), "Organization", (1, 3), Semantics.FORWARD
                ),
                "Organization",
                MemberEquals("Joe"),
            ),
        ),
        (
            "select-other-dim-over-static",
            lambda: SelectNode(
                PerspectiveNode(
                    BaseCube(), "Organization", (0,), Semantics.STATIC
                ),
                "Location",
                DescendantOf("East"),
            ),
        ),
        (
            "double-select-and-split",
            lambda: SelectNode(
                SelectNode(
                    SplitNode(
                        BaseCube(),
                        "Organization",
                        (("Lisa", "FTE", "PTE", "Apr"),),
                    ),
                    "Organization",
                    MemberIn({"Lisa", "Tom"}),
                ),
                "Organization",
                MemberEquals("Lisa"),
            ),
        ),
        (
            "static-subset-perspectives",
            lambda: PerspectiveNode(
                PerspectiveNode(BaseCube(), "Organization", (1,), Semantics.STATIC),
                "Organization",
                (1, 3),
                Semantics.STATIC,
            ),
        ),
        (
            "evaluate-over-everything",
            lambda: EvaluateNode(
                SelectNode(
                    PerspectiveNode(
                        BaseCube(), "Organization", (0, 6), Semantics.FORWARD
                    ),
                    "Organization",
                    MemberIn({"Joe", "Lisa", "Tom", "Jane"}),
                )
            ),
        ),
    ]

    @pytest.mark.parametrize(
        "description,builder", CASES, ids=[c[0] for c in CASES]
    )
    def test_optimized_equals_original(self, example, description, builder):
        plan = builder()
        optimized, _ = optimize(plan)
        original = execute_plan(plan, example.cube)
        rewritten = execute_plan(optimized, example.cube)
        assert original.leaf_equal(rewritten), explain(optimized)


PREDICATES = [
    MemberEquals("Joe"),
    MemberIn({"Joe", "Lisa"}),
    MemberEquals("Tom"),
]
DIMS = ["Organization", "Location"]


@settings(max_examples=25, deadline=None)
@given(
    layers=st.lists(
        st.tuples(
            st.sampled_from(["select", "perspective"]),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_random_plans_optimize_equivalently(layers):
    """Property: any stack of selects/perspectives optimises equivalently."""
    from repro.workload.running_example import build_running_example

    example = build_running_example()  # plans never mutate it, but keep
    # construction inside the test so hypothesis inputs stay independent.
    plan: PlanNode = BaseCube()
    for kind, index in layers:
        if kind == "select":
            dimension = DIMS[index % len(DIMS)]
            predicate = (
                PREDICATES[index]
                if dimension == "Organization"
                else MemberEquals("NY")
            )
            plan = SelectNode(plan, dimension, predicate)
        else:
            plan = PerspectiveNode(
                plan, "Organization", (index, index + 3), Semantics.FORWARD
            )
    optimized, _ = optimize(plan)
    original = execute_plan(plan, example.cube)
    rewritten = execute_plan(optimized, example.cube)
    assert original.leaf_equal(rewritten)
