"""Tests for merge dependency graphs and Lemma 5.1 dimension ordering."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.dimension_order import (
    choose_dimension_order,
    memory_for_dimension_order,
)
from repro.core.merge_graph import (
    VaryingAxisSpec,
    build_merge_graph,
    fig8_example_graph,
    merge_graph_from_occurrences,
)
from repro.core.perspective import PerspectiveSet, Semantics
from repro.errors import QueryError
from repro.storage.array_cube import Axis, ChunkedCube
from repro.storage.chunks import ChunkGrid
from repro.validity import ValiditySet


class TestOccurrenceBuilder:
    def test_star_per_member(self):
        graph = merge_graph_from_occurrences({"p": ["c1", "c2", "c3"]})
        assert set(map(frozenset, graph.edges)) == {
            frozenset({"c1", "c2"}),
            frozenset({"c1", "c3"}),
        }

    def test_single_chunk_member_is_isolated_node(self):
        graph = merge_graph_from_occurrences({"p": ["c1"]})
        assert set(graph.nodes) == {"c1"}
        assert graph.number_of_edges() == 0

    def test_empty_member_ignored(self):
        graph = merge_graph_from_occurrences({"p": []})
        assert graph.number_of_nodes() == 0

    def test_edges_remember_member(self):
        graph = merge_graph_from_occurrences({"p": ["a", "b"]})
        assert graph.edges["a", "b"]["member"] == "p"

    def test_fig8_graph_shape(self):
        graph = fig8_example_graph()
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 6


def build_spec(n_products=6, n_months=12, chunk=(2, 3)) -> VaryingAxisSpec:
    """A Product x Time chunked cube where product 'p' has instances on
    rows 0 (early year) and 3 (late year), others are static."""
    labels = [f"slot{i}" for i in range(n_products)]
    axes = [Axis("Product", labels), Axis("Time", [f"m{i}" for i in range(n_months)])]
    cells = []
    half = n_months // 2
    for t in range(half):
        cells.append(((labels[0], f"m{t}"), 1.0))
    for t in range(half, n_months):
        cells.append(((labels[3], f"m{t}"), 2.0))
    cube = ChunkedCube.build(axes, cells, chunk_shape=chunk)
    universe = n_months
    member_of_slot = {labels[0]: "p", labels[3]: "p"}
    validity = {
        labels[0]: ValiditySet.interval(0, half, universe),
        labels[3]: ValiditySet.interval(half, None, universe),
    }
    return VaryingAxisSpec(cube, "Product", "Time", member_of_slot, validity)


class TestBuildMergeGraph:
    def test_forward_single_perspective_links_chunks(self):
        spec = build_spec()
        pset = PerspectiveSet([0], 12)
        graph = build_merge_graph(spec, pset, Semantics.FORWARD)
        # Row 0's instance absorbs the whole year; rows 0 and 3 are in
        # different row-chunks (chunk rows 0 and 1), so for each late-year
        # time chunk there is an edge between (0, tc) and (1, tc).
        assert graph.number_of_edges() == 2  # time chunks 2 and 3 (months 6-11)
        for (a, b) in graph.edges:
            assert a[1] == b[1]
            assert {a[0], b[0]} == {0, 1}

    def test_static_semantics_yields_no_merges(self):
        spec = build_spec()
        pset = PerspectiveSet([0, 6], 12)
        graph = build_merge_graph(spec, pset, Semantics.STATIC)
        assert graph.number_of_edges() == 0

    def test_same_chunk_instances_need_no_merge(self):
        # Chunk rows of slots 0 and 3 coincide when chunk height covers both.
        spec = build_spec(chunk=(6, 3))
        pset = PerspectiveSet([0], 12)
        graph = build_merge_graph(spec, pset, Semantics.FORWARD)
        assert graph.number_of_edges() == 0

    def test_explicit_member_list(self):
        spec = build_spec()
        pset = PerspectiveSet([0], 12)
        graph = build_merge_graph(spec, pset, Semantics.FORWARD, members=["q"])
        assert graph.number_of_nodes() == 0

    def test_changing_members(self):
        spec = build_spec()
        assert spec.changing_members() == ["p"]

    def test_validity_universe_mismatch_rejected(self):
        spec = build_spec()
        with pytest.raises(QueryError):
            VaryingAxisSpec(
                spec.cube,
                "Product",
                "Time",
                {"slot0": "p"},
                {"slot0": ValiditySet.full(5)},
            )


class TestDimensionOrder:
    def test_lemma51_varying_first_uses_less_memory(self):
        """Lemma 5.1 on the Fig. 7-style layout: reading the varying
        (Product) dimension fastest lets related chunks merge sooner."""
        spec = build_spec(n_products=8, n_months=12, chunk=(1, 3))
        pset = PerspectiveSet([0], 12)
        graph = build_merge_graph(spec, pset, Semantics.FORWARD)
        grid = spec.cube.grid
        varying_first = memory_for_dimension_order(graph, grid, (0, 1))
        varying_last = memory_for_dimension_order(graph, grid, (1, 0))
        assert varying_first <= varying_last

    def test_memory_of_empty_graph_is_one(self):
        grid = ChunkGrid([4, 4], [2, 2])
        assert memory_for_dimension_order(nx.Graph(), grid, (0, 1)) == 1

    def test_choose_order_puts_varying_prefix(self):
        grid = ChunkGrid([8, 2, 4], [1, 1, 1])
        order = choose_dimension_order(grid, varying_axes=[0])
        assert order[0] == 0
        assert set(order) == {0, 1, 2}
        # remaining dims ascending chunk count: 2 chunks then 4
        assert order[1:] == (1, 2)

    def test_choose_order_multiple_varying(self):
        grid = ChunkGrid([8, 2, 4], [1, 1, 1])
        order = choose_dimension_order(grid, varying_axes=[0, 2])
        assert set(order[:2]) == {0, 2}
        assert order[0] == 2  # fewer chunks first within the varying block

    def test_choose_order_validates_axes(self):
        grid = ChunkGrid([4], [2])
        with pytest.raises(ValueError):
            choose_dimension_order(grid, varying_axes=[3])


class TestOccurrenceChunks:
    def test_occurrences_follow_validity(self):
        spec = build_spec(n_products=6, n_months=12, chunk=(2, 3))
        from repro.core.merge_graph import occurrence_chunks

        # slot0 holds months 0..5 -> time chunks 0 and 1; row chunk 0.
        chunks = occurrence_chunks(spec, "slot0")
        assert chunks == [(0, 0), (0, 1)]
        # slot3 holds months 6..11 -> time chunks 2 and 3; row chunk 1.
        assert occurrence_chunks(spec, "slot3") == [(1, 2), (1, 3)]

    def test_explicit_moments(self):
        spec = build_spec(n_products=6, n_months=12, chunk=(2, 3))
        from repro.core.merge_graph import occurrence_chunks

        assert occurrence_chunks(spec, "slot0", moments=[0, 1, 2]) == [(0, 0)]
