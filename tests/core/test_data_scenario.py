"""Tests for data-driven allocation scenarios (the paper's 10%-to-MA
example)."""

from __future__ import annotations

import pytest

from repro.core.data_scenario import AllocationScenario
from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario, apply_scenarios
from repro.errors import QueryError


def paper_allocation(mode=Mode.VISUAL) -> AllocationScenario:
    """10% of PTEs' salary in NY during Qtr1 given to the same cells in MA."""
    return AllocationScenario(
        source={"Organization": "PTE", "Location": "NY", "Time": "Qtr1",
                "Measures": "Salary"},
        target={"Location": "MA"},
        fraction=0.10,
        mode=mode,
    )


class TestAllocation:
    def test_source_cells_reduced(self, example):
        result = paper_allocation().apply(example.cube)
        # Tom's NY Jan salary 10 -> 9.
        assert result.at(
            Organization="Organization/PTE/Tom",
            Location="NY",
            Time="Jan",
            Measures="Salary",
        ) == pytest.approx(9.0)

    def test_target_cells_receive(self, example):
        result = paper_allocation().apply(example.cube)
        # Tom had no MA data; the moved 1.0 lands there.
        assert result.at(
            Organization="Organization/PTE/Tom",
            Location="MA",
            Time="Jan",
            Measures="Salary",
        ) == pytest.approx(1.0)

    def test_target_adds_to_existing_values(self, example):
        result = paper_allocation().apply(example.cube)
        # PTE/Joe Feb: NY 10 -> 9; MA had 5, receives 1 -> 6.
        assert result.at(
            Organization="Organization/PTE/Joe",
            Location="MA",
            Time="Feb",
            Measures="Salary",
        ) == pytest.approx(6.0)

    def test_unmatched_cells_untouched(self, example):
        result = paper_allocation().apply(example.cube)
        assert result.at(
            Organization="Organization/FTE/Lisa",
            Location="NY",
            Time="Jan",
            Measures="Salary",
        ) == 10.0
        # Q2 cells of PTE members also untouched.
        assert result.at(
            Organization="Organization/PTE/Tom",
            Location="NY",
            Time="Apr",
            Measures="Salary",
        ) == 10.0

    def test_total_is_conserved(self, example):
        before = sum(v for _, v in example.cube.leaf_cells())
        result = paper_allocation().apply(example.cube)
        after = sum(v for _, v in result.leaf_cube.leaf_cells())
        assert after == pytest.approx(before)

    def test_visual_aggregates_reflect_move(self, example):
        result = paper_allocation(Mode.VISUAL).apply(example.cube)
        # PTE at (MA, Qtr1): Joe Feb 5+1 plus Tom's moved 3x1 = 9.
        assert result.at(
            Organization="PTE", Location="MA", Time="Qtr1", Measures="Salary"
        ) == pytest.approx(9.0)

    def test_non_visual_keeps_input_aggregates(self, example):
        cube = example.cube.copy()
        q1 = cube.schema.address(
            Organization="PTE", Location="NY", Time="Qtr1", Measures="Salary"
        )
        cube.materialize_derived([q1])
        original = cube.value(q1)
        result = paper_allocation(Mode.NON_VISUAL).apply(cube)
        assert result.effective_value(q1) == original

    def test_full_fraction_empties_source(self, example):
        scenario = AllocationScenario(
            source={"Organization": "PTE", "Location": "NY",
                    "Measures": "Salary"},
            target={"Location": "MA"},
            fraction=1.0,
        )
        result = scenario.apply(example.cube)
        assert result.at(
            Organization="Organization/PTE/Tom",
            Location="NY",
            Time="Jan",
            Measures="Salary",
        ) == 0.0


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(QueryError):
            AllocationScenario({}, {"Location": "MA"}, 0.0)
        with pytest.raises(QueryError):
            AllocationScenario({}, {"Location": "MA"}, 1.5)

    def test_empty_target_rejected(self):
        with pytest.raises(QueryError):
            AllocationScenario({"Location": "NY"}, {}, 0.5)

    def test_non_leaf_target_rejected(self, example):
        scenario = AllocationScenario(
            source={"Location": "NY"}, target={"Location": "East"}, fraction=0.5
        )
        with pytest.raises(QueryError, match="leaf"):
            scenario.apply(example.cube)

    def test_cyclic_target_rejected(self, example):
        scenario = AllocationScenario(
            source={"Location": "NY"}, target={"Location": "NY"}, fraction=0.5
        )
        with pytest.raises(QueryError, match="equals"):
            scenario.apply(example.cube)


class TestComposition:
    def test_structural_then_data_driven(self, example):
        """Negate the org changes, then re-allocate — both in one pipeline
        (the paper's scenarios compose)."""
        result = apply_scenarios(
            example.cube,
            [
                NegativeScenario("Organization", ["Jan"], Semantics.FORWARD),
                paper_allocation(),
            ],
        )
        # After forward-from-Jan, Joe is FTE all year, so PTE in NY Q1 is
        # Tom only; his Jan salary ends at 9 and MA receives 1.
        assert result.at(
            Organization="Organization/PTE/Tom",
            Location="MA",
            Time="Jan",
            Measures="Salary",
        ) == pytest.approx(1.0)
        assert result.at(
            Organization="Organization/FTE/Joe",
            Location="NY",
            Time="Feb",
            Measures="Salary",
        ) == 10.0  # FTE cells untouched by the PTE allocation
