"""Tests for the perspective transform Φ (Defs. 4.2/4.3) and its semantics.

Includes a brute-force model of the definitional semantics (per-moment
governing perspectives) and hypothesis properties checking Φ against it.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.perspective import (
    Mode,
    PerspectiveSet,
    Semantics,
    phi,
    phi_member,
    stretch,
)
from repro.errors import QueryError
from repro.validity import ValiditySet

UNIVERSE = 12


def vs(*moments: int) -> ValiditySet:
    return ValiditySet(moments, UNIVERSE)


def pset(*moments: int) -> PerspectiveSet:
    return PerspectiveSet(moments, UNIVERSE)


class TestPerspectiveSet:
    def test_sorted_and_deduplicated(self):
        assert pset(5, 1, 5).moments == (1, 5)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            PerspectiveSet((), UNIVERSE)

    def test_out_of_range_rejected(self):
        with pytest.raises(QueryError):
            pset(12)

    def test_governing_forward(self):
        p = pset(2, 6)
        assert p.governing_forward(1) is None
        assert p.governing_forward(2) == 2
        assert p.governing_forward(5) == 2
        assert p.governing_forward(6) == 6
        assert p.governing_forward(11) == 6

    def test_governing_backward(self):
        p = pset(2, 6)
        assert p.governing_backward(7) is None
        assert p.governing_backward(6) == 6
        assert p.governing_backward(3) == 6
        assert p.governing_backward(0) == 2

    def test_pmin_pmax(self):
        p = pset(4, 9, 2)
        assert p.pmin == 2
        assert p.pmax == 9


class TestStretch:
    def test_single_perspective_reaches_infinity(self):
        assert stretch(vs(3), pset(3)) == ValiditySet.interval(3, None, UNIVERSE)

    def test_not_valid_at_perspective_is_empty(self):
        assert stretch(vs(4), pset(3)).is_empty

    def test_intervals_between_perspectives(self):
        # valid at p1=2 but not p2=6: stretch covers [2, 6) only.
        assert stretch(vs(2), pset(2, 6)).sorted_moments() == [2, 3, 4, 5]

    def test_valid_at_both_perspectives(self):
        assert stretch(vs(2, 6), pset(2, 6)) == ValiditySet.interval(2, None, UNIVERSE)

    def test_universe_mismatch_rejected(self):
        with pytest.raises(QueryError):
            stretch(ValiditySet((1,), 5), pset(1))


class TestStaticSemantics:
    def test_identity_on_surviving_instances(self):
        result = phi({"a": vs(1, 3), "b": vs(5)}, pset(3), Semantics.STATIC)
        assert result == {"a": vs(1, 3)}

    def test_all_dropped_when_nothing_valid_at_p(self):
        assert phi({"a": vs(1)}, pset(2), Semantics.STATIC) == {}

    def test_multiple_perspectives_keep_multiple_instances(self):
        result = phi({"a": vs(0, 1), "b": vs(4, 5)}, pset(1, 4), Semantics.STATIC)
        assert result == {"a": vs(0, 1), "b": vs(4, 5)}


class TestForwardSemantics:
    def test_single_perspective_paper_example(self):
        # Joe: FTE {Jan}, PTE {Feb}, Contractor {Mar..} with P = {Jan}:
        # FTE/Joe takes over [Jan, +inf) (Sec. 3.3 example).
        result = phi(
            {"fte": vs(0), "pte": vs(1), "contr": vs(*range(2, 12))},
            pset(0),
            Semantics.FORWARD,
        )
        assert result == {"fte": ValiditySet.interval(0, None, UNIVERSE)}

    def test_keeps_pre_pmin_original_moments(self):
        # Instance valid at 0 and at perspective 4: output keeps moment 0.
        result = phi({"a": vs(0, 4), "b": vs(1, 2, 3)}, pset(4), Semantics.FORWARD)
        assert result["a"].sorted_moments() == [0] + list(range(4, 12))
        assert "b" not in result

    def test_fig4_validity_sets(self):
        # P = {Feb, Apr} over Joe's instances: PTE/Joe gets [Feb, Apr),
        # Contractor/Joe gets [Apr, +inf); FTE/Joe is dropped.
        result = phi(
            {"fte": vs(0), "pte": vs(1), "contr": vs(2, 3) | vs(*range(5, 12))},
            pset(1, 3),
            Semantics.FORWARD,
        )
        assert result["pte"].sorted_moments() == [1, 2]
        assert result["contr"].sorted_moments() == list(range(3, 12))
        assert "fte" not in result

    def test_extended_forward_maps_prefix_to_pmin_instance(self):
        result = phi(
            {"a": vs(2, 3), "b": vs(0, 1)}, pset(2), Semantics.EXTENDED_FORWARD
        )
        assert result == {"a": ValiditySet.full(UNIVERSE)}

    def test_extended_forward_drops_prefix_of_other_instances(self):
        result = phi(
            {"a": vs(3), "b": vs(0, 1, 2)}, pset(3), Semantics.EXTENDED_FORWARD
        )
        # b is not valid at pmin, so it contributes nothing at all.
        assert result == {"a": ValiditySet.interval(0, None, UNIVERSE)}


class TestBackwardSemantics:
    def test_single_perspective_backward(self):
        result = phi(
            {"a": vs(5), "b": vs(3)}, pset(5), Semantics.BACKWARD
        )
        assert result == {"a": ValiditySet.interval(0, 6, UNIVERSE)}

    def test_backward_keeps_post_pmax_original_moments(self):
        result = phi({"a": vs(5, 9)}, pset(5), Semantics.BACKWARD)
        assert result["a"].sorted_moments() == list(range(0, 6)) + [9]

    def test_extended_backward_maps_suffix_to_pmax_instance(self):
        result = phi({"a": vs(5)}, pset(5), Semantics.EXTENDED_BACKWARD)
        assert result == {"a": ValiditySet.full(UNIVERSE)}

    def test_backward_mirrors_forward(self):
        validity = {"a": vs(1, 6, 7), "b": vs(2, 3), "c": vs(9)}
        p = pset(2, 7)
        backward = phi(validity, p, Semantics.BACKWARD)
        mirrored_validity = {k: v.reversed() for k, v in validity.items()}
        mirrored_p = PerspectiveSet(
            (UNIVERSE - 1 - m for m in p.moments), UNIVERSE
        )
        forward = phi(mirrored_validity, mirrored_p, Semantics.FORWARD)
        assert backward == {k: v.reversed() for k, v in forward.items()}


# -- brute-force definitional models -------------------------------------------


def model_forward(validity_in: dict[str, ValiditySet], p: PerspectiveSet):
    """Per-moment governing-perspective model of Def. 3.4 forward."""
    out: dict[str, set[int]] = {k: set() for k in validity_in}
    for t in range(UNIVERSE):
        governing = p.governing_forward(t)
        if governing is None:
            # Before Pmin: original assignment.
            for key, validity in validity_in.items():
                if t in validity:
                    out[key].add(t)
            continue
        for key, validity in validity_in.items():
            if governing in validity:
                out[key].add(t)
    result = {}
    for key, moments in out.items():
        # Drop instances not valid at any perspective (Stretch empty):
        # such instances keep no moments at all, including pre-Pmin ones.
        if not any(m in validity_in[key] for m in p.moments):
            continue
        if moments:
            result[key] = ValiditySet(moments, UNIVERSE)
    return result


def disjoint_validity_maps():
    """Random per-member instance partitions: assign each moment to one of
    three instances or to nobody."""

    @st.composite
    def build(draw):
        assignment = draw(
            st.lists(
                st.integers(min_value=-1, max_value=2),
                min_size=UNIVERSE,
                max_size=UNIVERSE,
            )
        )
        table: dict[str, set[int]] = {}
        for t, owner in enumerate(assignment):
            if owner >= 0:
                table.setdefault(f"i{owner}", set()).add(t)
        return {k: ValiditySet(v, UNIVERSE) for k, v in table.items()}

    return build()


@given(
    validity=disjoint_validity_maps(),
    p_moments=st.sets(
        st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=4
    ),
)
def test_phi_forward_matches_definitional_model(validity, p_moments):
    p = PerspectiveSet(p_moments, UNIVERSE)
    assert phi(validity, p, Semantics.FORWARD) == model_forward(validity, p)


@given(
    validity=disjoint_validity_maps(),
    p_moments=st.sets(
        st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=4
    ),
    semantics=st.sampled_from(list(Semantics)),
)
def test_phi_outputs_are_pairwise_disjoint(validity, p_moments, semantics):
    """Output validity sets of one member's instances never overlap."""
    p = PerspectiveSet(p_moments, UNIVERSE)
    result = list(phi(validity, p, semantics).values())
    for i in range(len(result)):
        for j in range(i + 1, len(result)):
            assert result[i].is_disjoint(result[j])


@given(
    validity=disjoint_validity_maps(),
    p_moments=st.sets(
        st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=4
    ),
)
def test_phi_static_is_restriction_of_input(validity, p_moments):
    p = PerspectiveSet(p_moments, UNIVERSE)
    result = phi(validity, p, Semantics.STATIC)
    for key, out_validity in result.items():
        assert out_validity == validity[key]


@given(
    validity=disjoint_validity_maps(),
    p_moments=st.sets(
        st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=4
    ),
)
def test_extended_forward_covers_forward(validity, p_moments):
    """Extended forward only ever adds pre-Pmin moments to pmin's instance."""
    p = PerspectiveSet(p_moments, UNIVERSE)
    forward = phi(validity, p, Semantics.FORWARD)
    extended = phi(validity, p, Semantics.EXTENDED_FORWARD)
    for key, ext in extended.items():
        post = ext.restrict_from(p.pmin)
        assert key in forward
        assert post == forward[key].restrict_from(p.pmin)


def test_phi_member_uses_instance_objects(example):
    p = PerspectiveSet.from_names(["Jan"], example.org)
    result = phi_member(example.org.instances_of("Joe"), p, Semantics.FORWARD)
    assert len(result) == 1
    (instance, validity), = result.items()
    assert instance.qualified_name == "FTE/Joe"
    assert validity == ValiditySet.interval(0, None, 12)


def test_mode_enum_values():
    assert Mode.VISUAL.value == "visual"
    assert Mode.NON_VISUAL.value == "non_visual"
    assert Semantics.FORWARD.is_dynamic
    assert not Semantics.STATIC.is_dynamic
    assert Semantics.EXTENDED_BACKWARD.is_backward
    assert Semantics.EXTENDED_BACKWARD.is_extended
