"""Tests for perspective-cube materialisation and parent totals."""

from __future__ import annotations

import math

import pytest

from repro.core.merge_graph import VaryingAxisSpec
from repro.core.perspective import Mode, PerspectiveSet, Semantics
from repro.core.perspective_cube import (
    materialize_perspective_cube,
    run_perspective_query,
)
from repro.core.scenario import NegativeScenario
from repro.errors import QueryError
from repro.storage.array_cube import ChunkedCube


@pytest.fixture
def spec(example) -> VaryingAxisSpec:
    chunked = ChunkedCube.from_cube(example.cube, chunk_shape=(2, 2, 3, 2))
    member_of, validity = {}, {}
    for label in chunked.axis("Organization").labels:
        member = label.split("/")[-1]
        member_of[label] = member
        for instance in example.org.instances_of(member):
            if instance.full_path == label:
                validity[label] = instance.validity
    return VaryingAxisSpec(chunked, "Organization", "Time", member_of, validity)


def forward_result(example, spec, perspectives=("Feb", "Apr")):
    pset = PerspectiveSet.from_names(list(perspectives), example.org)
    return run_perspective_query(spec, ["Joe"], pset, Semantics.FORWARD)


class TestParentTotals:
    def test_matches_visual_scenario_aggregates(self, example, spec):
        result = forward_result(example, spec)
        totals = result.parent_totals()
        reference = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD, Mode.VISUAL
        ).apply(example.cube)
        # (PTE, Feb): PTE/Joe's Feb across NY+MA Salary (+Benefits if any).
        for (parent, t), total in totals.items():
            month = spec.param_axis.labels[t]
            # Sum the reference's Joe instances under this parent at month.
            expected = 0.0
            for addr, value in reference.leaf_cube.leaf_cells():
                if (
                    addr[0].split("/")[-1] == "Joe"
                    and addr[0].split("/")[-2] == parent
                    and addr[2] == month
                ):
                    expected += value
            assert total == pytest.approx(expected), (parent, month)

    def test_fig4_pte_values(self, example, spec):
        totals = forward_result(example, spec).parent_totals()
        # PTE/Joe Feb: NY 10 + MA 5 = 15; Mar: NY 30 + MA 15 = 45.
        assert totals[("PTE", 1)] == 15.0
        assert totals[("PTE", 2)] == 45.0
        assert ("PTE", 0) not in totals  # Jan stays ⊥


class TestMaterialize:
    def test_values_round_trip(self, example, spec):
        result = forward_result(example, spec)
        out, out_spec = materialize_perspective_cube(spec, result)
        for label, data in result.rows.items():
            for t, month in enumerate(spec.param_axis.labels):
                for li, location in enumerate(spec.cube.axes[1].labels):
                    for mi, measure in enumerate(spec.cube.axes[3].labels):
                        expected = data[t, li, mi]
                        got = out.peek_at(
                            out.cell_of((label, location, month, measure))
                        )
                        if math.isnan(expected):
                            assert math.isnan(got)
                        else:
                            assert got == expected

    def test_axis_holds_only_survivors(self, example, spec):
        result = forward_result(example, spec)
        out, _ = materialize_perspective_cube(spec, result)
        assert set(out.axis("Organization").labels) == set(result.rows)

    def test_validity_carried_to_new_spec(self, example, spec):
        result = forward_result(example, spec)
        _, out_spec = materialize_perspective_cube(spec, result)
        for label in result.rows:
            assert out_spec.validity_of_slot[label] == result.validity_out[label]

    def test_chained_query(self, example, spec):
        """A second what-if over the materialised perspective cube."""
        result = forward_result(example, spec)
        _, out_spec = materialize_perspective_cube(spec, result)
        pset = PerspectiveSet.from_names(["Feb"], example.org)
        chained = run_perspective_query(out_spec, ["Joe"], pset, Semantics.STATIC)
        assert list(chained.rows) == ["Organization/PTE/Joe"]

    def test_empty_result_rejected(self, example, spec):
        result = forward_result(example, spec)
        result.rows.clear()
        with pytest.raises(QueryError):
            materialize_perspective_cube(spec, result)

    def test_instance_order_follows_input_axis(self, example, spec):
        result = forward_result(example, spec)
        out, _ = materialize_perspective_cube(spec, result)
        input_order = {l: i for i, l in enumerate(spec.axis.labels)}
        positions = [input_order[l] for l in out.axis("Organization").labels]
        assert positions == sorted(positions)
