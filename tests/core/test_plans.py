"""Tests for algebra plans: structured predicates, execution, explain."""

from __future__ import annotations


from repro.core.operators import ChangeTuple, split
from repro.core.perspective import Semantics
from repro.core.plans import (
    And,
    BaseCube,
    DescendantOf,
    EvaluateNode,
    MemberEquals,
    MemberIn,
    Not,
    Or,
    PerspectiveNode,
    SelectNode,
    SplitNode,
    ValidityIntersects,
    ValueCompare,
    execute_plan,
    explain,
)
from repro.core.scenario import NegativeScenario
from repro.olap.missing import is_missing

JOE_PTE = "Organization/PTE/Joe"


class TestStructuredPredicates:
    def test_member_level_flags(self):
        assert MemberEquals("Joe").is_member_level
        assert MemberIn({"Joe", "Lisa"}).is_member_level
        assert not DescendantOf("FTE").is_member_level
        assert not ValidityIntersects({1}).is_member_level
        assert not ValueCompare({"Time": "Jan"}, ">", 1).is_member_level
        assert And(MemberEquals("a"), MemberIn({"b"})).is_member_level
        assert not And(MemberEquals("a"), DescendantOf("x")).is_member_level
        assert Or(MemberEquals("a"), MemberEquals("b")).is_member_level
        assert Not(MemberEquals("a")).is_member_level
        assert not Not(DescendantOf("x")).is_member_level

    def test_compiled_predicates_behave(self, example):
        pred = MemberEquals("Joe").compile()
        org = example.schema.dim_index("Organization")
        assert pred(example.cube, org, JOE_PTE)
        assert not pred(example.cube, org, "Organization/FTE/Lisa")

    def test_value_compare_hashable_and_compiles(self, example):
        a = ValueCompare({"Time": "Mar", "Measures": "Salary"}, ">", 25)
        b = ValueCompare({"Measures": "Salary", "Time": "Mar"}, ">", 25)
        assert a == b
        assert hash(a) == hash(b)


class TestExecution:
    def test_base_cube_is_identity(self, example):
        result = execute_plan(BaseCube(), example.cube)
        assert result is example.cube

    def test_select_node(self, example):
        plan = SelectNode(BaseCube(), "Organization", MemberEquals("Joe"))
        result = execute_plan(plan, example.cube)
        members = {c.split("/")[-1] for c in result.coordinates_used("Organization")}
        assert members == {"Joe"}

    def test_perspective_node_matches_scenario(self, example):
        plan = PerspectiveNode(
            BaseCube(), "Organization", (1, 3), Semantics.FORWARD
        )
        result = execute_plan(plan, example.cube)
        reference = NegativeScenario(
            "Organization", ["Feb", "Apr"], Semantics.FORWARD
        ).apply(example.cube)
        assert result.leaf_equal(reference.leaf_cube)

    def test_split_node_matches_operator(self, example):
        plan = SplitNode(
            BaseCube(), "Organization", (("Lisa", "FTE", "PTE", "Apr"),)
        )
        result = execute_plan(plan, example.cube)
        reference, _ = split(
            example.cube,
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
        )
        assert result.leaf_equal(reference)

    def test_evaluate_node_rederives(self, example):
        cube = example.cube.copy()
        q1 = cube.schema.address(
            Organization="PTE", Location="NY", Time="Qtr1", Measures="Salary"
        )
        cube.materialize_derived([q1])
        plan = EvaluateNode(
            SplitNode(BaseCube(), "Organization", (("Lisa", "FTE", "PTE", "Feb"),))
        )
        result = execute_plan(plan, cube)
        assert result.value(q1) == cube.value(q1) + 20.0

    def test_composed_plan(self, example):
        plan = PerspectiveNode(
            SelectNode(BaseCube(), "Organization", MemberEquals("Joe")),
            "Organization",
            (0,),
            Semantics.FORWARD,
        )
        result = execute_plan(plan, example.cube)
        # Only Joe's data, relocated onto FTE/Joe for the whole year.
        assert result.value(
            example.schema.address(
                Organization="Organization/FTE/Joe",
                Location="NY",
                Time="Mar",
                Measures="Salary",
            )
        ) == 30.0
        assert is_missing(
            result.value(
                example.schema.address(
                    Organization="Organization/FTE/Lisa",
                    Location="NY",
                    Time="Jan",
                    Measures="Salary",
                )
            )
        )


class TestExplain:
    def test_explain_renders_tree(self):
        plan = EvaluateNode(
            PerspectiveNode(
                SelectNode(BaseCube(), "Organization", MemberEquals("Joe")),
                "Organization",
                (0, 3),
                Semantics.STATIC,
            )
        )
        text = explain(plan)
        lines = text.splitlines()
        assert lines[0].startswith("Evaluate")
        assert lines[1].strip().startswith("Perspective")
        assert lines[2].strip().startswith("Select")
        assert lines[3].strip() == "BaseCube"
