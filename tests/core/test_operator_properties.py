"""Property tests for the algebra operators' structural invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import ChangeTuple, relocate, select, split
from repro.core.perspective import PerspectiveSet, Semantics, phi_member
from repro.core.predicates import member_in
from repro.errors import InvalidChangeError
from repro.workload.running_example import MONTHS, build_running_example

MEMBERS = ["Joe", "Lisa", "Tom", "Jane"]
PARENTS = ["FTE", "PTE", "Contractor"]


def leaf_multiset_by_member(cube, dim_index=0):
    """Multiset of (member, other-coords, value) ignoring instance parents."""
    table = {}
    for addr, value in cube.leaf_cells():
        member = addr[dim_index].split("/")[-1]
        key = (member,) + addr[1:]
        table.setdefault(key, []).append(value)
    return {k: sorted(v) for k, v in table.items()}


@settings(max_examples=30, deadline=None)
@given(
    member=st.sampled_from(MEMBERS),
    new_parent=st.sampled_from(PARENTS),
    moment=st.integers(min_value=1, max_value=11),
)
def test_split_conserves_values_per_member(member, new_parent, moment):
    """S only moves cells between instances of the changed member: the
    multiset of (member, ē, value) leaf entries is invariant."""
    example = build_running_example()
    old_parent = example.org.parent_at(member, moment)
    if old_parent is None or old_parent == new_parent:
        return
    try:
        out, _ = split(
            example.cube,
            "Organization",
            [ChangeTuple(member, old_parent, new_parent, MONTHS[moment])],
        )
    except InvalidChangeError:
        return
    assert leaf_multiset_by_member(out) == leaf_multiset_by_member(example.cube)


@settings(max_examples=30, deadline=None)
@given(
    keep=st.sets(st.sampled_from(MEMBERS), min_size=0, max_size=4),
)
def test_select_output_is_subset(keep):
    example = build_running_example()
    out = select(example.cube, "Organization", member_in(keep))
    input_cells = dict(example.cube.leaf_cells())
    for addr, value in out.leaf_cells():
        assert input_cells[addr] == value
        assert addr[0].split("/")[-1] in keep


@settings(max_examples=30, deadline=None)
@given(
    p_moments=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
)
def test_forward_relocation_preserves_per_moment_values(p_moments):
    """ρ∘Φ_forward never invents values: every output (member, moment, ē)
    cell equals the input cell of the same member/moment/ē (held by some
    instance)."""
    example = build_running_example()
    pset = PerspectiveSet(p_moments, 12)
    validity = {}
    for member in MEMBERS:
        for inst, vs in phi_member(
            example.org.instances_of(member), pset, Semantics.FORWARD
        ).items():
            validity[inst.full_path] = vs
    out = relocate(example.cube, "Organization", validity)
    input_by_key = {}
    for addr, value in example.cube.leaf_cells():
        key = (addr[0].split("/")[-1],) + addr[1:]
        input_by_key[key] = value
    for addr, value in out.leaf_cells():
        key = (addr[0].split("/")[-1],) + addr[1:]
        assert input_by_key[key] == value


@settings(max_examples=20, deadline=None)
@given(
    p_moments=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
)
def test_static_relocation_is_subcube(p_moments):
    """Static semantics never moves values — the output is the input with
    some instances' sub-cubes removed."""
    example = build_running_example()
    pset = PerspectiveSet(p_moments, 12)
    validity = {}
    for member in MEMBERS:
        for inst, vs in phi_member(
            example.org.instances_of(member), pset, Semantics.STATIC
        ).items():
            validity[inst.full_path] = vs
    out = relocate(example.cube, "Organization", validity)
    input_cells = dict(example.cube.leaf_cells())
    for addr, value in out.leaf_cells():
        assert input_cells[addr] == value
