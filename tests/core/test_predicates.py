"""Dedicated tests for the σ predicate factories (Sec. 4.1 forms)."""

from __future__ import annotations

import pytest

from repro.core.predicates import (
    and_,
    descendant_of,
    member_equals,
    member_in,
    not_,
    or_,
    validity_intersects,
    value_predicate,
)
from repro.errors import QueryError

JOE_PTE = "Organization/PTE/Joe"
LISA = "Organization/FTE/Lisa"


@pytest.fixture
def org_index(example):
    return example.schema.dim_index("Organization")


class TestMemberPredicates:
    def test_member_equals_matches_any_instance(self, example, org_index):
        pred = member_equals("Joe")
        assert pred(example.cube, org_index, JOE_PTE)
        assert pred(example.cube, org_index, "Organization/FTE/Joe")
        assert not pred(example.cube, org_index, LISA)

    def test_member_equals_on_nonleaf_coordinate(self, example, org_index):
        pred = member_equals("FTE")
        assert pred(example.cube, org_index, "FTE")
        assert not pred(example.cube, org_index, LISA)

    def test_member_in(self, example, org_index):
        pred = member_in(["Joe", "Lisa"])
        assert pred(example.cube, org_index, LISA)
        assert not pred(example.cube, org_index, "Organization/PTE/Tom")


class TestDescendantOf:
    def test_instance_paths(self, example, org_index):
        pred = descendant_of("PTE")
        assert pred(example.cube, org_index, JOE_PTE)
        assert not pred(example.cube, org_index, LISA)

    def test_self_excluded_by_default(self, example, org_index):
        pred = descendant_of("PTE")
        assert not pred(example.cube, org_index, "PTE")
        assert descendant_of("PTE", include_self=True)(
            example.cube, org_index, "PTE"
        )

    def test_nonleaf_member_descendant(self, example):
        loc = example.schema.dim_index("Location")
        pred = descendant_of("Location")
        assert pred(example.cube, loc, "East")

    def test_unknown_names_do_not_match(self, example, org_index):
        pred = descendant_of("FTE")
        assert not pred(example.cube, org_index, "Mystery")


class TestValidityIntersects:
    def test_instance_validity(self, example, org_index):
        pred = validity_intersects({1})  # Feb
        assert pred(example.cube, org_index, JOE_PTE)
        assert not pred(example.cube, org_index, "Organization/FTE/Joe")

    def test_non_instance_coordinates_pass(self, example, org_index):
        pred = validity_intersects({1})
        assert pred(example.cube, org_index, "FTE")
        time_index = example.schema.dim_index("Time")
        assert pred(example.cube, time_index, "Jan")


class TestValuePredicate:
    @pytest.mark.parametrize(
        "relop,threshold,expected",
        [
            (">", 25, True),    # Contractor/Joe Mar NY = 30
            (">=", 30, True),
            ("<", 5, False),
            ("=", 30, True),
            # The pins single out exactly one cell (30), so != 30 fails.
            ("!=", 30, False),
            ("<=", 9, False),
        ],
    )
    def test_relops_over_joe_march(self, example, org_index, relop, threshold, expected):
        pred = value_predicate(
            {"Location": "NY", "Time": "Mar", "Measures": "Salary"},
            relop,
            threshold,
        )
        assert pred(example.cube, org_index, "Organization/Contractor/Joe") is expected

    def test_rollup_pins(self, example, org_index):
        # Pin at quarter level: cells under Qtr1 are compared.
        pred = value_predicate(
            {"Location": "East", "Time": "Qtr1", "Measures": "Salary"}, ">", 25
        )
        assert pred(example.cube, org_index, "Organization/Contractor/Joe")

    def test_bad_relop(self):
        with pytest.raises(QueryError):
            value_predicate({}, "~=", 1)


class TestCombinators:
    def test_and_or_not(self, example, org_index):
        joe = member_equals("Joe")
        pte = descendant_of("PTE")
        assert and_(joe, pte)(example.cube, org_index, JOE_PTE)
        assert not and_(joe, pte)(example.cube, org_index, LISA)
        assert or_(joe, member_equals("Lisa"))(example.cube, org_index, LISA)
        assert not_(joe)(example.cube, org_index, LISA)
        assert not not_(joe)(example.cube, org_index, JOE_PTE)

    def test_empty_and_is_true(self, example, org_index):
        assert and_()(example.cube, org_index, LISA)

    def test_empty_or_is_false(self, example, org_index):
        assert not or_()(example.cube, org_index, LISA)
