"""Theorem 4.1 as a property: every extended-MDX what-if query equals an
algebra expression over the core query's result.

We check both directions the theorem states:

* **negative scenarios**: ``NegativeScenario.apply`` ≡ executing the plan
  ``Perspective(BaseCube)`` (which composes Φ then ρ), for every
  semantics and perspective set;
* **positive scenarios**: ``PositiveScenario.apply`` ≡ executing
  ``Split(BaseCube)``;
* **visual mode**: the scenario's aggregate values equal ``E`` applied to
  the algebra result.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import ChangeTuple
from repro.core.perspective import Mode, Semantics
from repro.core.plans import BaseCube, PerspectiveNode, SplitNode, execute_plan
from repro.core.scenario import NegativeScenario, PositiveScenario
from repro.errors import InvalidChangeError
from repro.workload.running_example import MONTHS, build_running_example

ALL_SEMANTICS = [
    Semantics.STATIC,
    Semantics.FORWARD,
    Semantics.EXTENDED_FORWARD,
    Semantics.BACKWARD,
    Semantics.EXTENDED_BACKWARD,
]


@settings(max_examples=40, deadline=None)
@given(
    p_moments=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=4
    ),
    semantics=st.sampled_from(ALL_SEMANTICS),
)
def test_negative_scenario_equals_algebra_plan(p_moments, semantics):
    example = build_running_example()
    names = [MONTHS[m] for m in sorted(p_moments)]
    scenario_cube = NegativeScenario(
        "Organization", names, semantics, Mode.NON_VISUAL
    ).apply(example.cube)
    plan_cube = execute_plan(
        PerspectiveNode(
            BaseCube(), "Organization", tuple(sorted(p_moments)), semantics
        ),
        example.cube,
    )
    assert scenario_cube.leaf_cube.leaf_equal(plan_cube)


@settings(max_examples=30, deadline=None)
@given(
    member=st.sampled_from(["Lisa", "Tom", "Jane"]),
    new_parent=st.sampled_from(["FTE", "PTE", "Contractor"]),
    moment=st.integers(min_value=1, max_value=11),
)
def test_positive_scenario_equals_algebra_plan(member, new_parent, moment):
    example = build_running_example()
    old_parent = example.org.parent_at(member, moment)
    if old_parent == new_parent:
        return  # not a change
    change = ChangeTuple(member, old_parent, new_parent, MONTHS[moment])
    try:
        scenario_cube = PositiveScenario(
            "Organization", [change], Mode.NON_VISUAL
        ).apply(example.cube)
    except InvalidChangeError:
        return
    plan_cube = execute_plan(
        SplitNode(
            BaseCube(),
            "Organization",
            ((member, old_parent, new_parent, MONTHS[moment]),),
        ),
        example.cube,
    )
    assert scenario_cube.leaf_cube.leaf_equal(plan_cube)


@settings(max_examples=15, deadline=None)
@given(
    p_moments=st.sets(
        st.integers(min_value=0, max_value=11), min_size=1, max_size=3
    ),
    semantics=st.sampled_from([Semantics.STATIC, Semantics.FORWARD]),
)
def test_visual_aggregates_equal_E_over_algebra_result(p_moments, semantics):
    """Visual-mode non-leaf values = rules evaluated on the relocated cube."""
    example = build_running_example()
    names = [MONTHS[m] for m in sorted(p_moments)]
    visual = NegativeScenario(
        "Organization", names, semantics, Mode.VISUAL
    ).apply(example.cube)
    plan_cube = execute_plan(
        PerspectiveNode(
            BaseCube(), "Organization", tuple(sorted(p_moments)), semantics
        ),
        example.cube,
    )
    for org in ("FTE", "PTE", "Contractor"):
        for quarter in ("Qtr1", "Qtr2"):
            address = example.schema.address(
                Organization=org, Location="NY", Time=quarter, Measures="Salary"
            )
            from repro.olap.missing import is_missing

            left = visual.effective_value(address)
            right = plan_cube.derive(address)
            assert is_missing(left) == is_missing(right)
            if not is_missing(left):
                assert left == right
