"""Tests for the crash-safe persistence layer (repro.durability).

Covers the manifest format, atomic writes, the quarantine + last-good
generation recovery policy, legacy (pre-manifest) stores, and the typed
errors for missing/truncated/garbled store files.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.durability import (
    MANIFEST_NAME,
    Manifest,
    atomic_write_text,
    commit_generation,
    file_digest,
    read_manifest,
)
from repro.errors import (
    WarehouseCorruptionError,
    WarehouseFormatError,
)
from repro.io import load_warehouse, load_warehouse_recovered, save_warehouse
from repro.warehouse import Warehouse


@pytest.fixture
def warehouse(example) -> Warehouse:
    return Warehouse(example.schema, example.cube, name="Warehouse")


@pytest.fixture
def store(warehouse, tmp_path):
    """A freshly saved store with two generations (so .prev exists)."""
    root = save_warehouse(warehouse, tmp_path / "wh")
    save_warehouse(warehouse, root)
    return root


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_text(target, '{"a": 1}')
        assert target.read_text() == '{"a": 1}'

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert not target.with_name("x.json.tmp").exists()


class TestManifest:
    def test_round_trip(self):
        manifest = Manifest(1, 7, {"schema.json": ("ab" * 32, 120)})
        again = Manifest.from_json(manifest.to_json())
        assert again == manifest

    def test_garbled_manifest_is_typed(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text("{not json")
        with pytest.raises(WarehouseFormatError, match="parseable"):
            read_manifest(path)

    def test_missing_manifest_is_typed(self, tmp_path):
        with pytest.raises(WarehouseFormatError, match="missing"):
            read_manifest(tmp_path / MANIFEST_NAME)

    def test_manifest_with_missing_fields_is_typed(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text('{"format_version": 1}')
        with pytest.raises(WarehouseFormatError):
            read_manifest(path)


class TestCommitGeneration:
    def test_first_generation(self, tmp_path):
        manifest = commit_generation(
            tmp_path / "s", {"a.json": "[1]"}, format_version=1
        )
        assert manifest.generation == 1
        on_disk = read_manifest(tmp_path / "s" / MANIFEST_NAME)
        assert on_disk == manifest
        assert file_digest(tmp_path / "s" / "a.json") == manifest.files["a.json"]

    def test_previous_generation_retained(self, tmp_path):
        root = tmp_path / "s"
        commit_generation(root, {"a.json": "[1]"}, format_version=1)
        commit_generation(root, {"a.json": "[2]"}, format_version=1)
        assert (root / "a.json").read_text() == "[2]"
        assert (root / "a.json.prev").read_text() == "[1]"
        prev = read_manifest(root / (MANIFEST_NAME + ".prev"))
        assert prev.generation == 1

    def test_no_temp_files_left(self, store):
        leftovers = [n for n in os.listdir(store) if n.endswith(".tmp")]
        assert leftovers == []


class TestRecoveryPolicy:
    def test_intact_store_loads_clean(self, warehouse, store):
        loaded, recovered = load_warehouse_recovered(store)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert not recovered.recovered
        assert recovered.quarantined == []

    def test_truncated_cells_restores_previous_generation(
        self, warehouse, store
    ):
        # Tear the newest cells.json in half — a classic torn write.
        cells = (store / "cells.json").read_text()
        (store / "cells.json").write_text(cells[: len(cells) // 2])
        loaded, recovered = load_warehouse_recovered(store)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert recovered.restored_from_previous
        assert "cells.json.corrupt" in recovered.quarantined

    def test_garbled_schema_restores_previous_generation(
        self, warehouse, store
    ):
        (store / "schema.json").write_text('{"oops": ')
        loaded, recovered = load_warehouse_recovered(store)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert recovered.restored_from_previous
        assert "schema.json.corrupt" in recovered.quarantined

    def test_recovered_store_loads_clean_afterwards(self, warehouse, store):
        (store / "cells.json").write_text("junk")
        load_warehouse(store)  # performs the repair
        loaded, recovered = load_warehouse_recovered(store)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert not recovered.restored_from_previous

    def test_both_generations_damaged_raises_corruption(
        self, warehouse, store
    ):
        (store / "cells.json").write_text("junk")
        (store / "cells.json.prev").write_text("junk too")
        with pytest.raises(WarehouseCorruptionError) as info:
            load_warehouse(store)
        assert "cells.json" in info.value.lost
        assert any("corrupt" in q for q in info.value.quarantined)

    def test_single_generation_damage_raises_corruption(
        self, warehouse, tmp_path
    ):
        # Only one generation exists: nothing to fall back to.
        root = save_warehouse(warehouse, tmp_path / "wh")
        (root / "schema.json").write_text("garbage")
        with pytest.raises(WarehouseCorruptionError) as info:
            load_warehouse(root)
        assert info.value.lost == ("schema.json",)
        assert (root / "schema.json.corrupt").exists()

    def test_missing_data_file_with_manifest_raises_or_recovers(
        self, warehouse, store
    ):
        (store / "cells.json").unlink()
        loaded, recovered = load_warehouse_recovered(store)  # .prev saves us
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert recovered.restored_from_previous

    def test_garbled_manifest_falls_back(self, warehouse, store):
        (store / MANIFEST_NAME).write_text("{")
        loaded, recovered = load_warehouse_recovered(store)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert recovered.restored_from_previous

    def test_quarantine_preserves_damaged_bytes(self, warehouse, store):
        (store / "cells.json").write_text("damaged-payload")
        load_warehouse(store)
        assert (store / "cells.json.corrupt").read_text() == "damaged-payload"

    def test_missing_directory_is_typed(self, tmp_path):
        with pytest.raises(WarehouseFormatError, match="does not exist"):
            load_warehouse(tmp_path / "never-saved")

    def test_empty_directory_is_typed(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(WarehouseFormatError, match="not a warehouse"):
            load_warehouse(tmp_path / "empty")


class TestLegacyStores:
    """Stores written before manifests existed must still load."""

    @pytest.fixture
    def legacy(self, warehouse, tmp_path):
        root = save_warehouse(warehouse, tmp_path / "wh")
        (root / MANIFEST_NAME).unlink()
        for name in os.listdir(root):
            if name.endswith(".prev"):
                (root / name).unlink()
        return root

    def test_legacy_store_loads(self, warehouse, legacy):
        loaded, recovered = load_warehouse_recovered(legacy)
        assert loaded.cube.leaf_equal(warehouse.cube)
        assert recovered.legacy

    def test_legacy_truncated_cells_is_typed(self, legacy):
        cells = (legacy / "cells.json").read_text()
        (legacy / "cells.json").write_text(cells[: len(cells) // 2])
        with pytest.raises(WarehouseFormatError, match="cells.json") as info:
            load_warehouse(legacy)
        assert info.value.path is not None

    def test_legacy_garbled_schema_is_typed(self, legacy):
        (legacy / "schema.json").write_text("definitely { not json")
        with pytest.raises(WarehouseFormatError, match="not valid JSON"):
            load_warehouse(legacy)

    def test_legacy_missing_schema_is_typed(self, legacy):
        (legacy / "schema.json").unlink()
        with pytest.raises(WarehouseFormatError, match="schema.json"):
            load_warehouse(legacy)

    def test_legacy_structurally_invalid_schema_is_typed(self, legacy):
        payload = json.loads((legacy / "schema.json").read_text())
        del payload["dimensions"]
        (legacy / "schema.json").write_text(json.dumps(payload))
        with pytest.raises(WarehouseFormatError, match="structurally invalid"):
            load_warehouse(legacy)

    def test_legacy_wrong_json_shape_is_typed(self, legacy):
        (legacy / "cells.json").write_text("[1, 2, 3]")
        with pytest.raises(WarehouseFormatError, match="JSON object"):
            load_warehouse(legacy)

    def test_resave_upgrades_legacy_to_manifest(self, warehouse, legacy):
        save_warehouse(warehouse, legacy)
        manifest = read_manifest(legacy / MANIFEST_NAME)
        assert manifest.generation == 1
        loaded, recovered = load_warehouse_recovered(legacy)
        assert not recovered.legacy
        assert loaded.cube.leaf_equal(warehouse.cube)
