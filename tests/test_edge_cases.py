"""Assorted edge-case tests across modules."""

from __future__ import annotations

import pytest

from repro.core.compression import compress
from repro.core.operators import ChangeTuple
from repro.core.perspective import Mode
from repro.core.scenario import PositiveScenario
from repro.olap.cube import Cube
from repro.olap.missing import MISSING, is_missing
from repro.warehouse import Warehouse


class TestMdxTailAndHeadEdges:
    @pytest.fixture
    def warehouse(self, example):
        return Warehouse(example.schema, example.cube, name="Warehouse")

    def test_tail_zero(self, warehouse):
        result = warehouse.query(
            "SELECT Tail({[Jan], [Feb]}, 0) ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == []

    def test_head_larger_than_set(self, warehouse):
        result = warehouse.query(
            "SELECT Head({[Jan], [Feb]}, 10) ON COLUMNS FROM Warehouse"
        )
        assert result.column_labels() == ["Jan", "Feb"]

    def test_crossjoin_with_empty_set(self, warehouse):
        result = warehouse.query(
            "SELECT CrossJoin({}, {[Jan]}) ON COLUMNS, {[Lisa]} ON ROWS "
            "FROM Warehouse"
        )
        assert result.column_labels() == []


class TestCubeEdges:
    def test_materialize_missing_removes_stored(self, tiny_schema):
        cube = Cube(tiny_schema)
        cube.set(1.0, Time="Jan", Measures="Sales")
        cube.set(99.0, Time="H1", Measures="Sales")
        cube.set_value(("Jan", "Sales"), MISSING)  # drop the only leaf
        cube.materialize_derived([("H1", "Sales")])
        assert is_missing(cube.value(("H1", "Sales")))
        assert cube.n_stored_derived == 0

    def test_effective_value_missing_leaf_without_rules(self, tiny_cube):
        tiny_cube.set(None, Time="Feb", Measures="Sales")
        assert is_missing(tiny_cube.effective_value(("Feb", "Sales")))

    def test_scope_values_for_leaf_is_self(self, tiny_cube):
        assert list(tiny_cube.scope_values(("Jan", "Sales"))) == [10.0]


class TestCompressionOfPositiveScenarios:
    def test_split_compresses_and_round_trips(self, example):
        scenario = PositiveScenario(
            "Organization",
            [ChangeTuple("Lisa", "FTE", "PTE", "Apr")],
            Mode.NON_VISUAL,
        )
        result = scenario.apply(example.cube)
        compressed = compress(example.cube, result)
        # Lisa's Apr-Jun NY salaries and benefits moved:
        # 6 overrides + 6 deletions (3 months x 2 measures).
        assert len(compressed.overrides) == 6
        assert len(compressed.deletions) == 6
        assert compressed.materialize().leaf_equal(result.leaf_cube)


class TestWhatIfCubeAggregateRouting:
    def test_non_visual_prefers_input_even_when_not_stored(self, example):
        from repro.core.perspective import Semantics
        from repro.core.scenario import NegativeScenario

        result = NegativeScenario(
            "Organization", ["Jan"], Semantics.FORWARD, Mode.NON_VISUAL
        ).apply(example.cube)
        q1 = example.schema.address(
            Organization="Contractor", Location="NY", Time="Qtr1",
            Measures="Salary",
        )
        # Input aggregate: Jane 30 + Contractor/Joe Mar 30 = 60, even
        # though under the hypothetical structure Joe's Mar is FTE's.
        assert result.effective_value(q1) == 60.0

    def test_visual_same_address_differs(self, example):
        from repro.core.perspective import Semantics
        from repro.core.scenario import NegativeScenario

        result = NegativeScenario(
            "Organization", ["Jan"], Semantics.FORWARD, Mode.VISUAL
        ).apply(example.cube)
        q1 = example.schema.address(
            Organization="Contractor", Location="NY", Time="Qtr1",
            Measures="Salary",
        )
        assert result.effective_value(q1) == 30.0  # Jane only


class TestValiditySetReprAndBounds:
    def test_repr_is_informative(self):
        from repro.validity import ValiditySet

        text = repr(ValiditySet((3, 1), 12))
        assert "1" in text and "3" in text and "12" in text
