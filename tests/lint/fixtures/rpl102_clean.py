"""RPL102 clean counterpart: the same two pools, but only FooPool ever
calls into BarPool — one direction, no cycle."""

import threading


class FooPool:
    def __init__(self, other):
        self.foo_lock = threading.Lock()
        self.other = other

    def foo_step(self, item):
        with self.foo_lock:
            return self.other.bar_step(item)


class BarPool:
    def __init__(self):
        self.bar_lock = threading.Lock()

    def bar_step(self, item):
        with self.bar_lock:
            return item
