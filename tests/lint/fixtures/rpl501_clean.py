"""RPL501 clean counterpart: the entry point raises a class that reaches
the ReproError closure — via a fixture-local subclass, exercising the
static half of the closure computation."""

from repro.errors import QueryError


class FixtureQueryError(QueryError):
    pass


class Warehouse:
    def query(self, text):
        if not text:
            raise FixtureQueryError("empty query")
        return text
