"""RPL301 clean counterpart: one failpoint, registered and hit."""

from repro.faults import register_failpoint

FP_FLUSH = register_failpoint("fixtures.flush")


def flush(registry):
    registry.hit(FP_FLUSH)
