"""RPL302 clean counterpart: two distinct failpoint names."""

from repro.faults import register_failpoint

FP_LEFT = register_failpoint("fixtures.left")
FP_RIGHT = register_failpoint("fixtures.right")


def poke(registry):
    registry.hit(FP_LEFT)
    registry.hit(FP_RIGHT)
