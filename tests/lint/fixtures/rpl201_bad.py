"""RPL201 trigger: ScenarioCache._entries is guarded state (see
THREAD_SHARED) mutated outside 'with self._lock:'."""

from repro.lint.lockdep import make_lock


class ScenarioCache:
    def __init__(self):
        self._lock = make_lock("ScenarioCache._lock")
        self._entries = {}

    def put(self, key, value):
        self._entries[key] = value
