"""RPL402 clean counterpart: start/end in try/finally and trace_span as
a context manager."""

from repro.obs.trace import TRACER, trace_span


def guarded(payload):
    span = TRACER.start("lint.fixture", payload=payload)
    try:
        return payload * 2
    finally:
        TRACER.end(span)


def scoped(payload):
    with trace_span("lint.fixture.scoped"):
        return payload
