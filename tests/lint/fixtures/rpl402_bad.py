"""RPL402 triggers: a span ended outside any 'finally' (leaks on
exception) and a bare trace_span call that is not a 'with' item."""

from repro.obs.trace import TRACER, trace_span


def leaky(payload):
    span = TRACER.start("lint.fixture", payload=payload)
    result = payload * 2
    TRACER.end(span)
    return result


def bare(payload):
    trace_span("lint.fixture.bare")
    return payload
