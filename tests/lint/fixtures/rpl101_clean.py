"""RPL101 clean counterpart: the same two locks nested in the order
LOCK_ORDER declares (QueryService._lock outside ChunkStore._lock)."""

from repro.lint.lockdep import make_lock


class QueryService:
    def __init__(self, store):
        self._lock = make_lock("QueryService._lock", reentrant=False)
        self._store = store

    def submit(self, job):
        with self._lock:
            return self._store.write_through(job)


class ChunkStore:
    def __init__(self):
        self._lock = make_lock("ChunkStore._lock")

    def write_through(self, job):
        with self._lock:
            return job
