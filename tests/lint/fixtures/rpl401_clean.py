"""RPL401 clean counterpart: snake_case, '_total' counter, '_ms'
histogram."""


def install_metrics(registry):
    queries = registry.counter("queries_total")
    latency = registry.histogram("latency_ms")
    depth = registry.gauge("queue_depth")
    return queries, latency, depth
