"""RPL303 clean counterpart: both declared I/O boundaries hit a
registered failpoint before touching storage."""

from repro.faults import FAULTS, register_failpoint

FP_READ = register_failpoint("fixtures.chunk_read")
FP_WRITE = register_failpoint("fixtures.chunk_write")


class ChunkStore:
    def read(self, position):
        FAULTS.hit(FP_READ)
        return position

    def write(self, payload):
        FAULTS.hit(FP_WRITE)
        return len(payload)
