"""RPL501 trigger: Warehouse.query is a public entry point but raises a
builtin, untyped exception."""


class Warehouse:
    def query(self, text):
        if not text:
            raise ValueError("empty query")
        return text
