"""RPL103 trigger: a lock assigned to a class that LOCK_ORDER does not
declare."""

import threading


class ScratchBuffer:
    def __init__(self):
        self._lock = threading.Lock()

    def reset_buffer(self):
        with self._lock:
            return None
