"""RPL103 clean counterpart: Cube._lock is declared in LOCK_ORDER."""

from repro.lint.lockdep import make_lock


class Cube:
    def __init__(self):
        self._lock = make_lock("Cube._lock")

    def version_probe(self):
        with self._lock:
            return 1
