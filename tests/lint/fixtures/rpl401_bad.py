"""RPL401 triggers: camelCase name, histogram without '_ms', and a
double underscore."""


def install_metrics(registry):
    queries = registry.counter("queriesServed")
    latency = registry.histogram("latency_seconds")
    depth = registry.gauge("queue__depth")
    return queries, latency, depth
