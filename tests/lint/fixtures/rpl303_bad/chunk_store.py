"""RPL303 trigger: this file's module name matches the chunk_store I/O
boundary declarations, but neither boundary touches a failpoint."""


class ChunkStore:
    def read(self, position):
        return position

    def write(self, payload):
        return len(payload)
