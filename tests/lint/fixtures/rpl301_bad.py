"""RPL301 triggers, both directions: FP_ORPHAN is registered but never
hit; 'fixtures.ghost' is hit but never registered."""

from repro.faults import register_failpoint

FP_ORPHAN = register_failpoint("fixtures.orphan")


def touch(registry):
    registry.hit("fixtures.ghost")
