"""RPL201 clean counterpart: the same write under the lock, plus a
caller-holds-lock helper marked with the 'locked' pragma."""

from repro.lint.lockdep import make_lock


class ScenarioCache:
    def __init__(self):
        self._lock = make_lock("ScenarioCache._lock")
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def _reset(self):  # reprolint: locked
        self._entries = {}
