"""RPL302 trigger: the same failpoint name registered twice."""

from repro.faults import register_failpoint

FP_FIRST = register_failpoint("fixtures.dup")
FP_SECOND = register_failpoint("fixtures.dup")


def poke(registry):
    registry.hit(FP_FIRST)
    registry.hit(FP_SECOND)
