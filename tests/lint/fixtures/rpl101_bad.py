"""RPL101 trigger: ChunkStore._lock (rank 9) held while calling into
QueryService.submit, which acquires QueryService._lock (rank 1)."""

from repro.lint.lockdep import make_lock


class QueryService:
    def __init__(self):
        self._lock = make_lock("QueryService._lock", reentrant=False)

    def submit(self, job):
        with self._lock:
            return job


class ChunkStore:
    def __init__(self, service):
        self._lock = make_lock("ChunkStore._lock")
        self._service = service

    def write_through(self, job):
        with self._lock:
            return self._service.submit(job)
