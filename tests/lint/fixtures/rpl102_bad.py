"""RPL102 trigger: two undeclared locks (no rank, so RPL101 cannot fire)
acquired in both orders via mutual calls — a cycle in the edge graph."""

import threading


class FooPool:
    def __init__(self, other):
        self.foo_lock = threading.Lock()
        self.other = other

    def foo_step(self, item):
        with self.foo_lock:
            return self.other.bar_step(item)


class BarPool:
    def __init__(self, other):
        self.bar_lock = threading.Lock()
        self.other = other

    def bar_step(self, item):
        with self.bar_lock:
            return self.other.foo_step(item)
