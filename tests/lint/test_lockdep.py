"""The runtime lock-order witness (``repro.lint.lockdep``).

The headline property: an ABBA inversion raises
:class:`~repro.errors.LockOrderError` on the second thread *before* it
blocks on the inner lock, so the test fails fast instead of deadlocking.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockOrderError
from repro.lint.lockdep import WITNESS, WitnessLock, make_lock


@pytest.fixture(autouse=True)
def fresh_witness():
    WITNESS.reset()
    yield
    WITNESS.reset()


class TestMakeLock:
    def test_disabled_returns_plain_locks(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKDEP", raising=False)
        assert not isinstance(make_lock("Cube._lock"), WitnessLock)
        assert not isinstance(
            make_lock("Cube._lock", reentrant=False), WitnessLock
        )

    def test_enabled_returns_witness_locks(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKDEP", "1")
        lock = make_lock("Cube._lock")
        assert isinstance(lock, WitnessLock)
        assert lock.name == "Cube._lock"
        assert lock.reentrant


class TestHierarchy:
    def test_declared_order_is_accepted(self):
        outer = WitnessLock("Warehouse._snapshot_lock", reentrant=False)
        inner = WitnessLock("Cube._lock")
        with outer:
            with inner:
                pass
        assert "Cube._lock" in WITNESS.edges()["Warehouse._snapshot_lock"]

    def test_rank_inversion_raises_before_acquiring(self):
        outer = WitnessLock("Cube._lock")
        inner = WitnessLock("Warehouse._snapshot_lock", reentrant=False)
        with outer:
            with pytest.raises(LockOrderError) as exc_info:
                inner.acquire()
        assert exc_info.value.holding == "Cube._lock"
        assert exc_info.value.acquiring == "Warehouse._snapshot_lock"
        assert WITNESS.inversions == 1
        # the real lock was never taken: it is still free for others
        assert inner.acquire(blocking=False)
        inner.release()

    def test_reentrant_reacquire_is_allowed(self):
        lock = WitnessLock("Cube._lock")
        with lock:
            with lock:
                pass
        assert WITNESS.inversions == 0

    def test_non_reentrant_self_reacquire_fails_fast(self):
        lock = WitnessLock("FixtureSelf.lock", reentrant=False)
        lock.acquire()
        try:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()
        finally:
            lock.release()

    def test_same_name_sibling_instances_create_no_edge(self):
        first = WitnessLock("Counter._lock", reentrant=False)
        second = WitnessLock("Counter._lock", reentrant=False)
        with first:
            with second:
                pass
        assert "Counter._lock" not in WITNESS.edges()
        assert WITNESS.inversions == 0


class TestAbbaInversion:
    def test_two_thread_abba_raises_exactly_once(self):
        lock_a = WitnessLock("FixtureA.lock", reentrant=False)
        lock_b = WitnessLock("FixtureB.lock", reentrant=False)
        errors: list[LockOrderError] = []
        forward_done = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            forward_done.set()

        def backward():
            assert forward_done.wait(5)
            try:
                with lock_b:
                    with lock_a:  # pragma: no cover - must raise first
                        pass
            except LockOrderError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=forward),
            threading.Thread(target=backward),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads)
        assert len(errors) == 1
        assert errors[0].holding == "FixtureB.lock"
        assert errors[0].acquiring == "FixtureA.lock"
        assert WITNESS.inversions == 1

    def test_consistent_order_on_both_threads_is_clean(self):
        lock_a = WitnessLock("FixtureA.lock", reentrant=False)
        lock_b = WitnessLock("FixtureB.lock", reentrant=False)

        def worker():
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert WITNESS.inversions == 0
        assert WITNESS.edges() == {"FixtureA.lock": {"FixtureB.lock"}}

    def test_reset_forgets_witnessed_edges(self):
        lock_a = WitnessLock("FixtureA.lock", reentrant=False)
        lock_b = WitnessLock("FixtureB.lock", reentrant=False)
        with lock_a:
            with lock_b:
                pass
        WITNESS.reset()
        # the reverse order is legal again after a reset
        with lock_b:
            with lock_a:
                pass
        assert WITNESS.inversions == 0
