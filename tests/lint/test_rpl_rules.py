"""Golden violation corpus: every RPL rule proven live.

Each rule has a failing fixture (the rule fires) and a minimally
different clean fixture (it does not) under ``tests/lint/fixtures/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintSeverity, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule, failing fixture, clean fixture) — RPL303 keys on the module
#: name, so its fixtures live in per-case directories.
CASES = [
    ("RPL101", "rpl101_bad.py", "rpl101_clean.py"),
    ("RPL102", "rpl102_bad.py", "rpl102_clean.py"),
    ("RPL103", "rpl103_bad.py", "rpl103_clean.py"),
    ("RPL201", "rpl201_bad.py", "rpl201_clean.py"),
    ("RPL301", "rpl301_bad.py", "rpl301_clean.py"),
    ("RPL302", "rpl302_bad.py", "rpl302_clean.py"),
    ("RPL303", "rpl303_bad", "rpl303_clean"),
    ("RPL401", "rpl401_bad.py", "rpl401_clean.py"),
    ("RPL402", "rpl402_bad.py", "rpl402_clean.py"),
    ("RPL501", "rpl501_bad.py", "rpl501_clean.py"),
]


def lint_fixture(name):
    return run_lint([FIXTURES / name])


@pytest.mark.parametrize("rule,bad,clean", CASES, ids=[c[0] for c in CASES])
def test_rule_fires_on_failing_fixture(rule, bad, clean):
    report = lint_fixture(bad)
    assert rule in report.codes(), report.to_text()


@pytest.mark.parametrize("rule,bad,clean", CASES, ids=[c[0] for c in CASES])
def test_rule_silent_on_clean_fixture(rule, bad, clean):
    report = lint_fixture(clean)
    assert rule not in report.codes(), report.to_text()


class TestFindingAnatomy:
    def test_rpl101_carries_span_and_symbol(self):
        report = lint_fixture("rpl101_bad.py")
        hits = [f for f in report.findings if f.rule == "RPL101"]
        assert len(hits) == 1
        finding = hits[0]
        assert finding.severity is LintSeverity.ERROR
        assert finding.symbol == "ChunkStore.write_through"
        assert finding.path.endswith("rpl101_bad.py")
        assert finding.line > 0
        assert "QueryService._lock" in finding.message
        assert "ChunkStore._lock" in finding.message

    def test_rpl103_is_a_warning(self):
        report = lint_fixture("rpl103_bad.py")
        hits = [f for f in report.findings if f.rule == "RPL103"]
        assert hits and all(
            f.severity is LintSeverity.WARNING for f in hits
        )
        assert hits[0].symbol == "ScratchBuffer._lock"

    def test_rpl301_reports_both_directions(self):
        report = lint_fixture("rpl301_bad.py")
        symbols = {f.symbol for f in report.findings if f.rule == "RPL301"}
        assert "fixtures.orphan" in symbols  # registered, never hit
        assert "fixtures.ghost" in symbols  # hit, never registered

    def test_rpl401_flags_each_bad_name(self):
        report = lint_fixture("rpl401_bad.py")
        symbols = {f.symbol for f in report.findings if f.rule == "RPL401"}
        assert symbols == {"queriesServed", "latency_seconds", "queue__depth"}

    def test_rpl402_flags_both_leak_shapes(self):
        report = lint_fixture("rpl402_bad.py")
        symbols = {f.symbol for f in report.findings if f.rule == "RPL402"}
        assert symbols == {"leaky", "bare"}

    def test_clean_fixtures_have_no_errors_at_all(self):
        for _, _, clean in CASES:
            report = lint_fixture(clean)
            assert not report.has_errors, (clean, report.to_text())


class TestParseFailures:
    def test_rpl001_on_syntax_error(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        report = run_lint([broken])
        assert "RPL001" in report.codes()
        assert report.has_errors


class TestPragmas:
    def test_ignore_pragma_suppresses_on_its_line(self, tmp_path):
        target = tmp_path / "pragma_case.py"
        target.write_text(
            "def install(registry):\n"
            '    return registry.counter("badName")'
            "  # reprolint: ignore[RPL401]\n",
            encoding="utf-8",
        )
        report = run_lint([target])
        assert "RPL401" not in report.codes()

    def test_ignore_pragma_is_rule_specific(self, tmp_path):
        target = tmp_path / "pragma_case.py"
        target.write_text(
            "def install(registry):\n"
            '    return registry.counter("badName")'
            "  # reprolint: ignore[RPL999]\n",
            encoding="utf-8",
        )
        report = run_lint([target])
        assert "RPL401" in report.codes()
