"""Self-hosting: the shipped sources lint clean against the committed
baseline — the same invariant CI enforces with ``repro lint --strict``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import Baseline, run_lint

REPO = Path(__file__).resolve().parents[2]


def test_src_lints_clean_with_committed_baseline():
    baseline = Baseline.load(REPO / "lint-baseline.json")
    report = run_lint([REPO / "src"], baseline)
    assert report.exit_code(strict=True) == 0, report.to_text()
    assert report.files_checked > 50


def test_committed_baseline_has_no_stale_entries():
    baseline = Baseline.load(REPO / "lint-baseline.json")
    report = run_lint([REPO / "src"], baseline)
    assert "RPL002" not in report.codes(), report.to_text()
    assert report.baselined == len(baseline.entries)
