"""The ``repro lint`` CLI surface and the committed-baseline mechanics."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, run_lint
from repro.lint.cli import lint_main

FIXTURES = Path(__file__).parent / "fixtures"


def write_baseline(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"entries": entries}), encoding="utf-8")
    return path


class TestExitCodes:
    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["does/not/exist"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_clean_fixture_exits_zero(self, capsys):
        code = lint_main([str(FIXTURES / "rpl401_clean.py")])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_errors_exit_two(self, capsys):
        assert lint_main([str(FIXTURES / "rpl401_bad.py")]) == 2

    def test_warnings_exit_zero_unless_strict(self, capsys):
        # RPL103 (undeclared lock) is warning-severity
        path = str(FIXTURES / "rpl103_bad.py")
        assert lint_main([path]) == 0
        assert lint_main([path], strict=True) == 1

    def test_json_output_is_machine_readable(self, capsys):
        lint_main([str(FIXTURES / "rpl401_bad.py")], json_output=True)
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"RPL401"}
        assert all(f["severity"] == "error" for f in payload["findings"])


class TestBaseline:
    def test_baseline_suppresses_matching_findings(self, tmp_path, capsys):
        baseline = write_baseline(
            tmp_path,
            [
                {
                    "rule": "RPL401",
                    "path": "rpl401_bad.py",
                    "symbol": symbol,
                    "justification": "fixture: grandfathered for the test",
                }
                for symbol in (
                    "queriesServed", "latency_seconds", "queue__depth"
                )
            ],
        )
        code = lint_main(
            [str(FIXTURES / "rpl401_bad.py")],
            baseline_path=str(baseline),
            strict=True,
        )
        assert code == 0
        assert "3 baselined" in capsys.readouterr().out

    def test_matching_is_line_number_free(self, tmp_path):
        baseline = Baseline.load(
            write_baseline(
                tmp_path,
                [{
                    "rule": "RPL401",
                    "path": "rpl401_bad.py",
                    "symbol": "queriesServed",
                    "justification": "fixture",
                }],
            )
        )
        report = run_lint([FIXTURES / "rpl401_bad.py"], baseline)
        assert report.baselined == 1
        remaining = {f.symbol for f in report.findings if f.rule == "RPL401"}
        assert remaining == {"latency_seconds", "queue__depth"}

    def test_stale_entry_reports_rpl002(self, tmp_path):
        baseline = Baseline.load(
            write_baseline(
                tmp_path,
                [{
                    "rule": "RPL401",
                    "path": "rpl401_clean.py",
                    "symbol": "no_such_metric",
                    "justification": "fixture: intentionally stale",
                }],
            )
        )
        report = run_lint([FIXTURES / "rpl401_clean.py"], baseline)
        assert "RPL002" in report.codes()
        assert not report.has_errors  # stale entries warn, not fail

    def test_justification_is_mandatory(self, tmp_path):
        path = write_baseline(
            tmp_path,
            [{"rule": "RPL401", "path": "x.py", "symbol": "m", "justification": ""}],
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_cli_rejects_bad_baseline(self, tmp_path, capsys):
        path = write_baseline(
            tmp_path,
            [{"rule": "RPL401", "path": "x.py", "symbol": "m"}],
        )
        code = lint_main(
            [str(FIXTURES / "rpl401_clean.py")], baseline_path=str(path)
        )
        assert code == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_cli_rejects_missing_baseline(self, tmp_path, capsys):
        code = lint_main(
            [str(FIXTURES / "rpl401_clean.py")],
            baseline_path=str(tmp_path / "absent.json"),
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err
