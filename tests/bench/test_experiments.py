"""Shape tests for the figure runners: the paper's qualitative claims must
hold on small configs.

These are the claims EXPERIMENTS.md reports against:

* Fig. 11 — Multiple-MDX grows linearly with the number of perspectives
  and ends up the most expensive strategy; static and forward converge
  at 12 perspectives.
* Fig. 12 — simulated time rises with separation then flattens; seek
  distance and cube size grow linearly.
* Fig. 13 — chunk reads grow monotonically (≈linearly) with the number
  of varying employees.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import (
    run_cube_compute_ablation,
    run_dimension_order_ablation,
    run_pebbling_ablation,
)
from repro.bench.fig11 import bench_config, run_fig11, spread_perspectives
from repro.bench.fig12 import fig12_config, run_fig12
from repro.bench.fig13 import fig13_config, run_fig13
from repro.workload.workforce import WorkforceConfig


def small_config() -> WorkforceConfig:
    return WorkforceConfig(
        n_employees=48,
        n_departments=6,
        n_changing=10,
        max_moves=4,
        n_accounts=3,
        n_scenarios=2,
        seed=5,
        density=0.2,
    )


class TestSpreadPerspectives:
    def test_counts(self):
        for k in range(1, 13):
            moments = spread_perspectives(k)
            assert len(moments) == k
            assert moments == sorted(set(moments))
            assert all(0 <= m < 12 for m in moments)

    def test_bounds(self):
        with pytest.raises(ValueError):
            spread_perspectives(0)
        with pytest.raises(ValueError):
            spread_perspectives(13)


class TestFig11:
    @pytest.fixture(scope="class")
    def series(self):
        return run_fig11(small_config(), perspective_counts=(1, 4, 8, 12))

    def test_three_series(self, series):
        assert [s.name for s in series] == [
            "Multiple MDX",
            "Static",
            "Dynamic Forward",
        ]

    def test_multiple_mdx_grows_linearly(self, series):
        multiple = series[0].values("chunk_reads")
        assert multiple == sorted(multiple)
        # Roughly linear beyond the first point (per-perspective costs vary
        # slightly with which moments are chosen): k=4 -> k=12 should cost
        # about 3x, within a factor band.
        ratio = multiple[-1] / multiple[1]
        assert 2.0 <= ratio <= 4.5

    def test_simulation_is_worst_at_high_k(self, series):
        multiple, static, forward = series
        assert multiple.values("simulated_ms")[-1] >= max(
            static.values("simulated_ms")[-1],
            forward.values("simulated_ms")[-1],
        )

    def test_static_and_forward_converge_at_12(self, series):
        _, static, forward = series
        assert static.values("chunk_reads")[-1] == forward.values("chunk_reads")[-1]

    def test_forward_at_least_static(self, series):
        _, static, forward = series
        for s_reads, f_reads in zip(
            static.values("chunk_reads"), forward.values("chunk_reads")
        ):
            assert f_reads >= s_reads


class TestFig12:
    @pytest.fixture(scope="class")
    def series(self):
        # base_gap x cost-model: the seek cap (25 ms at 0.01 ms/chunk) is
        # reached at a gap of 2500 chunks, i.e. at multiple 3 of 1000.
        (series,) = run_fig12(
            multiples=(1, 2, 3, 4), base_gap=1000, config=fig12_config(seed=5)
        )
        return series

    def test_seek_distance_grows_linearly(self, series):
        seeks = series.values("seek_distance")
        deltas = [b - a for a, b in zip(seeks, seeks[1:])]
        assert all(d > 0 for d in deltas)
        assert max(deltas) - min(deltas) <= max(deltas) * 0.2

    def test_simulated_time_rises_then_flattens(self, series):
        times = series.values("simulated_ms")
        assert times[1] > times[0]
        # Last two points within 10% of each other (the flattening).
        assert abs(times[-1] - times[-2]) <= 0.1 * times[-1]

    def test_chunk_reads_constant(self, series):
        reads = series.values("chunk_reads")
        assert len(set(reads)) == 1

    def test_cube_size_grows(self, series):
        extents = series.values("file_extent")
        assert extents == sorted(extents)
        assert extents[-1] > extents[0]


class TestFig13:
    @pytest.fixture(scope="class")
    def series(self):
        (series,) = run_fig13(
            steps=(4, 8, 12, 16), config=fig13_config(n_changing=16, seed=5)
        )
        return series

    def test_reads_monotone_increasing(self, series):
        reads = series.values("chunk_reads")
        assert reads == sorted(reads)
        assert reads[-1] > reads[0]

    def test_instances_grow_with_members(self, series):
        instances = series.values("instances")
        assert instances == sorted(instances)

    def test_step_validation(self):
        with pytest.raises(ValueError):
            run_fig13(steps=(50,), config=fig13_config(n_changing=10))


class TestAblations:
    def test_pebbling_never_worse_than_naive(self):
        heuristic, naive = run_pebbling_ablation(varying_counts=(2, 4))
        for h, n in zip(heuristic.values("pebbles"), naive.values("pebbles")):
            assert h <= n

    def test_lemma51_ordering(self):
        first, last = run_dimension_order_ablation(varying_counts=(2, 4))
        for f, l in zip(
            first.values("memory_chunks"), last.values("memory_chunks")
        ):
            assert f <= l

    def test_shared_scan_reads_fewer_chunks(self):
        shared, naive = run_cube_compute_ablation()
        assert shared.values("chunk_reads")[0] < naive.values("chunk_reads")[0]

    def test_optimizer_pushdown_is_faster(self):
        from repro.bench.ablations import run_optimizer_ablation

        original, optimized = run_optimizer_ablation(member_counts=(2, 5))
        for before, after in zip(
            original.values("wall_ms"), optimized.values("wall_ms")
        ):
            assert after < before


def test_bench_config_scales():
    small = bench_config(scale=0.5)
    large = bench_config(scale=2.0)
    assert large.n_employees > small.n_employees
    assert large.n_changing > small.n_changing
