"""Tests for the experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentSeries,
    SeriesPoint,
    format_table,
    print_series,
    timed,
)


class TestSeries:
    def test_add_and_read(self):
        series = ExperimentSeries("s")
        series.add(1, wall_ms=2.0, reads=3.0)
        series.add(2, wall_ms=4.0, reads=5.0)
        assert series.xs() == [1, 2]
        assert series.values("wall_ms") == [2.0, 4.0]
        assert series.points[0].metric("reads") == 3.0

    def test_unknown_metric(self):
        point = SeriesPoint(1, (("a", 2.0),))
        with pytest.raises(KeyError):
            point.metric("b")


class TestTimed:
    def test_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0


class TestTables:
    def test_format_table(self):
        text = format_table("T", ["x", "y"], [[1, 2.5], [3, 4.0]])
        assert "T" in text
        assert "2.50" in text
        lines = text.splitlines()
        assert len(lines) == 6

    def test_print_series_alignment(self, capsys):
        a = ExperimentSeries("A")
        b = ExperimentSeries("B")
        for x in (1, 2):
            a.add(x, m=float(x))
            b.add(x, m=float(x * 2))
        print_series("title", [a, b], metric="m", x_label="x")
        out = capsys.readouterr().out
        assert "title" in out
        assert "A" in out and "B" in out

    def test_print_series_mismatched_x_rejected(self):
        a = ExperimentSeries("A")
        b = ExperimentSeries("B")
        a.add(1, m=1.0)
        b.add(2, m=1.0)
        with pytest.raises(ValueError):
            print_series("t", [a, b], metric="m", x_label="x")
