"""Smoke test for the benchmark CLI (python -m repro.bench)."""

from __future__ import annotations

import subprocess
import sys


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True,
        text=True,
        timeout=420,
    )


def test_fig12_cli():
    completed = run_cli("fig12")
    assert completed.returncode == 0, completed.stderr
    assert "Fig. 12" in completed.stdout
    assert "simulated_ms" in completed.stdout
    assert "seek_distance" in completed.stdout


def test_ablations_cli():
    completed = run_cli("ablations")
    assert completed.returncode == 0, completed.stderr
    assert "pebbling" in completed.stdout
    assert "Lemma 5.1" in completed.stdout
    assert "Zhao" in completed.stdout


def test_unknown_target_rejected():
    completed = run_cli("fig99")
    assert completed.returncode != 0
