"""The fault matrix: kill the engine at every failpoint, then prove that
``load_warehouse`` either recovers the last-good state or raises a typed
error — never silently returns wrong data.

The matrix walks every registered save/load/chunk-IO failpoint and, for
each, every hit index the operation reaches (``fail_after(n)`` for
``n = 1..hits``), simulating a crash at each distinct instruction
boundary the instrumentation can reach.  With ``REPRO_FAULTS=ci-matrix``
in the environment (the CI ``faults`` job) the per-failpoint hit cap is
removed; the default keeps local runs quick.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import (
    FaultInjectedError,
    ReproError,
    TransientFaultError,
    WarehouseCorruptionError,
    WarehouseFormatError,
)
from repro.faults import FAULTS, failpoint_names
from repro.io import load_warehouse, save_warehouse
from repro.mdx.budget import QueryBudget
from repro.olap.missing import is_missing
from repro.warehouse import Warehouse

SAVE_FAILPOINTS = tuple(
    name
    for name in failpoint_names()
    if name.startswith(("io.save.", "durability."))
)
LOAD_FAILPOINTS = tuple(
    name for name in failpoint_names() if name.startswith("io.load.")
)

#: Hit-index ceiling per failpoint; ci-matrix removes the cap so every
#: reachable crash boundary is exercised.
FULL_MATRIX = "ci-matrix" in os.environ.get("REPRO_FAULTS", "")
MAX_HITS = 10_000 if FULL_MATRIX else 6


def _count_hits(failpoint: str, operation) -> int:
    """How many times ``operation`` crosses ``failpoint`` when healthy."""
    FAULTS.clear()
    FAULTS.fail_after(failpoint, 1_000_000)  # armed but never fires
    operation()
    hits = FAULTS._armed[failpoint].hits
    FAULTS.clear()
    return hits


def _assert_same_data(loaded: Warehouse, expected: Warehouse) -> None:
    assert loaded.cube.leaf_equal(expected.cube), "silently wrong data!"


@pytest.fixture
def warehouse(example) -> Warehouse:
    wh = Warehouse(example.schema, example.cube, name="Warehouse")
    wh.define_named_set("Changers", ["Joe"])
    return wh


@pytest.mark.parametrize("failpoint", SAVE_FAILPOINTS)
def test_crash_during_save_never_corrupts(failpoint, warehouse, tmp_path):
    """Kill a save at every reachable boundary of ``failpoint``; the store
    must always load back to the last successfully committed state."""
    root = tmp_path / "wh"
    save_warehouse(warehouse, root)  # generation 1: the last-good state

    hits = _count_hits(failpoint, lambda: save_warehouse(warehouse, root))
    assert hits > 0, f"failpoint {failpoint} is never reached by save"
    exercised = 0
    for n in range(1, min(hits, MAX_HITS) + 1):
        FAULTS.clear()
        FAULTS.fail_after(failpoint, n)
        with pytest.raises(FaultInjectedError):
            save_warehouse(warehouse, root)
        FAULTS.clear()
        exercised += 1
        loaded = load_warehouse(root)  # recover (or raise typed — not here)
        _assert_same_data(loaded, warehouse)
        # Re-save cleanly so the next crash points at a fresh generation.
        save_warehouse(warehouse, root)
    assert exercised > 0


@pytest.mark.parametrize("failpoint", SAVE_FAILPOINTS)
def test_crash_on_first_ever_save(failpoint, warehouse, tmp_path):
    """A crash during the *first* save (no previous generation) must leave
    either a loadable store or a typed error — never silent corruption."""
    hits = _count_hits(
        failpoint, lambda: save_warehouse(warehouse, tmp_path / "probe")
    )
    for n in range(1, min(hits, MAX_HITS) + 1):
        root = tmp_path / f"wh-{failpoint}-{n}"
        FAULTS.clear()
        FAULTS.fail_after(failpoint, n)
        with pytest.raises(FaultInjectedError):
            save_warehouse(warehouse, root)
        FAULTS.clear()
        try:
            loaded = load_warehouse(root)
        except (WarehouseFormatError, WarehouseCorruptionError):
            continue  # typed refusal is an allowed outcome
        _assert_same_data(loaded, warehouse)


@pytest.mark.parametrize("failpoint", LOAD_FAILPOINTS)
def test_crash_during_load_is_typed(failpoint, warehouse, tmp_path):
    """A fault while loading surfaces as the injected error (typed), and
    a subsequent clean load still succeeds — loads never mutate the store
    destructively."""
    root = save_warehouse(warehouse, tmp_path / "wh")
    hits = _count_hits(failpoint, lambda: load_warehouse(root))
    assert hits > 0, f"failpoint {failpoint} is never reached by load"
    for n in range(1, min(hits, MAX_HITS) + 1):
        FAULTS.clear()
        FAULTS.fail_after(failpoint, n)
        with pytest.raises(ReproError):
            load_warehouse(root)
        FAULTS.clear()
        _assert_same_data(load_warehouse(root), warehouse)


def test_transient_save_faults_are_absorbed(warehouse, tmp_path):
    """Transient write faults retry with backoff and the save completes."""
    FAULTS.fail_transient("durability.write", times=2)
    root = save_warehouse(warehouse, tmp_path / "wh")
    _assert_same_data(load_warehouse(root), warehouse)


def test_probabilistic_crash_schedule_never_corrupts(warehouse, tmp_path):
    """A randomized (seeded) crash schedule across many save attempts must
    never produce a store that loads silently wrong data."""
    root = tmp_path / "wh"
    save_warehouse(warehouse, root)
    seeds = range(24) if FULL_MATRIX else range(8)
    for seed in seeds:
        FAULTS.clear()
        FAULTS.fail_probabilistic("durability.rename", 0.4, seed=seed)
        try:
            save_warehouse(warehouse, root)
        except FaultInjectedError:
            pass
        FAULTS.clear()
        loaded = load_warehouse(root)
        _assert_same_data(loaded, warehouse)
        save_warehouse(warehouse, root)


def test_mdx_cell_fault_propagates(warehouse):
    FAULTS.fail_after("mdx.cell", 2)
    with pytest.raises(FaultInjectedError):
        warehouse.query(
            "SELECT {Time.[Jan], Time.[Feb]} ON COLUMNS FROM Warehouse"
        )


def test_mdx_transient_cell_fault_is_not_retried_inline(warehouse):
    """Cell evaluation does not retry: a transient fault there surfaces to
    the caller (retries live at the physical IO layer, not per-cell)."""
    FAULTS.fail_transient("mdx.cell", times=1)
    with pytest.raises(TransientFaultError):
        warehouse.query("SELECT {Time.[Jan]} ON COLUMNS FROM Warehouse")


class TestBudgetDegradation:
    """Acceptance: a budget breach returns a partial result with ⊥ cells
    and a non-empty degradations report — not an exception."""

    QUERY = """
        SELECT {Time.[Jan], Time.[Feb], Time.[Mar], Time.[Apr]} ON COLUMNS,
               {[Joe]} ON ROWS
        FROM Warehouse WHERE ([NY], [Salary])
    """

    def test_cell_cap_yields_partial_result(self, warehouse):
        full = warehouse.query(self.QUERY)
        capped = warehouse.query(self.QUERY, budget=QueryBudget(max_cells=3))
        assert capped.is_partial
        assert [d.reason for d in capped.degradations] == ["cell-cap"]
        degradation = capped.degradations[0]
        assert degradation.cells_evaluated == 3
        assert degradation.cells_skipped > 0
        # Shape survives; the first three evaluated cells agree with the
        # unbudgeted run, everything after the cut is ⊥.
        assert len(capped.rows) * len(capped.columns) == (
            degradation.cells_evaluated + degradation.cells_skipped
        )
        flat_full = [v for row in full.cells for v in row]
        flat_capped = [v for row in capped.cells for v in row]
        for i, (f, c) in enumerate(zip(flat_full, flat_capped)):
            if i < 3:
                assert is_missing(f) == is_missing(c)
            else:
                assert is_missing(c)

    def test_zero_deadline_yields_partial_result(self, warehouse):
        result = warehouse.query(self.QUERY, budget=QueryBudget(deadline_ms=0))
        assert result.is_partial
        assert result.degradations[0].reason == "deadline"
        assert all(is_missing(v) for row in result.cells for v in row)
        assert result.degradations[0].cells_evaluated == 0

    def test_unlimited_budget_is_complete(self, warehouse):
        result = warehouse.query(self.QUERY, budget=QueryBudget())
        assert not result.is_partial
        assert result.degradations == []

    def test_partial_result_renders_with_note(self, warehouse):
        result = warehouse.query(self.QUERY, budget=QueryBudget(max_cells=1))
        assert "[partial:" in result.to_text()

    def test_degradation_is_structured(self, warehouse):
        result = warehouse.query(self.QUERY, budget=QueryBudget(max_cells=1))
        record = result.degradations[0].to_dict()
        assert record["reason"] == "cell-cap"
        assert record["cells_evaluated"] == 1

    def test_budget_breach_in_axis_filter_raises_typed(self, warehouse):
        from repro.errors import QueryBudgetExceededError

        query = """
            SELECT {Time.[Jan]} ON COLUMNS,
                   {Filter({[Lisa], [Sue]}, ([Salary]) > 0)} ON ROWS
            FROM Warehouse
        """
        with pytest.raises(QueryBudgetExceededError) as info:
            warehouse.query(query, budget=QueryBudget(max_cells=1))
        assert info.value.reason == "cell-cap"
