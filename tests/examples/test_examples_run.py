"""Smoke tests: every example script runs cleanly and prints its story."""

from __future__ import annotations

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "FTE/Joe" in out
    assert "Contractor/Joe" in out
    # The Fig. 4 inheritance: PTE/Joe shows 30 for March.
    assert "PTE/Joe" in out


def test_workforce_planning():
    out = run_example("workforce_planning.py")
    assert "variance" in out
    assert "Conclusion" in out
    # The story: hypothetical variance collapses.
    assert "caused by the structural changes" in out


def test_product_restructuring():
    out = run_example("product_restructuring.py")
    assert "Hypothetical family totals" in out
    assert "Margin" in out
    assert "Soundbar" in out


def test_chunk_pebbling_demo():
    out = run_example("chunk_pebbling_demo.py")
    assert "heuristic max pebbles: 3" in out
    assert "optimal pebbles      : 3" in out
    assert "Lemma 5.1" in out


def test_location_what_if():
    out = run_example("location_what_if.py")
    assert "PTE/Lisa" in out
    assert "unordered" in out  # the rejected-dynamic-semantics message


def test_optimizer_and_compression():
    out = run_example("optimizer_and_compression.py")
    assert "push-select-through-perspective" in out
    assert "same result" in out
    assert "lossless roundtrip: True" in out


def test_analyst_walkthrough():
    out = run_example("analyst_walkthrough.py")
    assert "Top movers" in out
    assert "reloaded cube has" in out
    assert "YTD under the frozen-January structure" in out
    assert "ratio" in out
