"""Workload generators: the paper's running example, the Sec. 6 workforce
planning dataset (scaled), and a retail dataset mirroring Fig. 7 for the
chunk-merging experiments."""

from repro.workload.running_example import (
    MONTHS,
    QUARTERS,
    RunningExample,
    build_running_example,
)

__all__ = ["MONTHS", "QUARTERS", "RunningExample", "build_running_example"]
