"""The Sec. 6 workforce-planning workload, scaled and seeded.

The paper's dataset: a real customer application with **7 dimensions** —
20,250 employees rolling up into 51 departments in one (varying) dimension,
a 12-month Time dimension, 100 measures (accounts), 5 business scenarios —
where 250 employees (~1%) change departments 1–11 times over the year.
The Fig. 10 queries additionally reference Currency ``[Local]``, Version
``[BU Version_1]`` and ``[HSP_InputValue]``, so our schema is:

    Department* (departments → employees, varying over Period)
    Period    (4 quarters → 12 months, ordered)
    Account   (measure accounts, one rollup level)
    Scenario  ([Current], ...)
    Currency  ([Local], ...)
    Version   ([BU Version_1], ...)
    Value     ([HSP_InputValue], ...)

Everything is scaled by :class:`WorkforceConfig`; defaults are test-sized,
benchmarks pass larger configs.  All randomness is seeded.

The named sets of Fig. 10 (``EmployeesWithAtleastOneMove-Set1..3`` and the
single two-instance ``EmployeeS3``) are defined on the warehouse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.merge_graph import VaryingAxisSpec
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.instances import VaryingDimension
from repro.olap.schema import CubeSchema
from repro.storage.array_cube import Axis, ChunkedCube
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.storage.io_stats import IoCostModel
from repro.warehouse import Warehouse

__all__ = ["WorkforceConfig", "WorkforceWarehouse", "build_workforce"]

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
QUARTERS = ("Q1", "Q2", "Q3", "Q4")


@dataclass(frozen=True)
class WorkforceConfig:
    """Scale knobs; paper-scale values in comments."""

    n_employees: int = 120        # paper: 20,250
    n_departments: int = 8        # paper: 51
    n_changing: int = 12          # paper: 250 (~1%)
    max_moves: int = 4            # paper: between 1 and 11
    #: force exactly this many moves per changing employee (Fig. 13 uses
    #: employees with exactly 4 reporting-structure changes); None = random
    #: in [1, max_moves].
    exact_moves: int | None = None
    n_accounts: int = 6           # paper: 100 measures
    n_scenarios: int = 2          # paper: 5
    seed: int = 42
    #: fraction of (employee, month, account) cells holding data for
    #: non-changing employees (changing employees are always fully filled
    #: so the queries of Sec. 6 have work to do).
    density: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.n_changing <= self.n_employees:
            raise ValueError("n_changing must be in (0, n_employees]")
        if self.n_departments < 2:
            raise ValueError("need at least two departments to move between")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError("density must be within [0, 1]")
        if self.exact_moves is not None and not 1 <= self.exact_moves <= 11:
            raise ValueError("exact_moves must be within [1, 11]")


@dataclass
class WorkforceWarehouse:
    """The generated warehouse plus handles used by benchmarks."""

    config: WorkforceConfig
    warehouse: Warehouse
    employee_varying: VaryingDimension
    changing_employees: list[str]
    departments: list[str]
    accounts: list[str]
    scenarios: list[str]
    moves: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    @property
    def schema(self) -> CubeSchema:
        return self.warehouse.schema

    @property
    def cube(self) -> Cube:
        return self.warehouse.cube

    # -- chunked physical organisation -----------------------------------------

    def chunked(
        self,
        chunk_shape: Sequence[int] | None = None,
        cost_model: IoCostModel | None = None,
    ) -> tuple[ChunkedCube, VaryingAxisSpec]:
        """Materialise the cube into the chunked store (Sec. 6's physical
        organisation) and return it with its varying-axis metadata.

        Employee-axis slots are laid out in outline order — grouped by
        department — so the instances of a changing employee live in
        *different* regions of the axis, exactly the physical separation
        the Fig. 12 experiment manipulates.
        """
        varying = self.employee_varying
        slot_records: list[tuple[int, str, str]] = []  # (dept idx, label, member)
        dept_index = {name: i for i, name in enumerate(self.departments)}
        validity_of_slot = {}
        employee_dim = self.schema.dimension("Department")
        for leaf in employee_dim.leaf_members():
            for instance in varying.instances_of(leaf.name):
                dept = instance.path[-2]
                slot_records.append(
                    (dept_index[dept], instance.full_path, leaf.name)
                )
                validity_of_slot[instance.full_path] = instance.validity
        slot_records.sort(key=lambda rec: (rec[0], rec[1]))
        labels = [label for _, label, _ in slot_records]
        member_of_slot = {label: member for _, label, member in slot_records}

        axes = [
            Axis("Department", labels),
            Axis("Period", list(MONTHS)),
            Axis("Account", self.accounts),
            Axis("Scenario", self.scenarios),
            Axis("Currency", ["Local"]),
            Axis("Version", ["BU Version_1"]),
            Axis("Value", ["HSP_InputValue"]),
        ]
        if chunk_shape is None:
            chunk_shape = (
                max(1, min(16, len(labels))),
                3,
                len(self.accounts),
                len(self.scenarios),
                1,
                1,
                1,
            )
        sizes = tuple(len(a) for a in axes)
        grid = ChunkGrid(sizes, chunk_shape)
        store = ChunkStore(grid, cost_model)
        pending: dict[tuple[int, ...], np.ndarray] = {}
        schema = self.schema
        addr_index = {
            name: schema.dim_index(name)
            for name in (
                "Department", "Period", "Account", "Scenario",
                "Currency", "Version", "Value",
            )
        }
        label_index = {a.name: {lab: i for i, lab in enumerate(a.labels)} for a in axes}
        axis_order = [a.name for a in axes]
        for addr, value in self.cube.leaf_cells():
            cell = tuple(
                label_index[name][addr[addr_index[name]]] for name in axis_order
            )
            coord = grid.chunk_of_cell(cell)
            chunk = pending.get(coord)
            if chunk is None:
                chunk = grid.empty_chunk(coord).data
                pending[coord] = chunk
            origin = grid.chunk_origin(coord)
            local = tuple(c - o for c, o in zip(cell, origin))
            chunk[local] = value
        for coord in sorted(
            pending, key=lambda c: grid.linear_index(c, grid.default_order())
        ):
            store.load(coord, pending[coord])
        cube = ChunkedCube(axes, store)
        spec = VaryingAxisSpec(
            cube, "Department", "Period", member_of_slot, validity_of_slot
        )
        return cube, spec


def _build_dimensions(config: WorkforceConfig) -> tuple[CubeSchema, list, list, list]:
    employee = Dimension("Department")
    departments = [f"Dept{d:03d}" for d in range(config.n_departments)]
    employee.add_children(None, departments)

    period = Dimension("Period", ordered=True)
    for quarter_index, quarter in enumerate(QUARTERS):
        period.add_member(quarter)
        for month in MONTHS[quarter_index * 3 : quarter_index * 3 + 3]:
            period.add_member(month, quarter)

    account = Dimension("Account", is_measures=True)
    accounts = [f"Acct{a:03d}" for a in range(config.n_accounts)]
    account.add_member("AllAccounts")
    account.add_children("AllAccounts", accounts)

    scenario = Dimension("Scenario")
    scenarios = ["Current"] + [f"Scenario{i}" for i in range(1, config.n_scenarios)]
    scenario.add_children(None, scenarios)

    currency = Dimension("Currency")
    currency.add_children(None, ["Local"])
    version = Dimension("Version")
    version.add_children(None, ["BU Version_1"])
    value = Dimension("Value")
    value.add_children(None, ["HSP_InputValue"])

    schema = CubeSchema(
        [employee, period, account, scenario, currency, version, value]
    )
    return schema, departments, accounts, scenarios


def build_workforce(config: WorkforceConfig | None = None) -> WorkforceWarehouse:
    """Generate the (scaled) Sec. 6 warehouse deterministically."""
    config = config or WorkforceConfig()
    rng = np.random.default_rng(config.seed)
    schema, departments, accounts, scenarios = _build_dimensions(config)
    employee_dim = schema.dimension("Department")

    employees = [f"e{i:05d}" for i in range(config.n_employees)]
    home_department = {}
    for index, name in enumerate(employees):
        dept = departments[index % len(departments)]
        employee_dim.add_member(name, dept)
        home_department[name] = dept

    varying = schema.make_varying("Department", "Period")
    changing = list(
        rng.choice(config.n_employees, size=config.n_changing, replace=False)
    )
    changing_names = [employees[i] for i in sorted(changing)]
    moves: dict[str, list[tuple[str, int]]] = {}
    for name in changing_names:
        varying.assign(name, home_department[name])
        if config.exact_moves is not None:
            n_moves = config.exact_moves
        else:
            n_moves = int(rng.integers(1, config.max_moves + 1))
        months = sorted(
            rng.choice(np.arange(1, 12), size=min(n_moves, 11), replace=False)
        )
        moves[name] = []
        current = home_department[name]
        for month in months:
            choices = [d for d in departments if d != current]
            target = choices[int(rng.integers(0, len(choices)))]
            varying.reparent(name, target, int(month))
            moves[name].append((target, int(month)))
            current = target

    cube = Cube(schema)
    changing_set = set(changing_names)
    for name in employees:
        filled = name in changing_set or rng.random() < config.density
        if not filled:
            continue
        for instance in varying.instances_of(name):
            path = instance.full_path
            for t in instance.validity:
                month = MONTHS[t]
                for account_name in accounts:
                    for scenario_name in scenarios:
                        value = float(
                            np.round(50 + 50 * rng.random(), 2)
                        )
                        cube.set_value(
                            (
                                path,
                                month,
                                account_name,
                                scenario_name,
                                "Local",
                                "BU Version_1",
                                "HSP_InputValue",
                            ),
                            value,
                        )

    warehouse = Warehouse(schema, cube, name="Db", aliases={"App", "Warehouse"})
    thirds = max(1, (len(changing_names) + 2) // 3)
    warehouse.define_named_set(
        "EmployeesWithAtleastOneMove-Set1", changing_names[:thirds]
    )
    warehouse.define_named_set(
        "EmployeesWithAtleastOneMove-Set2", changing_names[thirds : 2 * thirds]
    )
    warehouse.define_named_set(
        "EmployeesWithAtleastOneMove-Set3", changing_names[2 * thirds :]
    )
    two_instance = next(
        (
            name
            for name in changing_names
            if len(varying.instances_of(name)) == 2
        ),
        changing_names[0],
    )
    warehouse.define_named_set("EmployeeS3", [two_instance])

    return WorkforceWarehouse(
        config=config,
        warehouse=warehouse,
        employee_varying=varying,
        changing_employees=changing_names,
        departments=departments,
        accounts=accounts,
        scenarios=scenarios,
        moves=moves,
    )
