"""Retail (product x time x location) workload in the style of Fig. 7.

Fig. 7 shows a Location=NY slice of a Product x Time cube where product
1001 is reclassified across product groups over the year — rows 100/1001,
200/1001, 300/1001 are separate member-instance rows of the chunked array.
:func:`fig7_example` builds exactly that shape; :func:`build_retail`
generalises it (N product groups, configurable varying products and move
counts, seeded), which the ablation benchmarks use to stress chunk merging
and pebbling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.merge_graph import VaryingAxisSpec
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.instances import VaryingDimension
from repro.olap.schema import CubeSchema
from repro.storage.array_cube import Axis, ChunkedCube
from repro.storage.io_stats import IoCostModel
from repro.warehouse import Warehouse

__all__ = ["RetailConfig", "RetailWarehouse", "build_retail", "fig7_example"]

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


@dataclass(frozen=True)
class RetailConfig:
    """Scale knobs for the generalised retail workload."""

    n_groups: int = 3
    products_per_group: int = 4
    n_varying: int = 2
    max_moves: int = 3
    n_locations: int = 2
    seed: int = 13

    def __post_init__(self) -> None:
        if self.n_groups < 2:
            raise ValueError("need at least two product groups")
        total = self.n_groups * self.products_per_group
        if not 0 <= self.n_varying <= total:
            raise ValueError("n_varying outside product count")


@dataclass
class RetailWarehouse:
    config: RetailConfig
    warehouse: Warehouse
    product_varying: VaryingDimension
    groups: list[str]
    products: list[str]
    varying_products: list[str]
    locations: list[str]

    @property
    def schema(self) -> CubeSchema:
        return self.warehouse.schema

    @property
    def cube(self) -> Cube:
        return self.warehouse.cube

    def chunked(
        self,
        chunk_shape: Sequence[int] | None = None,
        cost_model: IoCostModel | None = None,
    ) -> tuple[ChunkedCube, VaryingAxisSpec]:
        """Chunked organisation with product slots grouped by group (the
        Fig. 7 row layout)."""
        varying = self.product_varying
        group_index = {name: i for i, name in enumerate(self.groups)}
        records: list[tuple[int, str, str]] = []
        validity = {}
        for product in self.products:
            for instance in varying.instances_of(product):
                records.append(
                    (group_index[instance.path[-2]], instance.full_path, product)
                )
                validity[instance.full_path] = instance.validity
        records.sort(key=lambda rec: (rec[0], rec[1]))
        labels = [label for _, label, _ in records]
        member_of_slot = {label: member for _, label, member in records}
        axes = [
            Axis("Product", labels),
            Axis("Time", list(MONTHS)),
            Axis("Location", self.locations),
        ]
        if chunk_shape is None:
            chunk_shape = (max(1, len(labels) // 4), 3, len(self.locations))
        chunked = ChunkedCube.build(
            axes,
            ((addr[:3], value) for addr, value in self.cube.leaf_cells()),
            chunk_shape,
            cost_model,
        )
        return chunked, VaryingAxisSpec(
            chunked, "Product", "Time", member_of_slot, validity
        )


def build_retail(config: RetailConfig | None = None) -> RetailWarehouse:
    """Generate the retail warehouse deterministically."""
    config = config or RetailConfig()
    rng = np.random.default_rng(config.seed)

    product_dim = Dimension("Product")
    groups = [str(100 * (g + 1)) for g in range(config.n_groups)]
    product_dim.add_children(None, groups)
    products: list[str] = []
    home: dict[str, str] = {}
    for g, group in enumerate(groups):
        for p in range(config.products_per_group):
            name = f"{group}{p + 1:02d}"
            product_dim.add_member(name, group)
            products.append(name)
            home[name] = group

    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)

    location = Dimension("Location")
    locations = [f"L{i}" for i in range(config.n_locations)]
    location.add_children(None, locations)

    schema = CubeSchema([product_dim, time, location])
    varying = schema.make_varying("Product", "Time")

    chosen = rng.choice(len(products), size=config.n_varying, replace=False)
    varying_products = [products[i] for i in sorted(chosen)]
    for name in varying_products:
        varying.assign(name, home[name])
        n_moves = int(rng.integers(1, config.max_moves + 1))
        months = sorted(
            rng.choice(np.arange(1, 12), size=min(n_moves, 11), replace=False)
        )
        current = home[name]
        for month in months:
            choices = [g for g in groups if g != current]
            target = choices[int(rng.integers(0, len(choices)))]
            varying.reparent(name, target, int(month))
            current = target

    cube = Cube(schema)
    for name in products:
        for instance in varying.instances_of(name):
            for t in instance.validity:
                for loc in locations:
                    value = float(rng.integers(5, 50))
                    cube.set_value((instance.full_path, MONTHS[t], loc), value)

    warehouse = Warehouse(schema, cube, name="Retail")
    return RetailWarehouse(
        config=config,
        warehouse=warehouse,
        product_varying=varying,
        groups=groups,
        products=products,
        varying_products=varying_products,
        locations=locations,
    )


def fig7_example() -> RetailWarehouse:
    """The exact Fig. 7 shape: product 1001 under group 300 for Jan-Apr,
    group 200 for May-Aug, group 100 for Sep-Dec; 1002/2001/3001 static."""
    product_dim = Dimension("Product")
    product_dim.add_children(None, ["100", "200", "300"])
    product_dim.add_member("1001", "300")
    product_dim.add_member("1002", "100")
    product_dim.add_member("2001", "200")
    product_dim.add_member("3001", "300")

    time = Dimension("Time", ordered=True)
    for month in MONTHS:
        time.add_member(month)

    location = Dimension("Location")
    location.add_children(None, ["NY"])

    schema = CubeSchema([product_dim, time, location])
    varying = schema.make_varying("Product", "Time")
    varying.assign("1001", "300")
    varying.reparent("1001", "200", "May")
    varying.reparent("1001", "100", "Sep")

    cube = Cube(schema)
    for product in ("1001", "1002", "2001", "3001"):
        for instance in varying.instances_of(product):
            for t in instance.validity:
                cube.set_value((instance.full_path, MONTHS[t], "NY"), 10.0)

    warehouse = Warehouse(schema, cube, name="Retail")
    return RetailWarehouse(
        config=RetailConfig(),
        warehouse=warehouse,
        product_varying=varying,
        groups=["100", "200", "300"],
        products=["1001", "1002", "2001", "3001"],
        varying_products=["1001"],
        locations=["NY"],
    )
