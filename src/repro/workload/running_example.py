"""The paper's running example (Fig. 1 and Fig. 2).

Four dimensions — Organization (varying over Time), Location, Time
(ordered), Measures — with employee Joe reclassified FTE → PTE →
Contractor over the year and invalid ("possible vacation") in May, exactly
as Sec. 2 narrates:

* VS(FTE/Joe) = {Jan}
* VS(PTE/Joe) = {Feb}
* VS(Contractor/Joe) = {Mar, Apr, Jun, ..., Dec} (no May)

The printed figure's cell values are illegible in the available scan, so
the data below is *adapted*: values are chosen to satisfy every numeric
fact the prose states — in particular, ``(Contractor/Joe, Mar, NY, Salary)
= 30`` so that the forward-visual example of Fig. 4 reproduces the paper's
"(PTE/Joe, Mar) has value 30, inherited from (Contractor/Joe, Mar)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.olap.cube import Cube
from repro.olap.dimension import Dimension
from repro.olap.instances import VaryingDimension
from repro.olap.rules import RuleEngine
from repro.olap.schema import CubeSchema

__all__ = ["RunningExample", "build_running_example", "MONTHS", "QUARTERS"]

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
QUARTERS = ("Qtr1", "Qtr2", "Qtr3", "Qtr4")


@dataclass
class RunningExample:
    """The built warehouse pieces for the running example."""

    schema: CubeSchema
    cube: Cube
    org: VaryingDimension
    organization: Dimension
    location: Dimension
    time: Dimension
    measures: Dimension
    rules: RuleEngine


def _build_time() -> Dimension:
    time = Dimension("Time", ordered=True)
    for quarter_index, quarter in enumerate(QUARTERS):
        time.add_member(quarter)
        for month in MONTHS[quarter_index * 3 : quarter_index * 3 + 3]:
            time.add_member(month, quarter)
    return time


def _build_location() -> Dimension:
    location = Dimension("Location")
    location.add_children(None, ["East", "West", "South"])
    location.add_children("East", ["NY", "MA", "NH"])
    location.add_children("West", ["CA", "OR", "WA"])
    # Fig. 1 lists no children under South; we add two so South is a real
    # non-leaf region (a childless member would degenerate to a leaf).
    location.add_children("South", ["TX", "FL"])
    return location


def _build_measures() -> Dimension:
    measures = Dimension("Measures", is_measures=True)
    measures.add_children(None, ["Compensation", "Productivity"])
    measures.add_children("Compensation", ["Salary", "Benefits"])
    measures.add_children("Productivity", ["Products", "Services"])
    return measures


def _build_organization() -> Dimension:
    organization = Dimension("Organization")
    organization.add_children(None, ["FTE", "PTE", "Contractor"])
    organization.add_children("FTE", ["Joe", "Lisa", "Sue"])
    organization.add_children("PTE", ["Tom", "Dave"])
    organization.add_children("Contractor", ["Jane"])
    return organization


def build_running_example() -> RunningExample:
    """Build the Fig. 1/2 warehouse with Joe's reclassification history."""
    organization = _build_organization()
    location = _build_location()
    time = _build_time()
    measures = _build_measures()

    schema = CubeSchema([organization, location, time, measures])
    org = schema.make_varying("Organization", "Time")

    # Joe: FTE in Jan, PTE in Feb, Contractor from Mar on, invalid in May.
    org.assign("Joe", "FTE")
    org.reparent("Joe", "PTE", "Feb")
    org.reparent("Joe", "Contractor", "Mar")
    org.set_invalid("Joe", ["May"])

    rules = RuleEngine(schema)
    cube = Cube(schema, rules)

    def put(instance_path: str, location_name: str, month: str,
            measure: str, value: float) -> None:
        cube.set_value(
            schema.address(
                Organization=instance_path,
                Location=location_name,
                Time=month,
                Measures=measure,
            ),
            value,
        )

    # Joe's salary under his three instances (NY plus a little MA data so
    # the Fig. 3 query has two interesting rows).
    put("Organization/FTE/Joe", "NY", "Jan", "Salary", 10)
    put("Organization/FTE/Joe", "MA", "Jan", "Salary", 5)
    put("Organization/PTE/Joe", "NY", "Feb", "Salary", 10)
    put("Organization/PTE/Joe", "MA", "Feb", "Salary", 5)
    put("Organization/Contractor/Joe", "NY", "Mar", "Salary", 30)
    put("Organization/Contractor/Joe", "MA", "Mar", "Salary", 15)
    put("Organization/Contractor/Joe", "NY", "Apr", "Salary", 20)
    put("Organization/Contractor/Joe", "NY", "Jun", "Salary", 20)

    # Static colleagues: flat salaries Jan-Jun in NY, benefits of 2.
    for month in MONTHS[:6]:
        put("Organization/FTE/Lisa", "NY", month, "Salary", 10)
        put("Organization/PTE/Tom", "NY", month, "Salary", 10)
        put("Organization/Contractor/Jane", "NY", month, "Salary", 10)
        put("Organization/FTE/Lisa", "NY", month, "Benefits", 2)
        put("Organization/PTE/Tom", "NY", month, "Benefits", 2)
    return RunningExample(
        schema=schema,
        cube=cube,
        org=org,
        organization=organization,
        location=location,
        time=time,
        measures=measures,
        rules=rules,
    )
