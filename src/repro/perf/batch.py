"""Batched MDX grid evaluation.

The naive evaluator resolves every result cell independently:
``schema.address(**coords)`` + ``view.effective_value`` per cell, where
each derived cell re-derives its scope from scratch.  This module fills
the whole grid in one pass with the per-cell work hoisted out:

* the base address (defaults + slicer) is built once, row/column patches
  are applied positionally;
* per-coordinate leafness is memoised, so the leaf/derived split of an
  address is O(n_dims) dict probes;
* leaf cells are served from the rollup index's columnar value planes
  whenever the leaf cube already carries an index (falling back to the
  semantic dict otherwise — leaf-only grids never build an index just
  for point reads); stored aggregates are read straight out of the
  cube's dicts;
* default-rollup derived cells are resolved **memo-first** against the
  :class:`~repro.perf.rollup_index.RollupIndex`: the index's live memo
  table answers repeat addresses with one lock-free dict probe before any
  scope work happens (profiling showed the warm path spending ~40% of its
  time intersecting scopes for cells whose value was already memoised);
* memo misses are served as *axis planes* over the columnar kernel: when
  every column tuple binds the same dimensions (the overwhelmingly common
  grid shape), each row's boolean scope mask is computed once and each
  column's once per query, and a cell's scope is one vector AND + a
  fancy-indexed plane gather (:meth:`RollupIndex.rollup_axes`) — instead
  of per-cell set intersections and generator sums.

Semantics are preserved exactly: cells are produced in row-major order,
the ``mdx.cell`` failpoint fires once per *evaluated* cell in that order,
and budget degradation is cell-exact on both budget kinds — cap-only
budgets are charged per row with exact cell counts
(:meth:`~repro.mdx.budget.BudgetTracker.charge_cells`), while any budget
carrying a wall-clock deadline is charged per cell
(:meth:`~repro.mdx.budget.BudgetTracker.charge_cell`), because a row
granted in one batch could otherwise keep evaluating past a deadline
that trips mid-row and report more ``cells_evaluated`` (and fewer
``cells_skipped``) than the per-cell path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence, TypeAlias

from repro.faults import FAULTS
from repro.olap.missing import MISSING, Missing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mdx.budget import BudgetTracker
    from repro.olap.schema import CubeSchema

__all__ = ["evaluate_grid"]

Address = tuple[str, ...]
CellValue: TypeAlias = "float | Missing"


def _split_view(view: Any) -> tuple[Any, Any]:
    """(leaf cube, aggregate cube) of a view — a WhatIfCube routes leaf
    reads and aggregate reads to different cubes; a plain Cube is both."""
    leaf_cube = getattr(view, "leaf_cube", view)
    aggregate_cube = getattr(view, "aggregate_cube", view)
    return leaf_cube, aggregate_cube


def evaluate_grid(
    view: Any,
    schema: "CubeSchema",
    base_coords: Mapping[str, str],
    rows: "Sequence[Any]",
    columns: "Sequence[Any]",
    tracker: "BudgetTracker | None",
    failpoint: str,
) -> tuple[list[list[CellValue]], int, dict[str, int]]:
    """Fill the result grid for ``rows`` x ``columns`` axis tuples.

    ``base_coords`` maps every dimension to its default/slicer coordinate;
    row and column coordinates are patched on top (columns last, matching
    the per-cell evaluator's dict-update order).  Returns
    ``(cells, cells_skipped, stats)``.
    """
    dims = schema.dimensions
    n_dims = schema.n_dims
    dim_index = {d.name: i for i, d in enumerate(dims)}
    base = [base_coords[d.name] for d in dims]

    leaf_cube, agg_cube = _split_view(view)
    leaf_store = leaf_cube._leaf_cells
    leaf_stored_derived = leaf_cube._stored_derived
    agg_leaf_store = agg_cube._leaf_cells
    agg_stored_derived = agg_cube._stored_derived
    leaf_rules = leaf_cube.rules
    agg_rules = agg_cube.rules

    # Leaf point reads are routed through the columnar planes whenever the
    # leaf cube already carries an index (the planes mirror exactly the
    # dict the rollup kernel trusts); leaf-only grids never build an index
    # just for this and keep reading the semantic dict.
    leaf_read = None
    if leaf_cube.has_rollup_index:
        leaf_read = leaf_cube.rollup_index().leaf_reader(leaf_store)

    # the failpoint hook, bound once: its disarmed fast path is a single
    # dict probe, and skipping the module-level wrapper saves a call frame
    # on every evaluated cell
    faults_hit = FAULTS.hit

    # -- memoised coordinate leafness -------------------------------------------
    leaf_flag: dict[tuple[int, str], bool] = {}

    def coord_is_leaf(i: int, coord: str) -> bool:
        key = (i, coord)
        flag = leaf_flag.get(key)
        if flag is None:
            flag = schema.coordinate_is_leaf(i, coord)
            leaf_flag[key] = flag
        return flag

    base_flags = [coord_is_leaf(i, coord) for i, coord in enumerate(base)]

    # -- per-axis patches --------------------------------------------------------
    row_patches = [
        [(dim_index[dim], coord) for dim, coord in r.coordinates] for r in rows
    ]
    col_patches = [
        [(dim_index[dim], coord) for dim, coord in c.coordinates] for c in columns
    ]

    # Plane mode: every column tuple binds the same dimension set, so a
    # row's scope mask (over the remaining dimensions) can be shared
    # across all its cells.
    col_dim_sets = [frozenset(i for i, _ in patch) for patch in col_patches]
    plane_mode = bool(col_patches) and all(
        s == col_dim_sets[0] for s in col_dim_sets
    )
    col_dims = col_dim_sets[0] if plane_mode else frozenset()
    col_all_leaf = [
        all(coord_is_leaf(i, coord) for i, coord in patch)
        for patch in col_patches
    ]

    index = None  # built lazily: leaf-only grids never pay for it
    memo: "dict[Address, CellValue] | None" = None
    col_scopes: list = [None] * len(columns)
    col_scope_ready = [False] * len(columns)

    stats = {"cells_evaluated": 0, "cells_skipped": 0, "indexed_rollups": 0}
    cells: list[list[CellValue]] = []
    cells_skipped = 0

    # Deadline budgets are charged per cell: a whole row granted up front
    # could breach the deadline mid-row yet keep evaluating, reporting
    # different cells_evaluated/cells_skipped than the per-cell loop.
    per_cell_charging = (
        tracker is not None and tracker.budget.deadline_ms is not None
    )

    for row_patch in row_patches:
        row_addr = list(base)
        row_flags = list(base_flags)
        for i, coord in row_patch:
            row_addr[i] = coord
            row_flags[i] = coord_is_leaf(i, coord)
        if plane_mode:
            row_leaf_outside = all(
                row_flags[i] for i in range(n_dims) if i not in col_dims
            )
            row_scope = None
            row_scope_ready = False
        if tracker is None:
            granted = len(columns)
        elif per_cell_charging:
            granted = -1  # sentinel: consult charge_cell() per cell
        else:
            granted = tracker.charge_cells(len(columns))

        row_cells: list[CellValue] = []
        for j, col_patch in enumerate(col_patches):
            if granted < 0:
                allowed = tracker.charge_cell()
            else:
                allowed = j < granted
            if not allowed:
                # Budget breached: remaining cells are ⊥, uncharged and
                # without fault injection — exactly the per-cell path.
                row_cells.append(MISSING)
                cells_skipped += 1
                continue
            faults_hit(failpoint)
            stats["cells_evaluated"] += 1
            addr_list = list(row_addr)
            for i, coord in col_patch:
                addr_list[i] = coord
            addr = tuple(addr_list)
            if plane_mode:
                is_leaf = row_leaf_outside and col_all_leaf[j]
            else:
                is_leaf = all(
                    coord_is_leaf(i, coord) for i, coord in enumerate(addr)
                )

            if is_leaf:
                if leaf_read is not None:
                    value = leaf_read(addr)
                else:
                    value = leaf_store.get(addr)
                if value is None:
                    value = leaf_stored_derived.get(addr)
                if value is None:
                    if leaf_rules is not None and leaf_rules.has_rule_for(
                        leaf_cube, addr
                    ):
                        value = leaf_rules.evaluate_cell(leaf_cube, addr)
                    else:
                        value = MISSING
                row_cells.append(value)
                continue

            value = agg_leaf_store.get(addr)
            if value is None:
                value = agg_stored_derived.get(addr)
            if value is not None:
                row_cells.append(value)
                continue
            if agg_rules is not None:
                row_cells.append(agg_rules.evaluate_cell(agg_cube, addr))
                continue

            # Default sum-rollup through the index, memo-first: repeat
            # addresses skip scope construction entirely.
            if index is None:
                index = agg_cube.rollup_index()
                memo = index.memo_table("sum")
            stats["indexed_rollups"] += 1
            value = memo.get(addr)
            if value is not None:
                index.count_hit()
                row_cells.append(value)
                continue
            if plane_mode:
                if not row_scope_ready:
                    row_scope = index.axis_scope(
                        [
                            (i, row_addr[i])
                            for i in range(n_dims)
                            if i not in col_dims
                        ]
                    )
                    row_scope_ready = True
                if not col_scope_ready[j]:
                    col_scopes[j] = index.axis_scope(col_patch)
                    col_scope_ready[j] = True
                row_cells.append(
                    index.rollup_axes(
                        agg_leaf_store, addr, row_scope, col_scopes[j]
                    )
                )
            else:
                row_cells.append(index.rollup(agg_leaf_store, addr))
        cells.append(row_cells)

    stats["cells_skipped"] = cells_skipped
    return cells, cells_skipped, stats
