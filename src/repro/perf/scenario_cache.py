"""LRU cache of applied what-if scenarios.

Theorem 4.1 makes every scenario a *pure* function of the base cube and
the normalised clause: negative scenarios are ``E ∘ ρ(·, Φ_sem(VS, P)) ∘ σ``
and positive scenarios ``E ∘ S(·, R)``.  Two queries whose WITH clauses
normalise to the same fingerprints therefore produce the *same*
perspective cube — so the warehouse may cache the applied
:class:`~repro.core.scenario.WhatIfCube` chain and skip
``scenario.apply`` entirely on repeats (the Fig. 11/12 workload shape:
many queries against one scenario).

Keys are the tuple of scenario fingerprints
(:meth:`NegativeScenario.fingerprint` /
:meth:`PositiveScenario.fingerprint`); each entry records the base cube's
mutation version at apply time, and a lookup against a newer version drops
the entry (counted as an invalidation).

Versions are opaque ``Hashable`` values compared by equality, not ints:
the persistent catalog (:mod:`repro.catalog`) keys its materialized
scenario cubes on the *pair* ``(base_cube.version, catalog.generation)``,
so a merge or rebase — which moves the catalog generation without
touching the base cube — still invalidates every cached cube for the
rewritten scenario (the stale-read-after-rebase bug).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.lint.lockdep import make_lock
from repro.obs.trace import trace_event, trace_span
from repro.storage.io_stats import CacheStats

__all__ = ["ScenarioCache"]

V = TypeVar("V")


class ScenarioCache(Generic[V]):
    """A small LRU keyed by (fingerprint chain), version-checked.

    Thread-safe: service workers share one warehouse cache, and an LRU is
    exactly the structure concurrent access corrupts — ``move_to_end``
    racing ``popitem`` can drop the wrong entry or raise mid-reorder.
    Every operation (including its stats counters, which must stay
    consistent with the entry map) runs under one cache lock; the values
    themselves are immutable applied-scenario tuples, so handing them out
    beyond the lock is safe.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError("ScenarioCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._lock = make_lock("ScenarioCache._lock")
        self._entries: "OrderedDict[Hashable, tuple[Hashable, V]]" = OrderedDict()

    def get(self, key: Hashable, version: Hashable) -> "V | None":
        with trace_span("scenario_cache.get"), self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                trace_event("scenario_cache.miss")
                return None
            cached_version, value = entry
            if cached_version != version:
                # The base cube (or owning catalog) moved since this
                # scenario was applied.
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                trace_event("scenario_cache.invalidated")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            trace_event("scenario_cache.hit")
            return value

    def put(self, key: Hashable, version: Hashable, value: V) -> None:
        with trace_span("scenario_cache.put"), self._lock:
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                # Capacity pressure: the LRU entry leaves.  Counted —
                # uncounted eviction churn reads as a healthy cache.
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                trace_event("scenario_cache.evicted")

    def discard(self, key: Hashable) -> None:
        """Drop one entry (counted as an invalidation if present) — for
        callers whose own validity checks fail, e.g. the warehouse cube
        object itself was swapped out."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self.stats.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScenarioCache({len(self._entries)}/{self.maxsize} entries, "
            f"{self.stats.hits} hits, {self.stats.misses} misses)"
        )
