"""Query-throughput engine: rollup indexes, scenario-cube caching, batching.

This package holds the performance layer added on top of the semantic
engine:

* :mod:`repro.perf.rollup_index` — a per-cube single-pass index that
  serves ``rollup``/``scope_values`` in O(|scope|) instead of a full leaf
  scan per derived cell, with incremental maintenance under mutation;
* :mod:`repro.perf.scenario_cache` — an LRU cache of applied what-if
  scenarios keyed by their canonical fingerprints, so repeated
  ``WITH PERSPECTIVE``/``WITH CHANGES`` queries skip ``scenario.apply``;
* :mod:`repro.perf.batch` — batched MDX grid evaluation that resolves
  axis planes against the rollup index;
* :mod:`repro.perf.config` — the global engine toggle (``naive_mode`` is
  the pre-index baseline used by benchmarks and equivalence tests).

Everything here is behaviour-preserving: with the engine on or off, query
results are bit-identical (enforced by the equivalence property tests).
"""

from typing import Any

from repro.perf.config import engine_enabled, naive_mode, set_engine_enabled

__all__ = [
    "RollupIndex",
    "ScenarioCache",
    "engine_enabled",
    "naive_mode",
    "set_engine_enabled",
]


def __getattr__(name: str) -> Any:
    # Lazy re-exports: importing them eagerly would pull repro.storage into
    # repro.olap.cube's import chain and create a cycle (cube -> perf ->
    # storage -> array_cube -> cube).
    if name == "RollupIndex":
        from repro.perf.rollup_index import RollupIndex

        return RollupIndex
    if name == "ScenarioCache":
        from repro.perf.scenario_cache import ScenarioCache

        return ScenarioCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
