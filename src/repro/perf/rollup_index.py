"""Single-pass rollup index with a vectorized columnar kernel.

The naive cost of a derived cell is one full scan of every leaf cell
(``Cube.scope_values``): for a result grid of N derived cells that is
O(N x leaves).  The :class:`RollupIndex` makes **one** pass over the leaf
cells, bucketing each leaf id under every coordinate of its per-dimension
ancestor chain (``CubeSchema.ancestor_chain``).  A scope query then
intersects the buckets of the queried coordinates and aggregates exactly
the |scope| matching leaves.

Columnar kernel
---------------
Leaf *values* are mirrored into a
:class:`~repro.storage.array_cube.ColumnarLeafStore` — chunked contiguous
``float64`` planes where plane row == leaf id (both are assigned
monotonically in insertion order and never reused).  Coordinate buckets
are lowered on demand to cached **boolean masks** over the id space; a
scope is then ``mask & mask`` + ``np.flatnonzero`` (ascending ids ==
insertion order) and aggregation is one fancy-indexed gather per touched
plane followed by :func:`~repro.olap.aggregation.reduce_array`.  In the
default ``"strict"`` reduction mode the result is bit-identical to the
naive dict scan; see :mod:`repro.perf.config`.

The vectorized path only serves a query whose value mapping *is* the
cube dict this index mirrors (identity check against the store bound at
build time) and whose mirror is in sync; any other mapping — or an index
told values changed without being given them (:meth:`touch`) — falls
back to the per-cell streaming aggregation, which is always correct.

Determinism
-----------
Leaf ids are assigned in cube insertion order and scopes are served in
ascending id order, which is exactly the iteration order of the naive
``dict``-scan.  Floating-point aggregation order is therefore identical
on both paths, making indexed results bit-identical to naive results
(the equivalence property tests assert this).

Maintenance
-----------
The index is maintained *incrementally*: ``Cube.set_value`` notifies it
of leaf insertions/deletions (bucket + plane updates) and in-place value
changes (plane write + rollup-memo flush).  Bulk transforms
(``copy``/``filter_dimension``/``map_leaf_cells``) produce cubes without
an index; it is rebuilt lazily on their first derived read.
``Cube.frozen_copy`` instead *forks* the index: structure (buckets,
id maps) is shared copy-on-write at whole-index granularity — the live
parent unshares before its first structural mutation — while value
planes share at plane granularity through ``ColumnarLeafStore.fork``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence, TypeAlias

import numpy as np

from repro.lint.lockdep import make_lock
from repro.obs.trace import trace_span
from repro.olap.aggregation import aggregate, reduce_array
from repro.olap.missing import Missing
from repro.perf import config as perf_config
from repro.storage.array_cube import ColumnarLeafStore
from repro.storage.io_stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.olap.cube import Cube
    from repro.olap.schema import CubeSchema

__all__ = ["RollupIndex"]

Address = tuple[str, ...]
CellValue: TypeAlias = "float | Missing"
#: (empty, mask) — the mask-based axis-plane scope served to the batched
#: grid evaluator; ``mask=None`` means "no constraint" (every leaf).
AxisScope: TypeAlias = "tuple[bool, np.ndarray | None]"

#: soft cap on the per-index rollup memo (total entries across all
#: aggregator/mode tables), to bound worst-case memory on long-lived
#: cubes queried at ever-changing addresses
_MEMO_CAP = 65536

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class RollupIndex:
    """Per-dimension inverted index from coordinates to leaf-cell ids.

    Thread-safety: one reentrant lock guards both incremental maintenance
    (bucket/id/plane mutation from ``Cube.set_value``) and the query paths
    that read buckets or the rollup memo — a reader intersecting a bucket
    set while a writer grows it raises ``set changed size during
    iteration``.  Queries on *frozen* snapshot cubes never contend with
    maintenance (a frozen cube cannot mutate), so the lock there is
    uncontended overhead only; for a live cube it makes interleaved
    query/mutation safe.  The one sanctioned lock-free read is the memo
    probe through :meth:`memo_table` — a single dict ``get`` on a table
    that is only ever cleared in place (atomic under the GIL).
    """

    def __init__(self, schema: "CubeSchema", *, plane_size: "int | None" = None) -> None:
        self.schema = schema
        self._plane_size = plane_size
        self.stats = CacheStats()
        self._lock = make_lock("RollupIndex._lock")
        self._id_of: dict[Address, int] = {}
        self._addr_of: dict[int, Address] = {}
        self._next_id = 0
        self._by_dim: list[dict[str, set[int]]] = [
            {} for _ in range(schema.n_dims)
        ]
        # (aggregator, reduction mode) -> {address: value}; inner tables
        # are cleared *in place* on invalidation so refs handed out via
        # memo_table() stay live
        self._memo: dict[tuple[str, str], dict[Address, CellValue]] = {}
        self._memo_count = 0
        # -- columnar kernel state ------------------------------------------
        #: leaf values mirrored as chunked planes; plane row == leaf id
        self._values = (
            ColumnarLeafStore()
            if plane_size is None
            else ColumnarLeafStore(plane_size)
        )
        #: the cube dict the planes mirror (identity-checked per query)
        self._bound: "Mapping[Address, float] | None" = None
        #: False when a value changed without being reported to the planes
        self._synced = True
        #: ascending live leaf ids (append-only between deletions: ids are
        #: assigned monotonically, so insertion keeps it sorted for free)
        self._ordered_ids: list[int] = []
        self._ordered_arr: "np.ndarray | None" = None
        #: (dim_index, coord) -> boolean mask over the id space; dropped
        #: wholesale on any structural change
        self._mask_of: dict[tuple[int, str], np.ndarray] = {}
        #: True while structure (id maps, buckets, ordered ids) is shared
        #: with a fork; the first structural mutation deep-copies it
        self._struct_shared = False

    @classmethod
    def build(cls, cube: "Cube", *, plane_size: "int | None" = None) -> "RollupIndex":
        """One pass over a cube's leaf cells.  ``plane_size`` overrides the
        value-plane chunk size (tests use tiny planes to exercise
        multi-plane and sparse layouts at small scale)."""
        with trace_span("rollup_index.build") as span:
            index = cls(cube.schema, plane_size=plane_size)
            for addr, value in cube._leaf_cells.items():
                index._insert(addr, value)
            index._bound = cube._leaf_cells  # reprolint: locked
            index.stats.builds += 1
            if span is not None:
                span.set(leaves=index.n_leaves)
        return index

    # -- maintenance ------------------------------------------------------------

    def _insert(self, addr: Address, value: "float | None") -> None:  # reprolint: locked
        # callers either hold self._lock (add_leaf) or own the only
        # reference to a not-yet-published index (build)
        ident = self._next_id
        self._next_id += 1
        self._id_of[addr] = ident
        self._addr_of[ident] = addr
        self._ordered_ids.append(ident)  # ids are monotonic: stays sorted
        if value is None:
            # legacy caller that doesn't carry values: planes go stale
            self._values.append(0.0)
            self._synced = False
        else:
            self._values.append(value)  # plane row == ident by construction
        chain = self.schema.ancestor_chain
        for i, coord in enumerate(addr):
            buckets = self._by_dim[i]
            for ancestor in chain(i, coord):
                bucket = buckets.get(ancestor)
                if bucket is None:
                    buckets[ancestor] = {ident}
                else:
                    bucket.add(ident)

    def _unshare_structure(self) -> None:  # reprolint: locked
        # called under self._lock before any structural mutation
        if not self._struct_shared:
            return
        self._id_of = dict(self._id_of)
        self._addr_of = dict(self._addr_of)
        self._by_dim = [
            {coord: set(bucket) for coord, bucket in buckets.items()}
            for buckets in self._by_dim
        ]
        self._ordered_ids = list(self._ordered_ids)
        self._struct_shared = False

    def _structural_change(self) -> None:  # reprolint: locked
        # mask + ordered-array caches describe the old id space
        self._mask_of.clear()
        self._ordered_arr = None

    def add_leaf(self, addr: Address, value: "float | None" = None) -> None:
        """A leaf cell was inserted (or re-valued) at ``addr``."""
        with self._lock:
            ident = self._id_of.get(addr)
            if ident is None:
                self._unshare_structure()
                self._structural_change()
                self._insert(addr, value)
            elif value is not None:
                self._values.update(ident, value)
            else:
                self._synced = False
            self._flush_memo()

    def remove_leaf(self, addr: Address) -> None:
        """The leaf cell at ``addr`` was deleted."""
        with self._lock:
            if addr not in self._id_of:
                return
            self._unshare_structure()
            self._structural_change()
            ident = self._id_of.pop(addr)
            del self._addr_of[ident]
            del self._ordered_ids[bisect_left(self._ordered_ids, ident)]
            self._values.delete(ident)
            chain = self.schema.ancestor_chain
            for i, coord in enumerate(addr):
                buckets = self._by_dim[i]
                for ancestor in chain(i, coord):
                    bucket = buckets.get(ancestor)
                    if bucket is not None:
                        bucket.discard(ident)
                        if not bucket:
                            del buckets[ancestor]
            self._flush_memo()

    def touch(self) -> None:
        """A leaf value changed in place *without* the new value: memoised
        rollups are stale and so is the plane mirror (it resyncs lazily
        from the bound store on the next vectorized query)."""
        with self._lock:
            self._synced = False
            self._flush_memo()

    def touch_value(self, addr: Address, value: float) -> None:
        """A leaf value changed in place to ``value``: write the plane row
        through and flush the memo; buckets are untouched (they store
        addresses, not values)."""
        with self._lock:
            ident = self._id_of.get(addr)
            if ident is None:
                self._synced = False
            else:
                self._values.update(ident, value)
            self._flush_memo()

    def _flush_memo(self) -> None:  # reprolint: locked
        for table in self._memo.values():
            table.clear()
        self._memo_count = 0

    # -- fork (snapshot copy-on-write) -------------------------------------------

    def fork(self, bound: "Mapping[Address, float] | None" = None) -> "RollupIndex":
        """A copy-on-write clone for a snapshot cube.

        Structure (id maps, buckets, ordered ids) is shared until the
        *live* side's next structural mutation (the frozen clone never
        mutates); value planes share at plane granularity through
        :meth:`ColumnarLeafStore.fork`.  ``bound`` is the clone cube's
        leaf dict — the mapping the clone's planes now mirror.
        """
        with self._lock:
            clone = RollupIndex(self.schema, plane_size=self._plane_size)
            clone._id_of = self._id_of
            clone._addr_of = self._addr_of
            clone._next_id = self._next_id
            clone._by_dim = self._by_dim
            clone._ordered_ids = self._ordered_ids
            clone._ordered_arr = self._ordered_arr
            clone._mask_of = dict(self._mask_of)
            clone._values = self._values.fork()
            clone._bound = bound if bound is not None else self._bound
            clone._synced = self._synced
            clone._memo = {
                key: dict(table) for key, table in self._memo.items()
            }
            clone._memo_count = self._memo_count
            clone._struct_shared = True
            self._struct_shared = True
            return clone

    # -- memo -------------------------------------------------------------------

    def _memo_for(self, aggregator: str, mode: str) -> dict[Address, CellValue]:  # reprolint: locked
        table = self._memo.get((aggregator, mode))
        if table is None:
            table = {}
            self._memo[(aggregator, mode)] = table
        return table

    def _memo_put(self, table: dict[Address, CellValue], address: Address, value: CellValue) -> None:  # reprolint: locked
        if self._memo_count >= _MEMO_CAP:
            self.stats.evictions += self._memo_count
            self._flush_memo()
        if address not in table:
            self._memo_count += 1
        table[address] = value

    def memo_table(self, aggregator: str = "sum") -> dict[Address, CellValue]:
        """The live memo table for ``aggregator`` under the current
        reduction mode.  Invalidation clears it *in place*, so a held
        reference is always current: a lock-free ``table.get(addr)`` is
        either a fresh value or a miss, never a stale value.  Callers
        must treat it as read-only."""
        with self._lock:
            return self._memo_for(aggregator, perf_config.reduction_mode())

    def count_hit(self) -> None:
        """Record a lock-free memo probe hit (stats only)."""
        self.stats.hits += 1

    def leaf_reader(
        self, leaf_cells: Mapping[Address, float]
    ) -> "object | None":
        """A plane-backed point-read callable for leaf cells, or ``None``
        when the planes cannot answer for ``leaf_cells`` (the index is
        bound to a different mapping, or the value mirror is out of
        sync).

        The callable maps an address to its value (``None`` = absent,
        NaN reads back as NaN — the liveness bitmap distinguishes the
        two) without taking the index lock.  Like :meth:`memo_table`,
        it snapshots the id structure once under the lock; in-place
        value updates show through (planes are written in place), and
        grid-scoped callers re-fetch per query, so its staleness
        profile matches the live memo table's.
        """
        with self._lock:
            if not self._can_vectorize(leaf_cells):
                return None
            id_of = self._id_of
            values_get = self._values.get

        def read(addr: Address) -> "float | None":
            ident = id_of.get(addr)
            if ident is None:
                return None
            return values_get(ident)

        return read

    def leaf_arrays(
        self, leaf_cells: Mapping[Address, float]
    ) -> "tuple[list[Address], np.ndarray] | None":
        """Every leaf cell as ``(addresses, values)`` in insertion order,
        the values served by one vectorized plane gather instead of a
        per-cell dict scan.  ``None`` when the planes cannot answer for
        ``leaf_cells`` (see :meth:`leaf_reader`)."""
        with self._lock:
            if not self._can_vectorize(leaf_cells):
                return None
            ids = self._ordered_array()
            addr_of = self._addr_of
            addresses = [addr_of[int(i)] for i in ids.tolist()]
            return addresses, self._values.gather(ids)

    # -- queries ----------------------------------------------------------------

    @property
    def n_leaves(self) -> int:
        return len(self._id_of)

    def candidates(self, dim_index: int, coord: str) -> "set[int] | None":
        """Leaf ids under ``coord`` on one dimension; None when empty.

        An unknown member of a non-varying dimension raises
        :class:`~repro.errors.MemberNotFoundError`, matching the contract
        of the hierarchy lookup the naive scan performs.
        """
        bucket = self._by_dim[dim_index].get(coord)
        if bucket is not None:
            return bucket
        dimension = self.schema.dimensions[dim_index]
        if not self.schema.is_varying(dimension.name):
            dimension.member(coord)  # raises MemberNotFoundError if unknown
        return None

    def _ordered_array(self) -> np.ndarray:  # reprolint: locked
        arr = self._ordered_arr
        if arr is None:
            arr = np.array(self._ordered_ids, dtype=np.int64)
            self._ordered_arr = arr
        return arr

    def _coord_mask(self, dim_index: int, coord: str) -> np.ndarray:  # reprolint: locked
        # under self._lock; bucket is known non-empty and constraining
        key = (dim_index, coord)
        mask = self._mask_of.get(key)
        if mask is None:
            bucket = self._by_dim[dim_index][coord]
            mask = np.zeros(self._next_id, dtype=np.bool_)
            mask[np.fromiter(bucket, dtype=np.int64, count=len(bucket))] = True
            self._mask_of[key] = mask
        return mask

    def _scope_ids_array(self, address: Sequence[str]) -> np.ndarray:
        # under self._lock: ascending leaf ids of a full-address scope
        n = len(self._id_of)
        if n == 0:
            return _EMPTY_IDS
        combined: "np.ndarray | None" = None
        for i, coord in enumerate(address):
            bucket = self.candidates(i, coord)
            if bucket is None:
                return _EMPTY_IDS
            if len(bucket) == n:
                continue  # the coordinate covers every leaf — no constraint
            mask = self._coord_mask(i, coord)
            combined = mask if combined is None else combined & mask
        if combined is None:
            return self._ordered_array()
        return np.flatnonzero(combined)

    def scope_ids(self, address: Sequence[str]) -> list[int]:
        """Ids of the leaf cells in a cell's scope, in insertion order."""
        with self._lock:
            return [int(i) for i in self._scope_ids_array(address)]

    def partial_scope(
        self, pairs: Sequence[tuple[int, str]]
    ) -> "tuple[bool, set[int] | None]":
        """Intersect candidate buckets for some (dim_index, coord) pairs.

        The set-based axis-plane API (kept for compatibility; the batched
        evaluator now uses the mask-based :meth:`axis_scope`).  Returns
        ``(empty, ids)``: ``empty=True`` means provably no leaf matches;
        ``ids=None`` means the pairs impose no constraint (every leaf
        matches).  The returned set may alias an internal bucket — do not
        mutate it.
        """
        with self._lock:
            if not self._id_of:
                return True, None
            n = len(self._id_of)
            constraining: list[set[int]] = []
            for dim_index, coord in pairs:
                bucket = self.candidates(dim_index, coord)
                if bucket is None:
                    return True, None
                if len(bucket) == n:
                    continue
                constraining.append(bucket)
            if not constraining:
                return False, None
            constraining.sort(key=len)
            scope = constraining[0]
            for bucket in constraining[1:]:
                scope = scope & bucket
                if not scope:
                    return True, None
            return False, scope

    @staticmethod
    def combine_scope(
        first: "tuple[bool, set[int] | None]",
        second: "tuple[bool, set[int] | None]",
    ) -> "tuple[bool, set[int] | None]":
        """Intersect two :meth:`partial_scope` results."""
        if first[0] or second[0]:
            return True, None
        if first[1] is None:
            return second
        if second[1] is None:
            return first
        scope = first[1] & second[1]
        return (not scope), scope

    def axis_scope(self, pairs: Sequence[tuple[int, str]]) -> AxisScope:
        """Mask-based :meth:`partial_scope` for the columnar kernel.

        Returns ``(empty, mask)`` where the mask is a boolean vector over
        the id space (``None`` = no constraint).  Masks are cached per
        coordinate and combined with ``&``, so a grid's row plane is one
        vector AND per row instead of a set intersection per cell.  The
        returned mask may alias a cached one — callers must not mutate it.
        """
        with self._lock:
            n = len(self._id_of)
            if n == 0:
                return True, None
            combined: "np.ndarray | None" = None
            for dim_index, coord in pairs:
                bucket = self.candidates(dim_index, coord)
                if bucket is None:
                    return True, None
                if len(bucket) == n:
                    continue
                mask = self._coord_mask(dim_index, coord)
                combined = mask if combined is None else combined & mask
            return False, combined

    def rollup_axes(
        self,
        leaf_cells: Mapping[Address, float],
        address: Address,
        row_scope: AxisScope,
        col_scope: AxisScope,
        aggregator: str = "sum",
    ) -> CellValue:
        """Aggregate the intersection of two :meth:`axis_scope` planes,
        memoised per (address, aggregator, reduction mode).  Ids resolve
        in ascending order (``np.flatnonzero``), so strict-mode results
        are bit-identical to the naive scan."""
        with self._lock:
            mode = perf_config.reduction_mode()
            table = self._memo_for(aggregator, mode)
            if address in table:
                self.stats.hits += 1
                return table[address]
            self.stats.misses += 1
            row_empty, row_mask = row_scope
            col_empty, col_mask = col_scope
            if row_empty or col_empty:
                ids = _EMPTY_IDS
            elif row_mask is None and col_mask is None:
                ids = self._ordered_array()
            elif row_mask is None:
                ids = np.flatnonzero(col_mask)
            elif col_mask is None:
                ids = np.flatnonzero(row_mask)
            else:
                ids = np.flatnonzero(row_mask & col_mask)
            value = self._reduce_ids(leaf_cells, ids, aggregator, mode)
            self._memo_put(table, address, value)
            return value

    def _reduce_ids(
        self,
        leaf_cells: Mapping[Address, float],
        ids: np.ndarray,
        aggregator: str,
        mode: str,
    ) -> CellValue:
        # under self._lock; ids ascending == insertion order
        if self._can_vectorize(leaf_cells):
            return reduce_array(aggregator, self._values.gather(ids), mode)
        addr_of = self._addr_of
        return aggregate(
            aggregator, (leaf_cells[addr_of[i]] for i in ids.tolist())
        )

    def _can_vectorize(self, leaf_cells: Mapping[Address, float]) -> bool:
        # under self._lock: planes only answer for the mapping they mirror
        if leaf_cells is not self._bound:
            return False
        if not self._synced:
            self._resync(leaf_cells)
        return self._synced

    def _resync(self, leaf_cells: Mapping[Address, float]) -> None:  # reprolint: locked
        # rebuild plane values from the bound store (one pass); reached
        # only after touch()/valueless add_leaf told us values moved
        values = self._values
        try:
            for addr, ident in self._id_of.items():
                values.update(ident, leaf_cells[addr])
        except KeyError:
            return  # mirror and store disagree structurally: stay on fallback
        self._synced = True

    def rollup_scope(
        self,
        leaf_cells: Mapping[Address, float],
        address: Address,
        scope: "tuple[bool, set[int] | None]",
        aggregator: str = "sum",
    ) -> CellValue:
        """Aggregate a precomputed set scope (:meth:`partial_scope` /
        :meth:`combine_scope`), memoised like :meth:`rollup`.  Ids are
        served in ascending order, so strict-mode results match the naive
        scan exactly."""
        with self._lock:
            mode = perf_config.reduction_mode()
            table = self._memo_for(aggregator, mode)
            if address in table:
                self.stats.hits += 1
                return table[address]
            self.stats.misses += 1
            empty, id_set = scope
            if empty:
                ids = _EMPTY_IDS
            elif id_set is None:
                ids = self._ordered_array()
            else:
                ids = np.fromiter(id_set, dtype=np.int64, count=len(id_set))
                ids.sort()
            value = self._reduce_ids(leaf_cells, ids, aggregator, mode)
            self._memo_put(table, address, value)
            return value

    def scope_addresses(self, address: Sequence[str]) -> list[Address]:
        with self._lock:
            return [
                self._addr_of[int(i)] for i in self._scope_ids_array(address)
            ]

    def iter_scope_cells(
        self, leaf_cells: Mapping[Address, float], address: Sequence[str]
    ) -> Iterator[tuple[Address, float]]:
        # Materialise under the lock: a lazy generator would read buckets
        # and values at the caller's pace, racing concurrent maintenance.
        with self._lock:
            addr_of = self._addr_of
            cells = [
                (addr_of[int(i)], leaf_cells[addr_of[int(i)]])
                for i in self._scope_ids_array(address)
            ]
        yield from cells

    def rollup(
        self,
        leaf_cells: Mapping[Address, float],
        address: Address,
        aggregator: str = "sum",
    ) -> CellValue:
        """Aggregate a cell's scope through the index, memoised per
        (address, aggregator, reduction mode) until the next leaf
        mutation."""
        with self._lock:
            mode = perf_config.reduction_mode()
            table = self._memo_for(aggregator, mode)
            if address in table:
                self.stats.hits += 1
                return table[address]
            self.stats.misses += 1
            ids = self._scope_ids_array(address)
            value = self._reduce_ids(leaf_cells, ids, aggregator, mode)
            self._memo_put(table, address, value)
            return value

    # -- introspection ----------------------------------------------------------

    @property
    def plane_store(self) -> ColumnarLeafStore:
        """The columnar value mirror (tests / bench introspection)."""
        return self._values

    def compact_planes(self, *, ceiling: "float | None" = None) -> int:
        """Re-encode cold low-density value planes as coordinate-sparse
        (see :func:`repro.core.compression.compress_plane`).  Returns the
        number of planes converted."""
        with self._lock:
            return self._values.compact(ceiling=ceiling)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(buckets) for buckets in self._by_dim]
        return f"RollupIndex({len(self._id_of)} leaves, buckets/dim={sizes})"
