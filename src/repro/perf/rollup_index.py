"""Single-pass rollup index for the semantic cube.

The naive cost of a derived cell is one full scan of every leaf cell
(``Cube.scope_values``): for a result grid of N derived cells that is
O(N x leaves).  The :class:`RollupIndex` makes **one** pass over the leaf
cells, bucketing each leaf id under every coordinate of its per-dimension
ancestor chain (``CubeSchema.ancestor_chain``).  A scope query then
intersects the buckets of the queried coordinates — O(|smallest bucket|)
set work — and aggregation streams over exactly the |scope| matching
leaves.

Determinism
-----------
Leaf ids are assigned in cube insertion order and scopes are served in
ascending id order, which is exactly the iteration order of the naive
``dict``-scan.  Floating-point aggregation order is therefore identical on
both paths, making indexed results bit-identical to naive results (the
equivalence property tests assert this).

Maintenance
-----------
The index is maintained *incrementally*: ``Cube.set_value`` notifies it of
leaf insertions/deletions (bucket updates) and in-place value changes
(rollup-memo flush only — buckets store addresses, not values, so a value
change never restructures the index).  Bulk transforms
(``copy``/``filter_dimension``/``map_leaf_cells``) produce cubes without
an index; it is rebuilt lazily on their first derived read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Sequence, TypeAlias

from repro.lint.lockdep import make_lock
from repro.obs.trace import trace_span
from repro.olap.aggregation import aggregate
from repro.olap.missing import Missing
from repro.storage.io_stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.olap.cube import Cube
    from repro.olap.schema import CubeSchema

__all__ = ["RollupIndex"]

Address = tuple[str, ...]
CellValue: TypeAlias = "float | Missing"

#: soft cap on the per-index rollup memo, to bound worst-case memory on
#: long-lived cubes queried at ever-changing addresses
_MEMO_CAP = 65536


class RollupIndex:
    """Per-dimension inverted index from coordinates to leaf-cell ids.

    Thread-safety: one reentrant lock guards both incremental maintenance
    (bucket/id mutation from ``Cube.set_value``) and the query paths that
    read buckets or the rollup memo — a reader intersecting a bucket set
    while a writer grows it raises ``set changed size during iteration``.
    Queries on *frozen* snapshot cubes never contend with maintenance (a
    frozen cube cannot mutate), so the lock there is uncontended overhead
    only; for a live cube it makes interleaved query/mutation safe.
    """

    def __init__(self, schema: "CubeSchema") -> None:
        self.schema = schema
        self.stats = CacheStats()
        self._lock = make_lock("RollupIndex._lock")
        self._id_of: dict[Address, int] = {}
        self._addr_of: dict[int, Address] = {}
        self._next_id = 0
        self._by_dim: list[dict[str, set[int]]] = [
            {} for _ in range(schema.n_dims)
        ]
        # (address, aggregator) -> value; flushed on any leaf mutation
        self._memo: dict[tuple[Address, str], CellValue] = {}

    @classmethod
    def build(cls, cube: "Cube") -> "RollupIndex":
        """One pass over a cube's leaf cells."""
        with trace_span("rollup_index.build") as span:
            index = cls(cube.schema)
            for addr in cube._leaf_cells:
                index._insert(addr)
            index.stats.builds += 1
            if span is not None:
                span.set(leaves=index.n_leaves)
        return index

    # -- maintenance ------------------------------------------------------------

    def _insert(self, addr: Address) -> None:  # reprolint: locked
        # callers either hold self._lock (add_leaf) or own the only
        # reference to a not-yet-published index (build)
        ident = self._next_id
        self._next_id += 1
        self._id_of[addr] = ident
        self._addr_of[ident] = addr
        chain = self.schema.ancestor_chain
        for i, coord in enumerate(addr):
            buckets = self._by_dim[i]
            for ancestor in chain(i, coord):
                bucket = buckets.get(ancestor)
                if bucket is None:
                    buckets[ancestor] = {ident}
                else:
                    bucket.add(ident)

    def add_leaf(self, addr: Address) -> None:
        """A leaf cell was inserted (or re-valued) at ``addr``."""
        with self._lock:
            if addr not in self._id_of:
                self._insert(addr)
            self._memo.clear()

    def remove_leaf(self, addr: Address) -> None:
        """The leaf cell at ``addr`` was deleted."""
        with self._lock:
            ident = self._id_of.pop(addr, None)
            if ident is None:
                return
            del self._addr_of[ident]
            chain = self.schema.ancestor_chain
            for i, coord in enumerate(addr):
                buckets = self._by_dim[i]
                for ancestor in chain(i, coord):
                    bucket = buckets.get(ancestor)
                    if bucket is not None:
                        bucket.discard(ident)
                        if not bucket:
                            del buckets[ancestor]
            self._memo.clear()

    def touch(self) -> None:
        """A leaf value changed in place: memoised rollups are stale, the
        bucket structure is not."""
        with self._lock:
            self._memo.clear()

    # -- queries ----------------------------------------------------------------

    @property
    def n_leaves(self) -> int:
        return len(self._id_of)

    def candidates(self, dim_index: int, coord: str) -> "set[int] | None":
        """Leaf ids under ``coord`` on one dimension; None when empty.

        An unknown member of a non-varying dimension raises
        :class:`~repro.errors.MemberNotFoundError`, matching the contract
        of the hierarchy lookup the naive scan performs.
        """
        bucket = self._by_dim[dim_index].get(coord)
        if bucket is not None:
            return bucket
        dimension = self.schema.dimensions[dim_index]
        if not self.schema.is_varying(dimension.name):
            dimension.member(coord)  # raises MemberNotFoundError if unknown
        return None

    def scope_ids(self, address: Sequence[str]) -> list[int]:
        """Ids of the leaf cells in a cell's scope, in insertion order."""
        with self._lock:
            if not self._id_of:
                return []
            n = len(self._id_of)
            constraining: list[set[int]] = []
            for i, coord in enumerate(address):
                bucket = self.candidates(i, coord)
                if bucket is None:
                    return []
                if len(bucket) == n:
                    continue  # the coordinate covers every leaf — no constraint
                constraining.append(bucket)
            if not constraining:
                return sorted(self._addr_of)
            constraining.sort(key=len)
            scope = constraining[0]
            for bucket in constraining[1:]:
                scope = scope & bucket
                if not scope:
                    return []
            return sorted(scope)

    def partial_scope(
        self, pairs: Sequence[tuple[int, str]]
    ) -> "tuple[bool, set[int] | None]":
        """Intersect candidate buckets for some (dim_index, coord) pairs.

        This is the axis-plane half of a scope query: the batched MDX
        evaluator intersects the row plane once, then combines it with each
        column's buckets via :meth:`combine_scope`.  Returns ``(empty,
        ids)``: ``empty=True`` means provably no leaf matches; ``ids=None``
        means the pairs impose no constraint (every leaf matches).  The
        returned set may alias an internal bucket — do not mutate it.
        """
        with self._lock:
            if not self._id_of:
                return True, None
            n = len(self._id_of)
            constraining: list[set[int]] = []
            for dim_index, coord in pairs:
                bucket = self.candidates(dim_index, coord)
                if bucket is None:
                    return True, None
                if len(bucket) == n:
                    continue
                constraining.append(bucket)
            if not constraining:
                return False, None
            constraining.sort(key=len)
            scope = constraining[0]
            for bucket in constraining[1:]:
                scope = scope & bucket
                if not scope:
                    return True, None
            return False, scope

    @staticmethod
    def combine_scope(
        first: "tuple[bool, set[int] | None]",
        second: "tuple[bool, set[int] | None]",
    ) -> "tuple[bool, set[int] | None]":
        """Intersect two :meth:`partial_scope` results."""
        if first[0] or second[0]:
            return True, None
        if first[1] is None:
            return second
        if second[1] is None:
            return first
        scope = first[1] & second[1]
        return (not scope), scope

    def rollup_scope(
        self,
        leaf_cells: Mapping[Address, float],
        address: Address,
        scope: "tuple[bool, set[int] | None]",
        aggregator: str = "sum",
    ) -> CellValue:
        """Aggregate a precomputed scope (:meth:`partial_scope` /
        :meth:`combine_scope`), memoised like :meth:`rollup`.  Ids are
        served in ascending order, so the float-summation order matches
        the naive scan exactly."""
        with self._lock:
            key = (address, aggregator)
            if key in self._memo:
                self.stats.hits += 1
                return self._memo[key]
            self.stats.misses += 1
            addr_of = self._addr_of
            empty, ids = scope
            if empty:
                values: "Iterator[float] | tuple[()]" = ()
            elif ids is None:
                values = (leaf_cells[addr_of[i]] for i in sorted(addr_of))
            else:
                values = (leaf_cells[addr_of[i]] for i in sorted(ids))
            value = aggregate(aggregator, values)
            if len(self._memo) >= _MEMO_CAP:
                self.stats.evictions += len(self._memo)
                self._memo.clear()
            self._memo[key] = value
            return value

    def scope_addresses(self, address: Sequence[str]) -> list[Address]:
        with self._lock:
            return [self._addr_of[i] for i in self.scope_ids(address)]

    def iter_scope_cells(
        self, leaf_cells: Mapping[Address, float], address: Sequence[str]
    ) -> Iterator[tuple[Address, float]]:
        # Materialise under the lock: a lazy generator would read buckets
        # and values at the caller's pace, racing concurrent maintenance.
        with self._lock:
            cells = [
                (self._addr_of[ident], leaf_cells[self._addr_of[ident]])
                for ident in self.scope_ids(address)
            ]
        yield from cells

    def rollup(
        self,
        leaf_cells: Mapping[Address, float],
        address: Address,
        aggregator: str = "sum",
    ) -> CellValue:
        """Aggregate a cell's scope through the index, memoised per
        (address, aggregator) until the next leaf mutation."""
        with self._lock:
            key = (address, aggregator)
            if key in self._memo:
                self.stats.hits += 1
                return self._memo[key]
            self.stats.misses += 1
            addr_of = self._addr_of
            value = aggregate(
                aggregator,
                (leaf_cells[addr_of[i]] for i in self.scope_ids(address)),
            )
            if len(self._memo) >= _MEMO_CAP:
                self.stats.evictions += len(self._memo)
                self._memo.clear()
            self._memo[key] = value
            return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(buckets) for buckets in self._by_dim]
        return f"RollupIndex({len(self._id_of)} leaves, buckets/dim={sizes})"
