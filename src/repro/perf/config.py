"""Global toggle for the query-throughput engine.

The engine (rollup index + scenario cache + batched evaluation) is on by
default.  :func:`naive_mode` restores the pre-index behaviour — a full
leaf scan per derived cell and a fresh ``scenario.apply`` per query — and
exists for two consumers:

* the throughput benchmark, which measures the engine against the naive
  baseline in one process, and
* the equivalence property tests, which assert that both paths produce
  bit-identical results.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["engine_enabled", "naive_mode", "set_engine_enabled"]

_ENGINE_ENABLED = True


def engine_enabled() -> bool:
    """Whether the rollup index / scenario cache / batched paths are on."""
    return _ENGINE_ENABLED


def set_engine_enabled(enabled: bool) -> None:
    global _ENGINE_ENABLED
    _ENGINE_ENABLED = bool(enabled)


@contextmanager
def naive_mode() -> Iterator[None]:
    """Temporarily run with the pre-index naive evaluation paths."""
    previous = _ENGINE_ENABLED
    set_engine_enabled(False)
    try:
        yield
    finally:
        set_engine_enabled(previous)
