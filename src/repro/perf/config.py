"""Global toggle for the query-throughput engine.

The engine (rollup index + scenario cache + batched evaluation) is on by
default.  :func:`naive_mode` restores the pre-index behaviour — a full
leaf scan per derived cell and a fresh ``scenario.apply`` per query — and
exists for two consumers:

* the throughput benchmark, which measures the engine against the naive
  baseline in one process, and
* the equivalence property tests, which assert that both paths produce
  bit-identical results.

Reduction mode
--------------
The columnar kernel reduces gathered value planes in one of two modes.
``"strict"`` (the default) reduces in insertion-order id sequence with a
sequential fold and is **bit-identical** to the naive scan — this is the
contract the tests and the perf equivalence harness rely on.  ``"fast"``
uses numpy's pairwise reductions: exactly equal on integer-valued
workloads, and within :func:`fast_tolerance` otherwise.  Use
:func:`fast_reduction` to opt a scope into the fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "engine_enabled",
    "fast_reduction",
    "fast_tolerance",
    "naive_mode",
    "reduction_mode",
    "set_engine_enabled",
    "set_fast_tolerance",
    "set_reduction_mode",
]

_ENGINE_ENABLED = True
_REDUCTION_MODE = "strict"
_FAST_TOLERANCE = 1e-9
_REDUCTION_MODES = ("strict", "fast")


def engine_enabled() -> bool:
    """Whether the rollup index / scenario cache / batched paths are on."""
    return _ENGINE_ENABLED


def set_engine_enabled(enabled: bool) -> None:
    global _ENGINE_ENABLED
    _ENGINE_ENABLED = bool(enabled)


@contextmanager
def naive_mode() -> Iterator[None]:
    """Temporarily run with the pre-index naive evaluation paths."""
    previous = _ENGINE_ENABLED
    set_engine_enabled(False)
    try:
        yield
    finally:
        set_engine_enabled(previous)


def reduction_mode() -> str:
    """Active columnar reduction mode: ``"strict"`` or ``"fast"``."""
    return _REDUCTION_MODE


def set_reduction_mode(mode: str) -> None:
    global _REDUCTION_MODE
    if mode not in _REDUCTION_MODES:
        raise ValueError(
            f"unknown reduction mode {mode!r}; expected one of {_REDUCTION_MODES}"
        )
    _REDUCTION_MODE = mode


def fast_tolerance() -> float:
    """Absolute tolerance the fast reduction mode is held to on
    non-integer workloads (integer workloads are exactly equal)."""
    return _FAST_TOLERANCE


def set_fast_tolerance(tolerance: float) -> None:
    global _FAST_TOLERANCE
    if tolerance < 0:
        raise ValueError("fast tolerance must be non-negative")
    _FAST_TOLERANCE = float(tolerance)


@contextmanager
def fast_reduction(tolerance: "float | None" = None) -> Iterator[None]:
    """Temporarily reduce planes with numpy's pairwise (fast) kernels."""
    previous_mode = _REDUCTION_MODE
    previous_tol = _FAST_TOLERANCE
    set_reduction_mode("fast")
    if tolerance is not None:
        set_fast_tolerance(tolerance)
    try:
        yield
    finally:
        set_reduction_mode(previous_mode)
        set_fast_tolerance(previous_tol)
