"""Crash-safe persistence primitives: atomic writes, manifests, recovery.

The warehouse store (:mod:`repro.io`) commits a save in three stages so a
crash at *any* instruction boundary leaves a loadable store:

1. every data file is written as ``<name>.tmp`` (write → flush → fsync),
2. the current generation's files are demoted to ``<name>.prev`` (atomic
   renames, preserving the last-good generation in full),
3. the temp files are renamed into place, **manifest last** — the rename
   of ``MANIFEST.json`` is the commit point.

``MANIFEST.json`` carries a monotonically increasing ``generation`` and a
SHA-256 + byte-length per data file.  :func:`verify_generation` checks a
manifest against the files on disk; :func:`recover_store` implements the
load-time policy: verify the current generation, quarantine anything torn
or corrupt as ``<name>.corrupt``, fall back to the ``.prev`` generation,
and raise :class:`~repro.errors.WarehouseCorruptionError` naming exactly
what was lost when no generation survives.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import WarehouseCorruptionError, WarehouseFormatError
from repro.faults import inject_io_fault, register_failpoint, with_retries
from repro.obs.metrics import METRICS
from repro.obs.trace import trace_span

__all__ = [
    "MANIFEST_NAME",
    "Manifest",
    "RecoveredStore",
    "atomic_write_text",
    "commit_generation",
    "file_digest",
    "read_manifest",
    "recover_store",
    "verify_generation",
]

MANIFEST_NAME = "MANIFEST.json"
_PREV_SUFFIX = ".prev"
_TMP_SUFFIX = ".tmp"
_CORRUPT_SUFFIX = ".corrupt"

#: Failpoints owned by this module (see :mod:`repro.faults`).
FP_WRITE = register_failpoint("durability.write")
FP_FSYNC = register_failpoint("durability.fsync")
FP_RENAME = register_failpoint("durability.rename")
FP_COMMIT = register_failpoint("durability.commit")


def file_digest(path: Path) -> tuple[str, int]:
    """SHA-256 hex digest and byte length of ``path``."""
    hasher = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 16), b""):
            hasher.update(block)
            size += len(block)
    return hasher.hexdigest(), size


@dataclass(frozen=True)
class Manifest:
    """The parsed content of a ``MANIFEST.json``."""

    format_version: int
    generation: int
    #: file name -> (sha256 hex, byte length)
    files: dict[str, tuple[str, int]]

    def to_json(self) -> str:
        payload = {
            "format_version": self.format_version,
            "generation": self.generation,
            "files": {
                name: {"sha256": digest, "bytes": size}
                for name, (digest, size) in sorted(self.files.items())
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, path: "str | None" = None) -> "Manifest":
        try:
            payload = json.loads(text)
            files = {
                str(name): (str(entry["sha256"]), int(entry["bytes"]))
                for name, entry in payload["files"].items()
            }
            return cls(
                format_version=int(payload["format_version"]),
                generation=int(payload["generation"]),
                files=files,
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise WarehouseFormatError(
                f"manifest is not parseable: {exc}", path=path
            ) from exc


def read_manifest(path: Path) -> Manifest:
    """Read and parse a manifest file; typed errors on missing/garbled."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise WarehouseFormatError("manifest missing", path=str(path)) from exc
    except OSError as exc:
        raise WarehouseFormatError(
            f"manifest unreadable: {exc}", path=str(path)
        ) from exc
    return Manifest.from_json(text, path=str(path))


def _fsync_dir(directory: Path) -> None:
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via write-temp → fsync → rename.

    A crash at any point leaves either the old file or the new file —
    never a truncated hybrid.  The temp file lives in the same directory
    so the final rename stays within one filesystem (and is atomic).
    Transient write faults are retried with exponential backoff.
    """
    tmp = path.with_name(path.name + _TMP_SUFFIX)

    def write() -> None:
        inject_io_fault(FP_WRITE)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            inject_io_fault(FP_FSYNC)
            os.fsync(handle.fileno())

    with_retries(write)
    inject_io_fault(FP_RENAME)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _stage_temp(path: Path, text: str) -> None:
    """Stage ``text`` at ``<path>.tmp`` (fsynced) without renaming yet."""
    tmp = path.with_name(path.name + _TMP_SUFFIX)

    def write() -> None:
        inject_io_fault(FP_WRITE)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            inject_io_fault(FP_FSYNC)
            os.fsync(handle.fileno())

    with_retries(write)


def commit_generation(
    root: Path, files: dict[str, str], *, format_version: int
) -> Manifest:
    """Atomically publish a new generation of ``files`` under ``root``.

    ``files`` maps file name → full text content.  The previous
    generation (data files *and* manifest) survives as ``*.prev`` until
    the next save, so load-time recovery always has a fallback.  The
    rename of the manifest is the commit point: a crash before it leaves
    the old generation authoritative; a crash after it leaves the new one.
    """
    with trace_span("durability.commit", files=len(files)):
        manifest = _commit_generation(root, files, format_version=format_version)
    METRICS.counter("durability_commits_total").inc()
    return manifest


def _commit_generation(
    root: Path, files: dict[str, str], *, format_version: int
) -> Manifest:
    root.mkdir(parents=True, exist_ok=True)
    manifest_path = root / MANIFEST_NAME

    previous_generation = 0
    if manifest_path.exists():
        try:
            previous_generation = read_manifest(manifest_path).generation
        except WarehouseFormatError:
            previous_generation = 0

    # Stage 1: every data file lands fully fsynced as *.tmp.
    digests: dict[str, tuple[str, int]] = {}
    for name, text in sorted(files.items()):
        path = root / name
        _stage_temp(path, text)
        digests[name] = file_digest(path.with_name(name + _TMP_SUFFIX))
    manifest = Manifest(
        format_version=format_version,
        generation=previous_generation + 1,
        files=digests,
    )
    _stage_temp(manifest_path, manifest.to_json())

    # Stage 2: demote the current generation to *.prev (manifest first, so
    # a half-demoted store still has a verifiable prev manifest).
    if manifest_path.exists():
        inject_io_fault(FP_RENAME)
        os.replace(manifest_path, root / (MANIFEST_NAME + _PREV_SUFFIX))
    for name in sorted(files):
        path = root / name
        if path.exists():
            inject_io_fault(FP_RENAME)
            os.replace(path, root / (name + _PREV_SUFFIX))

    # Stage 3: promote the staged files; manifest rename commits.
    for name in sorted(files):
        path = root / name
        inject_io_fault(FP_RENAME)
        os.replace(path.with_name(name + _TMP_SUFFIX), path)
    inject_io_fault(FP_COMMIT)
    os.replace(manifest_path.with_name(MANIFEST_NAME + _TMP_SUFFIX), manifest_path)
    _fsync_dir(root)
    return manifest


@dataclass
class RecoveredStore:
    """The outcome of :func:`recover_store`: which files to load and what
    (if anything) had to be done to get there."""

    root: Path
    manifest: "Manifest | None"
    #: file name -> path actually verified (current or restored from .prev)
    files: dict[str, Path] = field(default_factory=dict)
    #: True when the store predates manifests (legacy layout)
    legacy: bool = False
    #: True when the current generation failed and .prev was promoted
    restored_from_previous: bool = False
    #: damaged files moved aside as *.corrupt
    quarantined: list[str] = field(default_factory=list)
    #: human-readable notes describing every recovery action taken
    notes: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.restored_from_previous or bool(self.quarantined)


def verify_generation(
    root: Path, manifest: Manifest, *, suffix: str = ""
) -> dict[str, "str | None"]:
    """Check every manifest file (with ``suffix`` appended) against its
    recorded digest.  Returns file name → problem description
    (``None`` = verified)."""
    problems: dict[str, str | None] = {}
    for name, (digest, size) in sorted(manifest.files.items()):
        path = root / (name + suffix)
        if not path.exists():
            problems[name] = "missing"
            continue
        actual_digest, actual_size = file_digest(path)
        if actual_size != size:
            problems[name] = (
                f"torn: {actual_size} bytes on disk, manifest says {size}"
            )
        elif actual_digest != digest:
            problems[name] = "checksum mismatch"
        else:
            problems[name] = None
    return problems


def _quarantine(root: Path, name: str, result: RecoveredStore) -> None:
    """Move a damaged file aside as ``<name>.corrupt`` (best effort)."""
    path = root / name
    if not path.exists():
        return
    target = root / (name + _CORRUPT_SUFFIX)
    os.replace(path, target)
    result.quarantined.append(target.name)
    result.notes.append(f"quarantined {name} -> {target.name}")


def recover_store(
    root: Path, *, expected_files: tuple[str, ...]
) -> RecoveredStore:
    """Decide which on-disk generation of a warehouse store to load.

    Policy, in order:

    1. No manifest anywhere and the expected data files exist → legacy
       (pre-manifest) store; load it as-is.
    2. Current manifest parses and every file verifies → load current.
    3. Otherwise quarantine the damaged current files and try the
       ``.prev`` generation; if it verifies in full, promote it back into
       place and load it.
    4. Nothing verifies → :class:`~repro.errors.WarehouseCorruptionError`
       naming exactly which files were lost.
    """
    with trace_span("durability.recover") as span:
        result = _recover_store(root, expected_files=expected_files)
        outcome = (
            "legacy" if result.legacy
            else "restored" if result.restored_from_previous
            else "clean"
        )
        METRICS.counter("durability_recoveries_total", outcome=outcome).inc()
        if span is not None:
            span.set(outcome=outcome, quarantined=len(result.quarantined))
    return result


def _recover_store(
    root: Path, *, expected_files: tuple[str, ...]
) -> RecoveredStore:
    result = RecoveredStore(root=root, manifest=None)
    manifest_path = root / MANIFEST_NAME
    prev_manifest_path = root / (MANIFEST_NAME + _PREV_SUFFIX)

    if not root.exists():
        raise WarehouseFormatError(
            "warehouse directory does not exist", path=str(root)
        )

    if not manifest_path.exists() and not prev_manifest_path.exists():
        # Legacy store: no manifest was ever written.
        missing = [
            name for name in expected_files if not (root / name).exists()
        ]
        if missing:
            raise WarehouseFormatError(
                f"not a warehouse store: missing {', '.join(missing)}",
                path=str(root),
            )
        result.legacy = True
        result.files = {name: root / name for name in expected_files}
        result.notes.append("legacy store (no manifest); checksums unavailable")
        return result

    # -- try the current generation -------------------------------------------
    current_manifest: Manifest | None = None
    current_problems: dict[str, str | None] = {}
    if manifest_path.exists():
        try:
            current_manifest = read_manifest(manifest_path)
        except WarehouseFormatError as exc:
            result.notes.append(f"current manifest unusable: {exc}")
        else:
            current_problems = verify_generation(root, current_manifest)
            if not any(current_problems.values()):
                result.manifest = current_manifest
                result.files = {
                    name: root / name for name in current_manifest.files
                }
                return result
            for name, problem in sorted(current_problems.items()):
                if problem is not None:
                    result.notes.append(f"current {name}: {problem}")

    # -- current generation failed: quarantine and fall back -------------------
    damaged = [
        name for name, problem in sorted(current_problems.items()) if problem
    ]
    for name in damaged:
        _quarantine(root, name, result)
    if current_manifest is None and manifest_path.exists():
        _quarantine(root, MANIFEST_NAME, result)

    if not prev_manifest_path.exists():
        lost = tuple(damaged) if damaged else tuple(expected_files)
        raise WarehouseCorruptionError(
            f"warehouse store at {root} failed integrity checks and has no "
            "previous generation to fall back to",
            lost=lost,
            quarantined=tuple(result.quarantined),
        )

    try:
        prev_manifest = read_manifest(prev_manifest_path)
    except WarehouseFormatError as exc:
        raise WarehouseCorruptionError(
            f"warehouse store at {root} failed integrity checks and its "
            f"previous-generation manifest is unusable ({exc})",
            lost=tuple(damaged) if damaged else tuple(expected_files),
            quarantined=tuple(result.quarantined),
        ) from exc
    prev_problems = verify_generation(root, prev_manifest, suffix=_PREV_SUFFIX)
    # Files whose demote-rename never happened may still verify in place.
    salvage: dict[str, Path] = {}
    still_lost: list[str] = []
    for name, problem in sorted(prev_problems.items()):
        if problem is None:
            salvage[name] = root / (name + _PREV_SUFFIX)
            continue
        in_place = verify_generation(
            root, Manifest(prev_manifest.format_version, 0, {name: prev_manifest.files[name]})
        )
        if in_place.get(name) is None:
            salvage[name] = root / name
        else:
            still_lost.append(name)

    if still_lost:
        raise WarehouseCorruptionError(
            f"warehouse store at {root} is corrupt in both the current and "
            "previous generations",
            lost=tuple(still_lost),
            quarantined=tuple(result.quarantined),
        )

    # Promote the previous generation back into place.
    for name, source in sorted(salvage.items()):
        target = root / name
        if source != target:
            os.replace(source, target)
            result.notes.append(f"restored {name} from previous generation")
    atomic_write_text(manifest_path, prev_manifest.to_json())
    if prev_manifest_path.exists():
        os.unlink(prev_manifest_path)
    _fsync_dir(root)

    result.manifest = prev_manifest
    result.files = {name: root / name for name in prev_manifest.files}
    result.restored_from_previous = True
    result.notes.append(
        f"restored generation {prev_manifest.generation} after the newer "
        "generation failed verification"
    )
    return result
