"""Chunked array storage: the physical substrate of Sec. 5.

Implements the Zhao et al. array-chunking scheme the paper builds on —
chunk grids, a simulated on-disk chunk store with explicit read/seek cost
accounting, the group-by lattice with memory requirements and the
minimum-memory spanning tree, and single-scan simultaneous aggregation.
"""

from repro.storage.array_cube import Axis, ChunkedCube
from repro.storage.chunk_store import ChunkStore, ResidencyTracker
from repro.storage.chunks import Chunk, ChunkGrid
from repro.storage.cube_compute import (
    GroupByResult,
    compute_group_bys,
    compute_group_bys_budgeted,
    compute_group_bys_naive,
    full_array,
)
from repro.storage.io_stats import IoCostModel, IoStats
from repro.storage.lattice import all_group_bys, direct_children, direct_parents
from repro.storage.mmst import MemorySpanningTree, build_mmst, memory_requirement

__all__ = [
    "Axis",
    "ChunkedCube",
    "ChunkStore",
    "ResidencyTracker",
    "Chunk",
    "ChunkGrid",
    "GroupByResult",
    "compute_group_bys",
    "compute_group_bys_budgeted",
    "compute_group_bys_naive",
    "full_array",
    "IoCostModel",
    "IoStats",
    "all_group_bys",
    "direct_children",
    "direct_parents",
    "MemorySpanningTree",
    "build_mmst",
    "memory_requirement",
]
