"""A simulated on-disk chunk store with explicit I/O accounting.

Chunks live at integer *file positions*; reading a chunk records a read
plus a distance-dependent seek relative to the previously accessed
position (:mod:`repro.storage.io_stats`).  The physical layout is
controllable — :meth:`ChunkStore.insert_padding` grows the file between two
related chunks exactly like the Fig. 12 experiment, which inserted data to
create multiples of 719,928 chunks between two employee instances.

:class:`ResidencyTracker` counts chunks co-resident in (simulated) memory;
its high-water mark is the quantity the pebbling strategy of Sec. 5.2
minimises.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import StorageError
from repro.faults import inject_io_fault, register_failpoint, with_retries
from repro.lint.lockdep import make_lock
from repro.obs.trace import trace_event
from repro.storage.chunks import Chunk, ChunkCoord, ChunkGrid
from repro.storage.io_stats import CacheStats, IoCostModel, IoStats

__all__ = ["ChunkStore", "ResidencyTracker"]

FP_CHUNK_READ = register_failpoint("chunk.read")
FP_CHUNK_WRITE = register_failpoint("chunk.write")
FP_CHUNK_FORK = register_failpoint("chunk.fork")


class ResidencyTracker:
    """Tracks which chunks are held in memory and the high-water count."""

    def __init__(self) -> None:
        self._resident: set[ChunkCoord] = set()
        self.high_water = 0

    def acquire(self, coord: ChunkCoord) -> None:
        self._resident.add(coord)
        if len(self._resident) > self.high_water:
            self.high_water = len(self._resident)

    def release(self, coord: ChunkCoord) -> None:
        self._resident.discard(coord)

    @property
    def resident(self) -> frozenset[ChunkCoord]:
        return frozenset(self._resident)

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def reset(self) -> None:
        self._resident.clear()
        self.high_water = 0


class ChunkStore:
    """Holds the chunks of one chunked cube on a simulated disk.

    Parameters
    ----------
    grid:
        The chunk geometry.
    cost_model:
        Simulated-disk cost parameters.
    """

    def __init__(self, grid: ChunkGrid, cost_model: IoCostModel | None = None) -> None:
        self.grid = grid
        self.cost_model = cost_model or IoCostModel()
        self.stats = IoStats()
        self.cache_stats = CacheStats()
        self._chunks: dict[ChunkCoord, np.ndarray] = {}
        self._positions: dict[ChunkCoord, int] = {}
        self._next_position = 0
        self._is_fork = False
        #: fork-only: chunk -> bytes charged against the COW delta
        self._fork_charges: dict[ChunkCoord, int] = {}
        # guards layout mutation (load/padding/fork); reads are lock-free
        self._lock = make_lock("ChunkStore._lock")

    def fork(self) -> "ChunkStore":
        """A chunk-level **copy-on-write** snapshot of this store.

        The fork shares the parent's chunk arrays — forking is O(#chunks)
        pointer copies, never a data copy.  A later :meth:`write` (or
        :meth:`load`) on either store rebinds only that store's dict entry
        to the new array, so the other side keeps reading the pinned
        bytes.  The fork starts with fresh I/O stats: it models an
        independent reader session over the same physical layout.

        Divergence is *accounted*: each chunk a fork rebinds is charged
        (once, at its array size) to :meth:`delta_bytes` /
        :meth:`changed_chunk_count`, and aggregated into the parent's
        :attr:`cache_stats` — the numbers scenario quotas bill against.

        The arrays themselves are the COW unit: callers must treat a
        :meth:`read` result as immutable (replace via :meth:`write`, never
        mutate in place) — the same contract NumPy's own views rely on.
        """
        with_retries(lambda: inject_io_fault(FP_CHUNK_FORK))
        with self._lock:
            clone = ChunkStore(self.grid, self.cost_model)
            clone._chunks = dict(self._chunks)
            clone._positions = dict(self._positions)
            clone._next_position = self._next_position
            clone._is_fork = True
            # one aggregate ledger for the whole fork family
            clone.cache_stats = self.cache_stats
            return clone

    @property
    def is_fork(self) -> bool:
        return self._is_fork

    def delta_bytes(self) -> int:
        """Bytes of chunk data this fork rebound away from its parent
        (0 for a non-fork, and for a fork that never wrote)."""
        with self._lock:
            return sum(self._fork_charges.values())

    def changed_chunk_count(self) -> int:
        """Number of chunks this fork rebound away from its parent."""
        with self._lock:
            return len(self._fork_charges)

    def _charge_fork_delta(self, coord: ChunkCoord, nbytes: int) -> None:  # reprolint: locked
        previous = self._fork_charges.get(coord)
        if previous is None:
            self.cache_stats.fork_changed_chunks += 1
            self.cache_stats.fork_delta_bytes += nbytes
        else:
            self.cache_stats.fork_delta_bytes += nbytes - previous
        self._fork_charges[coord] = nbytes

    # -- loading (no I/O accounting: this is ETL, not query time) -------------

    def load(self, coord: ChunkCoord, data: np.ndarray, position: int | None = None) -> None:
        """Place a chunk on disk; assigns the next free position by default."""
        expected = self.grid.chunk_extent(coord)
        if tuple(data.shape) != expected:
            raise StorageError(
                f"chunk {coord!r} has shape {data.shape}, expected {expected}"
            )
        with self._lock:
            self._chunks[coord] = data
            if position is None:
                position = self._next_position
            self._positions[coord] = position
            self._next_position = max(self._next_position, position + 1)
            if self._is_fork:
                self._charge_fork_delta(coord, int(data.nbytes))

    def assign_layout(self, order: Sequence[int]) -> None:
        """Re-lay chunks contiguously in a dimension-order scan sequence."""
        with self._lock:
            position = 0
            for coord in self.grid.iter_chunks(order):
                if coord in self._chunks:
                    self._positions[coord] = position
                    position += 1
            self._next_position = position

    def insert_padding(self, after_position: int, count: int) -> None:
        """Grow the file by ``count`` chunk slots after a position.

        Every chunk stored beyond ``after_position`` shifts by ``count``;
        this reproduces Fig. 12's separation mechanism (the cube grows, the
        two related chunks move apart, and the query must seek further).
        """
        if count < 0:
            raise StorageError("padding count must be non-negative")
        with self._lock:
            for coord, position in self._positions.items():
                if position > after_position:
                    self._positions[coord] = position + count
            self._next_position += count

    # -- query-time access ------------------------------------------------------

    def read(self, coord: ChunkCoord) -> np.ndarray:
        """Read a chunk, recording read + seek costs.

        Missing chunks read as all-⊥ (NaN) without I/O cost — a sparse cube
        does not store chunks with no data (Sec. 2's "a cube never stores
        data corresponding to non-active members").
        """
        data = self._chunks.get(coord)
        if data is None:
            return self.grid.empty_chunk(coord).data
        # Transient device hiccups retry with backoff; terminal injected
        # faults (simulated crashes) propagate to the caller.
        with_retries(lambda: inject_io_fault(FP_CHUNK_READ))
        self.stats.record_read(self._positions[coord], self.cost_model)
        trace_event("chunk.read", position=self._positions[coord])
        return data

    def read_chunk(self, coord: ChunkCoord) -> Chunk:
        return Chunk(coord, self.grid.chunk_origin(coord), self.read(coord))

    def write(self, coord: ChunkCoord, data: np.ndarray) -> None:
        """Query-time write (counts toward I/O stats)."""
        with_retries(lambda: inject_io_fault(FP_CHUNK_WRITE))
        self.load(coord, data)
        self.stats.record_write(self._positions[coord], self.cost_model)
        trace_event("chunk.write", position=self._positions[coord])

    def peek(self, coord: ChunkCoord) -> np.ndarray:
        """Read a chunk *without* I/O accounting (tests, assembly, ETL)."""
        data = self._chunks.get(coord)
        if data is None:
            return self.grid.empty_chunk(coord).data
        return data

    def position_of(self, coord: ChunkCoord) -> int:
        try:
            return self._positions[coord]
        except KeyError:
            raise StorageError(f"chunk {coord!r} is not stored") from None

    def has_chunk(self, coord: ChunkCoord) -> bool:
        return coord in self._chunks

    def stored_chunks(self) -> Iterator[ChunkCoord]:
        yield from self._chunks

    @property
    def n_stored(self) -> int:
        return len(self._chunks)

    @property
    def file_extent(self) -> int:
        """Disk footprint in chunk slots (includes padding)."""
        return self._next_position

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkStore({self.n_stored} chunks, extent={self.file_extent}, "
            f"{self.grid!r})"
        )
