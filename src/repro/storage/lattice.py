"""The group-by (cube) lattice.

A group-by of an n-dimensional cube is identified by the frozenset of the
dimension indices it *retains*; the remaining dimensions are aggregated
away.  The lattice orders group-bys by set inclusion: the base cuboid
(all dimensions) is the root; the apex (empty set) is the grand total.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

__all__ = ["GroupBy", "all_group_bys", "direct_parents", "direct_children"]

GroupBy = frozenset[int]


def all_group_bys(n_dims: int, include_base: bool = True) -> list[GroupBy]:
    """Every group-by of an n-dimensional cube, largest first.

    ``include_base=False`` omits the base cuboid itself (it is the input,
    not a computed aggregate).
    """
    result: list[GroupBy] = []
    start = n_dims if include_base else n_dims - 1
    for size in range(start, -1, -1):
        for combo in combinations(range(n_dims), size):
            result.append(frozenset(combo))
    return result


def direct_parents(group_by: GroupBy, n_dims: int) -> Iterator[GroupBy]:
    """Group-bys with exactly one more retained dimension."""
    for dim in range(n_dims):
        if dim not in group_by:
            yield group_by | {dim}


def direct_children(group_by: GroupBy) -> Iterator[GroupBy]:
    """Group-bys with exactly one fewer retained dimension."""
    for dim in sorted(group_by):
        yield group_by - {dim}
