"""Memory requirements and the minimum-memory spanning tree (Zhao et al.).

Sec. 5 of the paper reviews the chunking algorithm: scanning the base cube's
chunks in a dimension order, every group-by can be accumulated
simultaneously, but each needs a certain amount of memory.  With scan order
``D_{o1} < D_{o2} < ... < D_{on}`` (first varies fastest) and a group-by G,
let ``u`` be the *slowest-varying* aggregated dimension (the aggregated
dimension latest in the order).  A retained dimension d needs

* its **full extent** in cells if d varies faster than u (its partial
  results cannot be flushed until u completes a cycle), or
* **one chunk's extent** if d varies slower than u.

This yields Fig. 6's numbers for a 4x4x4-chunk cube scanned in order ABC:
group-by BC needs 1 chunk, AC needs 4 chunks, AB needs 16 chunks.

The MMST assigns each group-by a parent (a direct superset) from which it
is computed; following Zhao et al. we pick, for each node, the parent with
the smallest memory requirement (ties broken deterministically), and we
support splitting the tree into multiple passes when the total requirement
exceeds a memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from repro.errors import StorageError
from repro.storage.chunks import ChunkGrid
from repro.storage.lattice import GroupBy, all_group_bys, direct_parents

__all__ = ["memory_requirement", "MemorySpanningTree", "build_mmst"]


def memory_requirement(
    grid: ChunkGrid, group_by: GroupBy, order: tuple[int, ...]
) -> int:
    """Cells of memory needed to accumulate ``group_by`` during a scan.

    The base cuboid (all dimensions retained) needs exactly one chunk: it
    streams through.  The apex (nothing retained) needs a single cell.
    """
    if sorted(order) != list(range(grid.n_dims)):
        raise StorageError(f"order {order!r} is not a permutation")
    aggregated = [d for d in range(grid.n_dims) if d not in group_by]
    if not aggregated:
        return prod(grid.chunk_shape)
    position = {dim: i for i, dim in enumerate(order)}
    slowest_aggregated = max(aggregated, key=position.__getitem__)
    cells = 1
    for dim in group_by:
        if position[dim] < position[slowest_aggregated]:
            cells *= grid.dim_sizes[dim]
        else:
            cells *= grid.chunk_shape[dim]
    return cells


@dataclass
class MemorySpanningTree:
    """A parent assignment over the group-by lattice plus memory totals."""

    order: tuple[int, ...]
    parent: dict[GroupBy, GroupBy]
    requirement: dict[GroupBy, int]

    @property
    def total_memory(self) -> int:
        return sum(self.requirement.values())

    def children_of(self, node: GroupBy) -> list[GroupBy]:
        return sorted(
            (child for child, parent in self.parent.items() if parent == node),
            key=sorted,
        )

    def passes(self, budget: int) -> list[list[GroupBy]]:
        """Partition computed group-bys into scan passes within a budget.

        When total memory fits the budget, one pass computes everything
        (Zhao's single-pass case).  Otherwise nodes are greedily packed into
        batches (largest requirement first), each batch forming one scan
        over the input — a simplified rendition of Zhao's subtree
        partitioning; every pass stays within the budget unless a single
        group-by alone exceeds it, which is reported as an error.
        """
        nodes = sorted(
            self.requirement, key=lambda g: (-self.requirement[g], sorted(g))
        )
        oversized = [g for g in nodes if self.requirement[g] > budget]
        if oversized:
            raise StorageError(
                f"group-by {sorted(oversized[0])} alone needs "
                f"{self.requirement[oversized[0]]} cells, over the budget "
                f"of {budget}"
            )
        passes: list[list[GroupBy]] = []
        loads: list[int] = []
        for node in nodes:
            need = self.requirement[node]
            for i, load in enumerate(loads):
                if load + need <= budget:
                    passes[i].append(node)
                    loads[i] += need
                    break
            else:
                passes.append([node])
                loads.append(need)
        return passes


def build_mmst(grid: ChunkGrid, order: tuple[int, ...] | None = None) -> MemorySpanningTree:
    """Build the minimum-memory spanning tree for a grid and scan order.

    The default order is ascending cardinality, Zhao et al.'s heuristic for
    reducing memory requirements.
    """
    if order is None:
        order = grid.default_order()
    base: GroupBy = frozenset(range(grid.n_dims))
    parent: dict[GroupBy, GroupBy] = {}
    requirement: dict[GroupBy, int] = {}
    for node in all_group_bys(grid.n_dims, include_base=False):
        requirement[node] = memory_requirement(grid, node, tuple(order))
        candidates = sorted(
            direct_parents(node, grid.n_dims),
            key=lambda p: (
                memory_requirement(grid, p, tuple(order)) if p != base else 0,
                sorted(p),
            ),
        )
        # Prefer the parent that is itself cheapest to hold; the base is
        # free (it streams), so it wins for the (n-1)-dim group-bys.
        parent[node] = candidates[0]
    return MemorySpanningTree(tuple(order), parent, requirement)
