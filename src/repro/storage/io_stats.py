"""Simulated disk I/O accounting.

The paper's Fig. 12 experiment varies the *physical separation* between
related chunks and observes query time rising then flattening — the
mechanism being disk seek time that grows with distance and then
saturates.  Since we run on a simulated store, we make that cost model
explicit:

    simulated_ms = chunk_reads * read_ms
                 + Σ over consecutive reads  min(seek_ms_per_chunk * gap,
                                                 seek_cap_ms)

where ``gap`` is the distance (in chunk slots) between the file positions
of consecutively read chunks.  Wall-clock time of the Python engine also
scales with chunks touched; the simulated figure isolates the disk
mechanism the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats", "IoCostModel", "IoStats"]


@dataclass
class CacheStats:
    """Hit/miss/invalidation/eviction counters shared by the query-engine
    caches (scenario-cube cache, rollup index).

    ``builds`` counts full (re)constructions — index builds or scenario
    applications on a cache miss; ``invalidations`` counts entries dropped
    because the underlying cube mutated; ``evictions`` counts entries
    pushed out by capacity pressure (LRU popitem, memo-cap flushes) —
    churn that hit/miss ratios alone cannot distinguish from a healthy
    cache.

    ``fork_delta_bytes`` / ``fork_changed_chunks`` account for
    copy-on-write divergence: when a forked
    :class:`~repro.storage.chunk_store.ChunkStore` rebinds a chunk, the
    rebound array's bytes are charged here (shared with the fork's
    parent, so one snapshot shows the aggregate COW cost of every live
    fork).  Quota enforcement reads these — a fork that never writes
    stays at zero no matter how large the parent cube is.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    builds: int = 0
    evictions: int = 0
    fork_delta_bytes: int = 0
    fork_changed_chunks: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.builds = 0
        self.evictions = 0
        self.fork_delta_bytes = 0
        self.fork_changed_chunks = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "builds": self.builds,
            "evictions": self.evictions,
            "fork_delta_bytes": self.fork_delta_bytes,
            "fork_changed_chunks": self.fork_changed_chunks,
        }


@dataclass(frozen=True)
class IoCostModel:
    """Cost parameters of the simulated disk."""

    read_ms: float = 1.0
    seek_ms_per_chunk: float = 0.01
    seek_cap_ms: float = 8.0

    def seek_cost(self, gap: int) -> float:
        """Seek cost for a jump of ``gap`` chunk slots (0 for sequential)."""
        if gap <= 1:
            return 0.0
        return min(self.seek_ms_per_chunk * gap, self.seek_cap_ms)


@dataclass
class IoStats:
    """Mutable I/O counters accumulated by a ChunkStore."""

    chunk_reads: int = 0
    chunk_writes: int = 0
    seek_distance: int = 0
    simulated_ms: float = 0.0
    _last_position: int | None = field(default=None, repr=False)

    def record_read(self, position: int, model: IoCostModel) -> None:
        self.chunk_reads += 1
        if self._last_position is not None:
            gap = abs(position - self._last_position)
            self.seek_distance += gap
            self.simulated_ms += model.seek_cost(gap)
        self.simulated_ms += model.read_ms
        self._last_position = position

    def record_write(self, position: int, model: IoCostModel) -> None:
        self.chunk_writes += 1
        self.simulated_ms += model.read_ms
        self._last_position = position

    def reset(self) -> None:
        self.chunk_reads = 0
        self.chunk_writes = 0
        self.seek_distance = 0
        self.simulated_ms = 0.0
        self._last_position = None

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for benchmark ``extra_info``."""
        return {
            "chunk_reads": self.chunk_reads,
            "chunk_writes": self.chunk_writes,
            "seek_distance": self.seek_distance,
            "simulated_ms": round(self.simulated_ms, 3),
        }
