"""Chunk-scan simultaneous aggregation (the Zhao et al. cube algorithm).

One pass over the base cube's chunks — read in a dimension order — feeds
every requested group-by at once.  Per-group-by accumulators hold running
sums and non-⊥ counts; MISSING (NaN) cells contribute nothing, and a
result position with zero contributing cells stays ⊥, matching the
semantic cube's aggregation rules.

Memory accounting is analytic (via :mod:`repro.storage.mmst`): Python-side
we allocate full result arrays for simplicity, but the reported memory
requirement — and the chunk-residency tracking used by the perspective
machinery — follow the Zhao model.

:func:`compute_group_bys_naive` is the comparison baseline: one full scan
per group-by instead of a shared scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.storage.chunk_store import ChunkStore
from repro.storage.lattice import GroupBy
from repro.storage.mmst import memory_requirement

__all__ = [
    "GroupByResult",
    "compute_group_bys",
    "compute_group_bys_budgeted",
    "compute_group_bys_from_cube",
    "compute_group_bys_naive",
    "full_array",
]


@dataclass
class GroupByResult:
    """A computed group-by: retained dims and the (NaN-for-⊥) result array.

    ``counts`` holds the number of contributing (non-⊥) leaf cells per
    result position; delta adjustment (visual-mode aggregation over a
    perspective cube) needs it to know when a position becomes ⊥ again.
    """

    dims: tuple[int, ...]
    data: np.ndarray
    memory_cells: int
    counts: np.ndarray | None = None

    def value(self, coords: Sequence[int]) -> float:
        """Cell value; NaN encodes ⊥."""
        return float(self.data[tuple(coords)])


class _Accumulator:
    def __init__(self, dims: tuple[int, ...], shape: tuple[int, ...]) -> None:
        self.dims = dims
        self.sums = np.zeros(shape)
        self.counts = np.zeros(shape, dtype=np.int64)

    def add_chunk(self, origin: tuple[int, ...], data: np.ndarray) -> None:
        axes_to_collapse = tuple(
            axis for axis in range(data.ndim) if axis not in self.dims
        )
        mask = ~np.isnan(data)
        filled = np.where(mask, data, 0.0)
        if axes_to_collapse:
            partial_sum = filled.sum(axis=axes_to_collapse)
            partial_count = mask.sum(axis=axes_to_collapse)
        else:
            partial_sum, partial_count = filled, mask.astype(np.int64)
        region = tuple(
            slice(origin[dim], origin[dim] + data.shape[dim]) for dim in self.dims
        )
        self.sums[region] += partial_sum
        self.counts[region] += partial_count

    def finish(self, memory_cells: int) -> GroupByResult:
        result = np.where(self.counts > 0, self.sums, np.nan)
        return GroupByResult(self.dims, result, memory_cells, self.counts)


def _normalise(group_bys: Iterable[GroupBy | Sequence[int]]) -> list[tuple[int, ...]]:
    return [tuple(sorted(g)) for g in group_bys]


def compute_group_bys(
    store: ChunkStore,
    group_bys: Iterable[GroupBy | Sequence[int]],
    order: Sequence[int] | None = None,
) -> dict[tuple[int, ...], GroupByResult]:
    """Compute the requested group-bys in a single shared chunk scan."""
    grid = store.grid
    scan_order = tuple(order) if order is not None else grid.default_order()
    wanted = _normalise(group_bys)
    accumulators = {
        dims: _Accumulator(dims, tuple(grid.dim_sizes[d] for d in dims))
        for dims in wanted
    }
    for coord in grid.iter_chunks(scan_order):
        if not store.has_chunk(coord):
            continue  # sparse region: nothing to read, nothing to add
        data = store.read(coord)
        origin = grid.chunk_origin(coord)
        for accumulator in accumulators.values():
            accumulator.add_chunk(origin, data)
    return {
        dims: accumulator.finish(
            memory_requirement(grid, frozenset(dims), scan_order)
        )
        for dims, accumulator in accumulators.items()
    }


def compute_group_bys_budgeted(
    store: ChunkStore,
    group_bys: Iterable[GroupBy | Sequence[int]],
    budget_cells: int,
    order: Sequence[int] | None = None,
) -> tuple[dict[tuple[int, ...], GroupByResult], int]:
    """Compute group-bys within a memory budget via multiple passes.

    Uses the MMST's :meth:`~repro.storage.mmst.MemorySpanningTree.passes`
    partitioning (Zhao et al.'s multi-pass strategy when memory falls
    short): each pass scans the input once and accumulates only the
    group-bys assigned to it.  Returns ``(results, n_passes)``; I/O stats
    on the store reflect the repeated scans.
    """
    from repro.storage.mmst import build_mmst

    grid = store.grid
    scan_order = tuple(order) if order is not None else grid.default_order()
    wanted = set(_normalise(group_bys))
    tree = build_mmst(grid, scan_order)
    requirement = dict(tree.requirement)
    base = tuple(range(grid.n_dims))
    requirement.setdefault(frozenset(base), memory_requirement(grid, frozenset(base), scan_order))

    # Restrict the pass planning to the requested group-bys.
    restricted = type(tree)(
        tree.order,
        {},
        {frozenset(g): requirement[frozenset(g)] for g in wanted},
    )
    passes = restricted.passes(budget_cells)
    results: dict[tuple[int, ...], GroupByResult] = {}
    for batch in passes:
        results.update(
            compute_group_bys(store, [tuple(sorted(g)) for g in batch], scan_order)
        )
    return results, len(passes)


def compute_group_bys_from_cube(
    cube,
    group_bys: Iterable[GroupBy | Sequence[int]],
    chunk_shape: Sequence[int] | None = None,
    order: Sequence[int] | None = None,
) -> tuple[dict[tuple[int, ...], GroupByResult], "object"]:
    """Shared-scan group-bys straight off a *semantic* cube.

    Materialises the cube into the chunked store via
    :meth:`~repro.storage.array_cube.ChunkedCube.from_cube`, sourcing the
    leaf values from the cube's columnar index planes (one vectorized
    gather) instead of rebuilding a private cell view from the semantic
    dict, then runs :func:`compute_group_bys` over it.  Returns
    ``(results, chunked_cube)`` so callers can keep the physical image
    for follow-up scans.  Results are bit-identical to a dict-sourced
    build (the regression tests assert it).
    """
    from repro.storage.array_cube import ChunkedCube

    chunked = ChunkedCube.from_cube(cube, chunk_shape)
    return compute_group_bys(chunked.store, group_bys, order), chunked


def compute_group_bys_naive(
    store: ChunkStore,
    group_bys: Iterable[GroupBy | Sequence[int]],
    order: Sequence[int] | None = None,
) -> dict[tuple[int, ...], GroupByResult]:
    """Baseline: one full chunk scan *per* group-by (no sharing)."""
    results: dict[tuple[int, ...], GroupByResult] = {}
    for dims in _normalise(group_bys):
        results.update(compute_group_bys(store, [dims], order))
    return results


def full_array(store: ChunkStore) -> np.ndarray:
    """Assemble the dense cell array (NaN for ⊥); for tests/small cubes."""
    grid = store.grid
    array = np.full(grid.dim_sizes, np.nan)
    for coord in store.stored_chunks():
        origin = grid.chunk_origin(coord)
        data = store.peek(coord)
        region = tuple(
            slice(o, o + s) for o, s in zip(origin, data.shape)
        )
        array[region] = data
    return array
