"""Chunked multidimensional arrays (Zhao et al., SIGMOD'97; paper Sec. 5).

A :class:`ChunkGrid` partitions an n-dimensional cell array into equal
chunks (edge chunks may be smaller).  Chunks are addressed by per-dimension
chunk coordinates; a *dimension order* linearises them for scanning, with
the **first** dimension in the order varying fastest — Fig. 6's "reading
chunks in dimension order ABC" numbers chunks 1..64 with A fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import ceil
from typing import Iterator, Sequence

import numpy as np

from repro.errors import StorageError

__all__ = ["ChunkGrid", "Chunk"]

ChunkCoord = tuple[int, ...]


@dataclass(frozen=True)
class Chunk:
    """One dense chunk: its grid coordinate, cell origin, and data array.

    MISSING cells are represented as ``np.nan`` inside chunk arrays.
    """

    coord: ChunkCoord
    origin: tuple[int, ...]
    data: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def cell_slices(self) -> tuple[slice, ...]:
        """Slices locating this chunk inside the full cell array."""
        return tuple(
            slice(o, o + s) for o, s in zip(self.origin, self.data.shape)
        )


class ChunkGrid:
    """Geometry of a chunked n-dimensional array.

    Parameters
    ----------
    dim_sizes:
        Cell extent of each dimension (leaf members / instance slots).
    chunk_shape:
        Chunk edge length per dimension.
    """

    def __init__(self, dim_sizes: Sequence[int], chunk_shape: Sequence[int]) -> None:
        if len(dim_sizes) != len(chunk_shape):
            raise StorageError(
                f"dim_sizes has {len(dim_sizes)} entries but chunk_shape has "
                f"{len(chunk_shape)}"
            )
        if not dim_sizes:
            raise StorageError("a chunk grid needs at least one dimension")
        for size, chunk in zip(dim_sizes, chunk_shape):
            if size <= 0 or chunk <= 0:
                raise StorageError(
                    f"dimension sizes and chunk sizes must be positive, got "
                    f"size={size}, chunk={chunk}"
                )
        self.dim_sizes = tuple(int(s) for s in dim_sizes)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        self.chunks_per_dim = tuple(
            ceil(size / chunk)
            for size, chunk in zip(self.dim_sizes, self.chunk_shape)
        )

    @property
    def n_dims(self) -> int:
        return len(self.dim_sizes)

    @property
    def n_chunks(self) -> int:
        total = 1
        for count in self.chunks_per_dim:
            total *= count
        return total

    @property
    def n_cells(self) -> int:
        total = 1
        for size in self.dim_sizes:
            total *= size
        return total

    # -- coordinate mappings ---------------------------------------------------

    def chunk_of_cell(self, cell: Sequence[int]) -> ChunkCoord:
        """Chunk coordinate containing a cell coordinate."""
        self._check_cell(cell)
        return tuple(c // s for c, s in zip(cell, self.chunk_shape))

    def chunk_origin(self, coord: ChunkCoord) -> tuple[int, ...]:
        self._check_chunk(coord)
        return tuple(c * s for c, s in zip(coord, self.chunk_shape))

    def chunk_extent(self, coord: ChunkCoord) -> tuple[int, ...]:
        """Actual shape of a chunk (edge chunks are truncated)."""
        origin = self.chunk_origin(coord)
        return tuple(
            min(chunk, size - o)
            for chunk, size, o in zip(self.chunk_shape, self.dim_sizes, origin)
        )

    def empty_chunk(self, coord: ChunkCoord) -> Chunk:
        """A chunk of the right shape filled with NaN (all ⊥)."""
        extent = self.chunk_extent(coord)
        return Chunk(coord, self.chunk_origin(coord), np.full(extent, np.nan))

    def _check_cell(self, cell: Sequence[int]) -> None:
        if len(cell) != self.n_dims:
            raise StorageError(
                f"cell coordinate {cell!r} has wrong arity for "
                f"{self.n_dims}-dimensional grid"
            )
        for value, size in zip(cell, self.dim_sizes):
            if not 0 <= value < size:
                raise StorageError(f"cell coordinate {cell!r} out of bounds")

    def _check_chunk(self, coord: ChunkCoord) -> None:
        if len(coord) != self.n_dims:
            raise StorageError(
                f"chunk coordinate {coord!r} has wrong arity for "
                f"{self.n_dims}-dimensional grid"
            )
        for value, count in zip(coord, self.chunks_per_dim):
            if not 0 <= value < count:
                raise StorageError(f"chunk coordinate {coord!r} out of bounds")

    # -- linearisation & iteration -----------------------------------------------

    def _check_order(self, order: Sequence[int]) -> tuple[int, ...]:
        if sorted(order) != list(range(self.n_dims)):
            raise StorageError(
                f"dimension order {order!r} is not a permutation of "
                f"0..{self.n_dims - 1}"
            )
        return tuple(order)

    def linear_index(self, coord: ChunkCoord, order: Sequence[int]) -> int:
        """Position of a chunk in the scan for a dimension order.

        The first dimension of ``order`` varies fastest (Fig. 6 numbering).
        """
        order = self._check_order(order)
        self._check_chunk(coord)
        index = 0
        stride = 1
        for dim in order:
            index += coord[dim] * stride
            stride *= self.chunks_per_dim[dim]
        return index

    def iter_chunks(self, order: Sequence[int]) -> Iterator[ChunkCoord]:
        """All chunk coordinates in scan order (first dim fastest)."""
        order = self._check_order(order)
        ranges = [range(self.chunks_per_dim[dim]) for dim in reversed(order)]
        inverse = list(reversed(order))
        for combo in product(*ranges):
            coord = [0] * self.n_dims
            for position, dim in enumerate(inverse):
                coord[dim] = combo[position]
            yield tuple(coord)

    def default_order(self) -> tuple[int, ...]:
        """Ascending chunk-count order (Zhao's cardinality heuristic)."""
        return tuple(
            sorted(range(self.n_dims), key=lambda d: self.chunks_per_dim[d])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkGrid(sizes={self.dim_sizes}, chunk={self.chunk_shape}, "
            f"chunks={self.chunks_per_dim})"
        )
