"""Chunked multidimensional arrays (Zhao et al., SIGMOD'97; paper Sec. 5).

A :class:`ChunkGrid` partitions an n-dimensional cell array into equal
chunks (edge chunks may be smaller).  Chunks are addressed by per-dimension
chunk coordinates; a *dimension order* linearises them for scanning, with
the **first** dimension in the order varying fastest — Fig. 6's "reading
chunks in dimension order ABC" numbers chunks 1..64 with A fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import ceil
from typing import Iterator, Sequence, Union

import numpy as np

from repro.errors import StorageError

__all__ = ["ChunkGrid", "Chunk", "DensePlane", "SparsePlane", "ChunkPlane"]

ChunkCoord = tuple[int, ...]


class DensePlane:
    """One dense columnar value plane: contiguous float64 values + liveness.

    A *plane* is the columnar analogue of a :class:`Chunk`: a fixed-size
    run of leaf-row slots holding one value column.  Dead slots (never
    written, or deleted) keep whatever bytes they had — liveness is the
    ``live`` bitmap, never a sentinel value, so a stored ``NaN`` remains a
    legitimate cell value exactly as it is in the semantic cube's dict.

    Planes are the copy-on-write unit of the columnar leaf store: a plane
    reachable from two stores must never be mutated in place (the owner
    copies first — see ``ColumnarLeafStore``).
    """

    __slots__ = ("values", "live", "n_live")

    kind = "dense"

    def __init__(self, values: np.ndarray, live: np.ndarray, n_live: int) -> None:
        self.values = values
        self.live = live
        self.n_live = n_live

    @classmethod
    def empty(cls, capacity: int) -> "DensePlane":
        return cls(
            np.zeros(capacity, dtype=np.float64),
            np.zeros(capacity, dtype=np.bool_),
            0,
        )

    @property
    def capacity(self) -> int:
        return len(self.values)

    @property
    def density(self) -> float:
        """Live fraction of the plane's slots."""
        return self.n_live / max(1, len(self.values))

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.live.nbytes)

    def copy(self) -> "DensePlane":
        return DensePlane(self.values.copy(), self.live.copy(), self.n_live)

    # -- row access (local slot indices) ---------------------------------------

    def gather(self, local: np.ndarray) -> np.ndarray:
        """Values at the given (live) local slots — one fancy-indexed read."""
        return self.values[local]

    def get(self, local: int) -> "float | None":
        if not self.live[local]:
            return None
        return float(self.values[local])

    def set(self, local: int, value: float) -> "DensePlane":
        if not self.live[local]:
            self.live[local] = True
            self.n_live += 1
        self.values[local] = value
        return self

    def delete(self, local: int) -> "DensePlane":
        if self.live[local]:
            self.live[local] = False
            self.n_live -= 1
        return self

    # -- representation changes -----------------------------------------------

    def to_sparse(self) -> "SparsePlane":
        rows = np.flatnonzero(self.live).astype(np.int32)
        return SparsePlane(rows, self.values[rows], len(self.values))

    def to_dense(self) -> "DensePlane":
        return self


class SparsePlane:
    """A coordinate-sparse value plane: sorted local slot ids + values.

    The compressed representation for cold, low-density planes (see
    :mod:`repro.core.compression`).  ``rows`` is strictly ascending, so
    gathers are one ``searchsorted`` plus a fancy-indexed read.
    """

    __slots__ = ("rows", "vals", "_capacity")

    kind = "sparse"

    def __init__(self, rows: np.ndarray, vals: np.ndarray, capacity: int) -> None:
        self.rows = rows
        self.vals = vals
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def n_live(self) -> int:
        return len(self.rows)

    @property
    def density(self) -> float:
        return len(self.rows) / max(1, self._capacity)

    @property
    def nbytes(self) -> int:
        return int(self.rows.nbytes + self.vals.nbytes)

    def copy(self) -> "SparsePlane":
        return SparsePlane(self.rows.copy(), self.vals.copy(), self._capacity)

    # -- row access (local slot indices) ---------------------------------------

    def gather(self, local: np.ndarray) -> np.ndarray:
        """Values at the given local slots; every slot must be live."""
        return self.vals[np.searchsorted(self.rows, local)]

    def get(self, local: int) -> "float | None":
        pos = int(np.searchsorted(self.rows, local))
        if pos < len(self.rows) and self.rows[pos] == local:
            return float(self.vals[pos])
        return None

    def set(self, local: int, value: float) -> "SparsePlane":
        pos = int(np.searchsorted(self.rows, local))
        if pos < len(self.rows) and self.rows[pos] == local:
            self.vals[pos] = value
            return self
        self.rows = np.insert(self.rows, pos, local)
        self.vals = np.insert(self.vals, pos, value)
        return self

    def delete(self, local: int) -> "SparsePlane":
        pos = int(np.searchsorted(self.rows, local))
        if pos < len(self.rows) and self.rows[pos] == local:
            self.rows = np.delete(self.rows, pos)
            self.vals = np.delete(self.vals, pos)
        return self

    # -- representation changes -----------------------------------------------

    def to_dense(self) -> DensePlane:
        values = np.zeros(self._capacity, dtype=np.float64)
        live = np.zeros(self._capacity, dtype=np.bool_)
        values[self.rows] = self.vals
        live[self.rows] = True
        return DensePlane(values, live, len(self.rows))

    def to_sparse(self) -> "SparsePlane":
        return self


ChunkPlane = Union[DensePlane, SparsePlane]


@dataclass(frozen=True)
class Chunk:
    """One dense chunk: its grid coordinate, cell origin, and data array.

    MISSING cells are represented as ``np.nan`` inside chunk arrays.
    """

    coord: ChunkCoord
    origin: tuple[int, ...]
    data: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def cell_slices(self) -> tuple[slice, ...]:
        """Slices locating this chunk inside the full cell array."""
        return tuple(
            slice(o, o + s) for o, s in zip(self.origin, self.data.shape)
        )


class ChunkGrid:
    """Geometry of a chunked n-dimensional array.

    Parameters
    ----------
    dim_sizes:
        Cell extent of each dimension (leaf members / instance slots).
    chunk_shape:
        Chunk edge length per dimension.
    """

    def __init__(self, dim_sizes: Sequence[int], chunk_shape: Sequence[int]) -> None:
        if len(dim_sizes) != len(chunk_shape):
            raise StorageError(
                f"dim_sizes has {len(dim_sizes)} entries but chunk_shape has "
                f"{len(chunk_shape)}"
            )
        if not dim_sizes:
            raise StorageError("a chunk grid needs at least one dimension")
        for size, chunk in zip(dim_sizes, chunk_shape):
            if size <= 0 or chunk <= 0:
                raise StorageError(
                    f"dimension sizes and chunk sizes must be positive, got "
                    f"size={size}, chunk={chunk}"
                )
        self.dim_sizes = tuple(int(s) for s in dim_sizes)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        self.chunks_per_dim = tuple(
            ceil(size / chunk)
            for size, chunk in zip(self.dim_sizes, self.chunk_shape)
        )

    @property
    def n_dims(self) -> int:
        return len(self.dim_sizes)

    @property
    def n_chunks(self) -> int:
        total = 1
        for count in self.chunks_per_dim:
            total *= count
        return total

    @property
    def n_cells(self) -> int:
        total = 1
        for size in self.dim_sizes:
            total *= size
        return total

    # -- coordinate mappings ---------------------------------------------------

    def chunk_of_cell(self, cell: Sequence[int]) -> ChunkCoord:
        """Chunk coordinate containing a cell coordinate."""
        self._check_cell(cell)
        return tuple(c // s for c, s in zip(cell, self.chunk_shape))

    def chunk_origin(self, coord: ChunkCoord) -> tuple[int, ...]:
        self._check_chunk(coord)
        return tuple(c * s for c, s in zip(coord, self.chunk_shape))

    def chunk_extent(self, coord: ChunkCoord) -> tuple[int, ...]:
        """Actual shape of a chunk (edge chunks are truncated)."""
        origin = self.chunk_origin(coord)
        return tuple(
            min(chunk, size - o)
            for chunk, size, o in zip(self.chunk_shape, self.dim_sizes, origin)
        )

    def empty_chunk(self, coord: ChunkCoord) -> Chunk:
        """A chunk of the right shape filled with NaN (all ⊥)."""
        extent = self.chunk_extent(coord)
        return Chunk(coord, self.chunk_origin(coord), np.full(extent, np.nan))

    def _check_cell(self, cell: Sequence[int]) -> None:
        if len(cell) != self.n_dims:
            raise StorageError(
                f"cell coordinate {cell!r} has wrong arity for "
                f"{self.n_dims}-dimensional grid"
            )
        for value, size in zip(cell, self.dim_sizes):
            if not 0 <= value < size:
                raise StorageError(f"cell coordinate {cell!r} out of bounds")

    def _check_chunk(self, coord: ChunkCoord) -> None:
        if len(coord) != self.n_dims:
            raise StorageError(
                f"chunk coordinate {coord!r} has wrong arity for "
                f"{self.n_dims}-dimensional grid"
            )
        for value, count in zip(coord, self.chunks_per_dim):
            if not 0 <= value < count:
                raise StorageError(f"chunk coordinate {coord!r} out of bounds")

    # -- linearisation & iteration -----------------------------------------------

    def _check_order(self, order: Sequence[int]) -> tuple[int, ...]:
        if sorted(order) != list(range(self.n_dims)):
            raise StorageError(
                f"dimension order {order!r} is not a permutation of "
                f"0..{self.n_dims - 1}"
            )
        return tuple(order)

    def linear_index(self, coord: ChunkCoord, order: Sequence[int]) -> int:
        """Position of a chunk in the scan for a dimension order.

        The first dimension of ``order`` varies fastest (Fig. 6 numbering).
        """
        order = self._check_order(order)
        self._check_chunk(coord)
        index = 0
        stride = 1
        for dim in order:
            index += coord[dim] * stride
            stride *= self.chunks_per_dim[dim]
        return index

    def iter_chunks(self, order: Sequence[int]) -> Iterator[ChunkCoord]:
        """All chunk coordinates in scan order (first dim fastest)."""
        order = self._check_order(order)
        ranges = [range(self.chunks_per_dim[dim]) for dim in reversed(order)]
        inverse = list(reversed(order))
        for combo in product(*ranges):
            coord = [0] * self.n_dims
            for position, dim in enumerate(inverse):
                coord[dim] = combo[position]
            yield tuple(coord)

    def default_order(self) -> tuple[int, ...]:
        """Ascending chunk-count order (Zhao's cardinality heuristic)."""
        return tuple(
            sorted(range(self.n_dims), key=lambda d: self.chunks_per_dim[d])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkGrid(sizes={self.dim_sizes}, chunk={self.chunk_shape}, "
            f"chunks={self.chunks_per_dim})"
        )
