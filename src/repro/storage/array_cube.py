"""Labelled chunked cubes: the bridge between coordinates and arrays.

A :class:`ChunkedCube` pairs a :class:`~repro.storage.chunk_store.ChunkStore`
with one :class:`Axis` per dimension mapping coordinate labels (member
names, member-instance paths, moments) to integer positions.  This is the
physical organisation the paper's Sec. 6 cube uses ("a multidimensional
array-chunking scheme similar to that proposed in [19]"): each member
instance of a varying dimension occupies its own slot along the axis, as
in Fig. 7 where 100/1001, 200/1001 and 300/1001 are three separate rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.olap.cube import Cube
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid
from repro.storage.io_stats import IoCostModel

__all__ = ["Axis", "ChunkedCube"]


class Axis:
    """A named, ordered list of coordinate labels for one dimension."""

    __slots__ = ("name", "labels", "_index")

    def __init__(self, name: str, labels: Sequence[str]) -> None:
        if not labels:
            raise StorageError(f"axis {name!r} needs at least one label")
        if len(set(labels)) != len(labels):
            raise StorageError(f"axis {name!r} has duplicate labels")
        self.name = name
        self.labels = tuple(labels)
        self._index = {label: i for i, label in enumerate(self.labels)}

    def __len__(self) -> int:
        return len(self.labels)

    def index(self, label: str) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise StorageError(
                f"label {label!r} not on axis {self.name!r}"
            ) from None

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Axis({self.name!r}, {len(self.labels)} labels)"


class ChunkedCube:
    """A chunk-stored dense cube with labelled axes (leaf level only)."""

    def __init__(self, axes: Sequence[Axis], store: ChunkStore) -> None:
        sizes = tuple(len(axis) for axis in axes)
        if sizes != store.grid.dim_sizes:
            raise StorageError(
                f"axes sizes {sizes} do not match grid {store.grid.dim_sizes}"
            )
        self.axes = tuple(axes)
        self.store = store
        self._axis_index = {axis.name: i for i, axis in enumerate(self.axes)}

    @property
    def grid(self) -> ChunkGrid:
        return self.store.grid

    def axis(self, name: str) -> Axis:
        try:
            return self.axes[self._axis_index[name]]
        except KeyError:
            raise StorageError(f"no axis named {name!r}") from None

    def axis_position(self, name: str) -> int:
        try:
            return self._axis_index[name]
        except KeyError:
            raise StorageError(f"no axis named {name!r}") from None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        axes: Sequence[Axis],
        cells: Iterable[tuple[Sequence[str], float]],
        chunk_shape: Sequence[int],
        cost_model: IoCostModel | None = None,
    ) -> "ChunkedCube":
        """Build from (label-coordinates, value) pairs.

        Chunks are laid out on the simulated disk in the grid's default
        dimension order; only chunks containing data are stored.
        """
        sizes = tuple(len(axis) for axis in axes)
        grid = ChunkGrid(sizes, chunk_shape)
        store = ChunkStore(grid, cost_model)
        pending: dict[tuple[int, ...], np.ndarray] = {}
        for labels, value in cells:
            if len(labels) != len(axes):
                raise StorageError(
                    f"cell {labels!r} has {len(labels)} coordinates for "
                    f"{len(axes)} axes"
                )
            cell = tuple(axis.index(label) for axis, label in zip(axes, labels))
            coord = grid.chunk_of_cell(cell)
            chunk = pending.get(coord)
            if chunk is None:
                chunk = grid.empty_chunk(coord).data
                pending[coord] = chunk
            origin = grid.chunk_origin(coord)
            local = tuple(c - o for c, o in zip(cell, origin))
            chunk[local] = value
        for coord in sorted(
            pending, key=lambda c: grid.linear_index(c, grid.default_order())
        ):
            store.load(coord, pending[coord])
        return cls(axes, store)

    @classmethod
    def from_cube(cls, cube: Cube, chunk_shape: Sequence[int] | None = None) -> "ChunkedCube":
        """Build from a semantic cube's leaf cells.

        Axis labels are the distinct leaf coordinates present, in sorted
        order (instance paths for varying dimensions).  Intended for tests
        and small integration scenarios; workload generators build chunked
        cubes directly for scale.
        """
        schema = cube.schema
        label_sets: list[set[str]] = [set() for _ in schema.dimensions]
        for addr, _ in cube.leaf_cells():
            for i, coord in enumerate(addr):
                label_sets[i].add(coord)
        axes = []
        for dimension, labels in zip(schema.dimensions, label_sets):
            if dimension.ordered:
                # Ordered (parameter) dimensions keep their *full* leaf
                # domain so axis positions equal moment order indices and
                # validity-set universes line up.
                ordered_labels = [m.name for m in dimension.leaf_members()]
            else:
                if not labels:
                    labels = {dimension.leaf_members()[0].name}
                ordered_labels = sorted(labels)
            axes.append(Axis(dimension.name, ordered_labels))
        if chunk_shape is None:
            chunk_shape = tuple(max(1, len(a) // 2) for a in axes)
        return cls.build(
            axes, ((addr, value) for addr, value in cube.leaf_cells()), chunk_shape
        )

    # -- access ------------------------------------------------------------------

    def cell_of(self, labels: Sequence[str]) -> tuple[int, ...]:
        if len(labels) != len(self.axes):
            raise StorageError(
                f"expected {len(self.axes)} labels, got {len(labels)}"
            )
        return tuple(
            axis.index(label) for axis, label in zip(self.axes, labels)
        )

    def value(self, labels: Sequence[str]) -> float:
        """Cell value by labels; NaN encodes ⊥.  Counts I/O."""
        return self.value_at(self.cell_of(labels))

    def value_at(self, cell: Sequence[int]) -> float:
        coord = self.grid.chunk_of_cell(cell)
        data = self.store.read(coord)
        origin = self.grid.chunk_origin(coord)
        local = tuple(c - o for c, o in zip(cell, origin))
        return float(data[local])

    def peek_at(self, cell: Sequence[int]) -> float:
        """Cell value without I/O accounting (tests)."""
        coord = self.grid.chunk_of_cell(cell)
        data = self.store.peek(coord)
        origin = self.grid.chunk_origin(coord)
        local = tuple(c - o for c, o in zip(cell, origin))
        return float(data[local])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(f"{a.name}({len(a)})" for a in self.axes)
        return f"ChunkedCube({names}; {self.store.n_stored} chunks)"
