"""Labelled chunked cubes: the bridge between coordinates and arrays.

A :class:`ChunkedCube` pairs a :class:`~repro.storage.chunk_store.ChunkStore`
with one :class:`Axis` per dimension mapping coordinate labels (member
names, member-instance paths, moments) to integer positions.  This is the
physical organisation the paper's Sec. 6 cube uses ("a multidimensional
array-chunking scheme similar to that proposed in [19]"): each member
instance of a varying dimension occupies its own slot along the axis, as
in Fig. 7 where 100/1001, 200/1001 and 300/1001 are three separate rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.olap.cube import Cube
from repro.storage.chunk_store import ChunkStore
from repro.storage.chunks import ChunkGrid, ChunkPlane, DensePlane
from repro.storage.io_stats import IoCostModel

__all__ = ["Axis", "ChunkedCube", "ColumnarLeafStore", "DEFAULT_PLANE_SIZE"]

#: rows per value-plane chunk; 4096 float64 slots = one 32 KiB plane,
#: small enough that a copy-on-write divergence is cheap, large enough
#: that gathers amortise the per-chunk dispatch
DEFAULT_PLANE_SIZE = 4096


class ColumnarLeafStore:
    """Row-addressed columnar leaf values in chunked numpy planes.

    The physical half of the vectorized rollup kernel: leaf cells live at
    integer *rows* (assigned in insertion order, never reused), and values
    are stored column-wise in fixed-size plane chunks
    (:class:`~repro.storage.chunks.DensePlane` /
    :class:`~repro.storage.chunks.SparsePlane`).  A scope — an ascending
    array of row ids — is aggregated by one fancy-indexed gather per
    touched plane instead of one dict probe per cell.

    Copy-on-write
    -------------
    :meth:`fork` is the columnar analogue of
    :meth:`ChunkStore.fork <repro.storage.chunk_store.ChunkStore.fork>`:
    O(#planes) pointer copies, with the *plane* as the COW unit.  After a
    fork, both stores mark every plane shared; the first write either side
    makes to a shared plane copies just that plane (32 KiB), so a pinned
    snapshot keeps reading the old bytes while the live store diverges one
    plane at a time.

    Thread-safety: the store itself is unsynchronised — it is owned by a
    :class:`~repro.perf.rollup_index.RollupIndex` and only ever touched
    under that index's lock.
    """

    __slots__ = ("_planes", "_shared", "_size", "_n_live", "plane_size")

    def __init__(self, plane_size: int = DEFAULT_PLANE_SIZE) -> None:
        if plane_size <= 0:
            raise StorageError("plane_size must be positive")
        self.plane_size = plane_size
        self._planes: list[ChunkPlane] = []
        self._shared: list[bool] = []
        self._size = 0
        self._n_live = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Total row slots ever allocated (deleted rows leave holes)."""
        return self._size

    @property
    def n_live(self) -> int:
        return self._n_live

    @property
    def n_planes(self) -> int:
        return len(self._planes)

    @property
    def nbytes(self) -> int:
        return sum(plane.nbytes for plane in self._planes)

    def plane_kinds(self) -> list[str]:
        """Per-chunk representation (``"dense"`` / ``"sparse"``) — the
        observable output of the density-based selection rule."""
        return [plane.kind for plane in self._planes]

    def density(self, chunk: int) -> float:
        return self._planes[chunk].density

    # -- copy-on-write ----------------------------------------------------------

    def fork(self) -> "ColumnarLeafStore":
        """A plane-granularity COW snapshot of this store."""
        clone = ColumnarLeafStore(self.plane_size)
        clone._planes = list(self._planes)
        clone._shared = [True] * len(self._planes)
        clone._size = self._size
        clone._n_live = self._n_live
        # this side must now treat every plane as pinned too
        self._shared = [True] * len(self._planes)
        return clone

    def _writable_plane(self, chunk: int) -> ChunkPlane:
        plane = self._planes[chunk]
        if self._shared[chunk]:
            plane = plane.copy()
            self._planes[chunk] = plane
            self._shared[chunk] = False
        return plane

    # -- mutation ---------------------------------------------------------------

    def append(self, value: float) -> int:
        """Store ``value`` at the next row; returns the row id."""
        row = self._size
        chunk, local = divmod(row, self.plane_size)
        if chunk == len(self._planes):
            self._planes.append(DensePlane.empty(self.plane_size))
            self._shared.append(False)
        plane = self._writable_plane(chunk)
        if plane.kind == "sparse":
            # a compacted trailing plane receiving new rows inflates back
            plane = plane.to_dense()
            self._planes[chunk] = plane
        self._planes[chunk] = plane.set(local, value)
        self._size = row + 1
        self._n_live += 1
        return row

    def update(self, row: int, value: float) -> None:
        """Re-value a live row in place (COW-copies a shared plane)."""
        chunk, local = divmod(row, self.plane_size)
        plane = self._writable_plane(chunk)
        self._planes[chunk] = plane.set(local, value)

    def delete(self, row: int) -> None:
        """Kill a row; its id is never reused."""
        chunk, local = divmod(row, self.plane_size)
        plane = self._planes[chunk]
        if plane.get(local) is None:
            return
        plane = self._writable_plane(chunk)
        self._planes[chunk] = plane.delete(local)
        self._n_live -= 1

    # -- reads ------------------------------------------------------------------

    def get(self, row: int) -> "float | None":
        chunk, local = divmod(row, self.plane_size)
        return self._planes[chunk].get(local)

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Values at the given **ascending, live** row ids.

        The scope array is split once by plane (``searchsorted`` against
        the plane boundaries — valid because rows are sorted) and each
        plane answers its slice with one vectorized read.
        """
        n = len(rows)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        first_chunk = int(rows[0]) // self.plane_size
        last_chunk = int(rows[n - 1]) // self.plane_size
        if first_chunk == last_chunk:
            return self._planes[first_chunk].gather(
                rows - first_chunk * self.plane_size
            )
        out = np.empty(n, dtype=np.float64)
        boundaries = np.arange(
            (first_chunk + 1) * self.plane_size,
            (last_chunk + 1) * self.plane_size,
            self.plane_size,
            dtype=np.int64,
        )
        cuts = np.searchsorted(rows, boundaries)
        start = 0
        for chunk, stop in zip(
            range(first_chunk, last_chunk + 1), list(cuts) + [n]
        ):
            if stop > start:
                out[start:stop] = self._planes[chunk].gather(
                    rows[start:stop] - chunk * self.plane_size
                )
            start = stop
        return out

    # -- cold-chunk compression --------------------------------------------------

    def compact(self, *, ceiling: "float | None" = None) -> int:
        """Re-encode cold low-density planes as coordinate-sparse.

        Applies :func:`repro.core.compression.compress_plane` to every
        *sealed* plane (all but the trailing append plane — that one is
        still hot).  Returns the number of planes converted.  Shared
        planes are replaced, not mutated, so pinned forks are unaffected.
        """
        from repro.core.compression import SPARSE_DENSITY_CEILING, compress_plane

        if ceiling is None:
            ceiling = SPARSE_DENSITY_CEILING
        converted = 0
        for chunk in range(max(0, len(self._planes) - 1)):
            plane = self._planes[chunk]
            packed = compress_plane(plane, ceiling=ceiling)
            if packed is not plane:
                self._planes[chunk] = packed
                self._shared[chunk] = False
                converted += 1
        return converted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(self.plane_kinds()) or "-"
        return (
            f"ColumnarLeafStore({self._n_live}/{self._size} rows, "
            f"planes=[{kinds}])"
        )


class Axis:
    """A named, ordered list of coordinate labels for one dimension."""

    __slots__ = ("name", "labels", "_index")

    def __init__(self, name: str, labels: Sequence[str]) -> None:
        if not labels:
            raise StorageError(f"axis {name!r} needs at least one label")
        if len(set(labels)) != len(labels):
            raise StorageError(f"axis {name!r} has duplicate labels")
        self.name = name
        self.labels = tuple(labels)
        self._index = {label: i for i, label in enumerate(self.labels)}

    def __len__(self) -> int:
        return len(self.labels)

    def index(self, label: str) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise StorageError(
                f"label {label!r} not on axis {self.name!r}"
            ) from None

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Axis({self.name!r}, {len(self.labels)} labels)"


class ChunkedCube:
    """A chunk-stored dense cube with labelled axes (leaf level only)."""

    def __init__(self, axes: Sequence[Axis], store: ChunkStore) -> None:
        sizes = tuple(len(axis) for axis in axes)
        if sizes != store.grid.dim_sizes:
            raise StorageError(
                f"axes sizes {sizes} do not match grid {store.grid.dim_sizes}"
            )
        self.axes = tuple(axes)
        self.store = store
        self._axis_index = {axis.name: i for i, axis in enumerate(self.axes)}

    @property
    def grid(self) -> ChunkGrid:
        return self.store.grid

    def axis(self, name: str) -> Axis:
        try:
            return self.axes[self._axis_index[name]]
        except KeyError:
            raise StorageError(f"no axis named {name!r}") from None

    def axis_position(self, name: str) -> int:
        try:
            return self._axis_index[name]
        except KeyError:
            raise StorageError(f"no axis named {name!r}") from None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        axes: Sequence[Axis],
        cells: Iterable[tuple[Sequence[str], float]],
        chunk_shape: Sequence[int],
        cost_model: IoCostModel | None = None,
    ) -> "ChunkedCube":
        """Build from (label-coordinates, value) pairs.

        Chunks are laid out on the simulated disk in the grid's default
        dimension order; only chunks containing data are stored.
        """
        sizes = tuple(len(axis) for axis in axes)
        grid = ChunkGrid(sizes, chunk_shape)
        store = ChunkStore(grid, cost_model)
        pending: dict[tuple[int, ...], np.ndarray] = {}
        for labels, value in cells:
            if len(labels) != len(axes):
                raise StorageError(
                    f"cell {labels!r} has {len(labels)} coordinates for "
                    f"{len(axes)} axes"
                )
            cell = tuple(axis.index(label) for axis, label in zip(axes, labels))
            coord = grid.chunk_of_cell(cell)
            chunk = pending.get(coord)
            if chunk is None:
                chunk = grid.empty_chunk(coord).data
                pending[coord] = chunk
            origin = grid.chunk_origin(coord)
            local = tuple(c - o for c, o in zip(cell, origin))
            chunk[local] = value
        for coord in sorted(
            pending, key=lambda c: grid.linear_index(c, grid.default_order())
        ):
            store.load(coord, pending[coord])
        return cls(axes, store)

    @classmethod
    def from_cube(
        cls,
        cube: Cube,
        chunk_shape: Sequence[int] | None = None,
        *,
        use_planes: bool = True,
    ) -> "ChunkedCube":
        """Build from a semantic cube's leaf cells.

        Axis labels are the distinct leaf coordinates present, in sorted
        order (instance paths for varying dimensions).  Intended for tests
        and small integration scenarios; workload generators build chunked
        cubes directly for scale.

        With ``use_planes=True`` (the default) the leaf values come from
        the cube's rollup-index columnar planes in one vectorized gather
        (:meth:`~repro.perf.rollup_index.RollupIndex.leaf_arrays`)
        instead of a second pass over the semantic dict; the dict path
        remains as the fallback (and under ``use_planes=False``, which
        the bit-identity regression tests exercise).
        """
        schema = cube.schema
        items: "list[tuple[tuple[str, ...], float]] | None" = None
        if use_planes:
            snapshot = cube.rollup_index().leaf_arrays(cube._leaf_cells)
            if snapshot is not None:
                addresses, values = snapshot
                items = list(zip(addresses, values.tolist()))
        if items is None:
            items = list(cube.leaf_cells())
        label_sets: list[set[str]] = [set() for _ in schema.dimensions]
        for addr, _ in items:
            for i, coord in enumerate(addr):
                label_sets[i].add(coord)
        axes = []
        for dimension, labels in zip(schema.dimensions, label_sets):
            if dimension.ordered:
                # Ordered (parameter) dimensions keep their *full* leaf
                # domain so axis positions equal moment order indices and
                # validity-set universes line up.
                ordered_labels = [m.name for m in dimension.leaf_members()]
            else:
                if not labels:
                    labels = {dimension.leaf_members()[0].name}
                ordered_labels = sorted(labels)
            axes.append(Axis(dimension.name, ordered_labels))
        if chunk_shape is None:
            chunk_shape = tuple(max(1, len(a) // 2) for a in axes)
        return cls.build(axes, iter(items), chunk_shape)

    def fork(self) -> "ChunkedCube":
        """A copy-on-write clone over :meth:`ChunkStore.fork`: axes are
        shared (immutable), chunks are shared until first write."""
        return ChunkedCube(self.axes, self.store.fork())

    # -- access ------------------------------------------------------------------

    def cell_of(self, labels: Sequence[str]) -> tuple[int, ...]:
        if len(labels) != len(self.axes):
            raise StorageError(
                f"expected {len(self.axes)} labels, got {len(labels)}"
            )
        return tuple(
            axis.index(label) for axis, label in zip(self.axes, labels)
        )

    def value(self, labels: Sequence[str]) -> float:
        """Cell value by labels; NaN encodes ⊥.  Counts I/O."""
        return self.value_at(self.cell_of(labels))

    def value_at(self, cell: Sequence[int]) -> float:
        coord = self.grid.chunk_of_cell(cell)
        data = self.store.read(coord)
        origin = self.grid.chunk_origin(coord)
        local = tuple(c - o for c, o in zip(cell, origin))
        return float(data[local])

    def peek_at(self, cell: Sequence[int]) -> float:
        """Cell value without I/O accounting (tests)."""
        coord = self.grid.chunk_of_cell(cell)
        data = self.store.peek(coord)
        origin = self.grid.chunk_origin(coord)
        local = tuple(c - o for c, o in zip(cell, origin))
        return float(data[local])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(f"{a.name}({len(a)})" for a in self.axes)
        return f"ChunkedCube({names}; {self.store.n_stored} chunks)"
