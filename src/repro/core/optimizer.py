"""Rule-based optimisation of what-if algebra plans (Sec. 8 future work).

Rewrite rules, applied to a fixpoint:

1. **Selection merging** — σ_{p2}(σ_{p1}(C)) on the same dimension becomes
   σ_{p1 ∧ p2}(C); selections on different dimensions are sorted into a
   canonical order so same-dimension pairs become adjacent.
2. **Selection pushdown through Perspective** — a *member-level* predicate
   (depends only on member names, see :class:`repro.core.plans.Pred`)
   commutes with a perspective on the same dimension, because Φ∘ρ only
   moves data between instances of one member; selections on a *different*
   dimension always commute.  Pushing σ down shrinks the cube the
   (expensive) relocation processes.
3. **Selection pushdown through Split** — same reasoning: split moves
   data between instances of one member, preserving member names.
4. **Redundant static perspective elimination** —
   ``Perspective[static, P2](Perspective[static, P1](C))`` with P1 ⊆ P2 is
   the inner perspective alone (static keeps instances valid at some
   moment of P; survivors of the tighter P1 automatically survive P2).
5. **Evaluate collapsing** — consecutive Evaluate nodes with the same rule
   source collapse to one (re-deriving aggregates twice is idempotent).

The optimiser is purely structural — every rule preserves the plan's
result, which ``tests/core/test_optimizer.py`` checks by executing both
plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plans import (
    And,
    BaseCube,
    EvaluateNode,
    PerspectiveNode,
    PlanNode,
    SelectNode,
    SplitNode,
)

__all__ = ["OptimizationTrace", "optimize"]


@dataclass
class OptimizationTrace:
    """What the optimiser did: (rule name, node label) events in order."""

    events: list[tuple[str, str]] = field(default_factory=list)

    def record(self, rule: str, node: PlanNode) -> None:
        self.events.append((rule, node.label()))

    @property
    def rules_fired(self) -> list[str]:
        return [rule for rule, _ in self.events]


def _rebuild(node: PlanNode, new_child: PlanNode) -> PlanNode:
    """A copy of ``node`` with its child replaced."""
    if isinstance(node, SelectNode):
        return SelectNode(new_child, node.dimension, node.predicate)
    if isinstance(node, PerspectiveNode):
        return PerspectiveNode(
            new_child, node.dimension, node.perspectives, node.semantics
        )
    if isinstance(node, SplitNode):
        return SplitNode(new_child, node.dimension, node.changes)
    if isinstance(node, EvaluateNode):
        return EvaluateNode(new_child, node.rule_source)
    raise TypeError(f"cannot rebuild {node!r}")


def _rewrite_once(node: PlanNode, trace: OptimizationTrace) -> PlanNode:
    """Apply the first matching rule at this node; returns the node
    unchanged when nothing applies."""

    # Rule 1a: merge adjacent selections on the same dimension.
    if (
        isinstance(node, SelectNode)
        and isinstance(node.input_plan, SelectNode)
        and node.input_plan.dimension == node.dimension
    ):
        inner = node.input_plan
        merged = SelectNode(
            inner.input_plan,
            node.dimension,
            And(inner.predicate, node.predicate),
        )
        trace.record("merge-selections", node)
        return merged

    # Rule 1b: canonicalise adjacent selections on different dimensions
    # (sort by dimension name) so same-dimension selections meet.
    if (
        isinstance(node, SelectNode)
        and isinstance(node.input_plan, SelectNode)
        and node.input_plan.dimension > node.dimension
    ):
        inner = node.input_plan
        swapped = SelectNode(
            SelectNode(inner.input_plan, node.dimension, node.predicate),
            inner.dimension,
            inner.predicate,
        )
        trace.record("reorder-selections", node)
        return swapped

    # Rules 2 & 3: push selections below Perspective / Split.
    if isinstance(node, SelectNode) and isinstance(
        node.input_plan, (PerspectiveNode, SplitNode)
    ):
        inner = node.input_plan
        different_dimension = node.dimension != inner.dimension
        if different_dimension or node.predicate.is_member_level:
            pushed = _rebuild(
                inner,
                SelectNode(inner.input_plan, node.dimension, node.predicate),
            )
            rule = (
                "push-select-through-perspective"
                if isinstance(inner, PerspectiveNode)
                else "push-select-through-split"
            )
            trace.record(rule, node)
            return pushed

    # Rule 4: drop a redundant outer static perspective.
    if (
        isinstance(node, PerspectiveNode)
        and node.semantics.value == "static"
        and isinstance(node.input_plan, PerspectiveNode)
        and node.input_plan.semantics.value == "static"
        and node.input_plan.dimension == node.dimension
        and set(node.input_plan.perspectives) <= set(node.perspectives)
    ):
        trace.record("drop-redundant-static-perspective", node)
        return node.input_plan

    # Rule 5: collapse consecutive Evaluate nodes.
    if (
        isinstance(node, EvaluateNode)
        and isinstance(node.input_plan, EvaluateNode)
        and node.input_plan.rule_source == node.rule_source
    ):
        trace.record("collapse-evaluate", node)
        return node.input_plan

    return node


def _optimize_tree(node: PlanNode, trace: OptimizationTrace) -> PlanNode:
    if isinstance(node, BaseCube):
        return node
    child = node.child
    assert child is not None
    new_child = _optimize_tree(child, trace)
    if new_child is not child:
        node = _rebuild(node, new_child)
    rewritten = _rewrite_once(node, trace)
    if rewritten is not node:
        return _optimize_tree(rewritten, trace)
    return node


def optimize(plan: PlanNode, max_rounds: int = 20) -> tuple[PlanNode, OptimizationTrace]:
    """Rewrite a plan to a fixpoint; returns (optimised plan, trace)."""
    trace = OptimizationTrace()
    current = plan
    for _ in range(max_rounds):
        rewritten = _optimize_tree(current, trace)
        if rewritten == current:
            return rewritten, trace
        current = rewritten
    return current, trace
