"""Delta aggregation: visual-mode group-bys over a perspective cube.

The paper (Sec. 3): "In calculating aggregates, we have a choice — either
use the original scenario or the assumed hypothetical scenario."  Visual
mode re-aggregates over the perspective cube — but a perspective query
only *moves* the cells of its changing members, so recomputing a group-by
from scratch wastes the work already done for the base cube.

:func:`adjusted_group_by` computes a visual-mode group-by as::

    base group-by  -  contributions of the queried members' original rows
                   +  contributions of their relocated rows

The base group-by comes from the shared chunk scan
(:func:`repro.storage.cube_compute.compute_group_bys`, possibly cached by
the caller); the old/new row contributions come from the query result and
a targeted read of the original instance rows.  Both old and new rows live
at *input-axis* positions (Φ's targets are input instances), so the
adjustment is position-aligned by construction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.merge_graph import VaryingAxisSpec
from repro.core.perspective_cube import PerspectiveQueryResult
from repro.errors import QueryError
from repro.storage.cube_compute import GroupByResult, compute_group_bys

__all__ = ["original_rows", "adjusted_group_by"]


def original_rows(
    spec: VaryingAxisSpec, members: Sequence[str]
) -> dict[str, np.ndarray]:
    """The given members' instance rows as stored in the input cube.

    Returns per-instance arrays of shape ``(universe, *other_axis_sizes)``
    (same layout as :attr:`PerspectiveQueryResult.rows`).  Reads are
    accounted on the cube's store.
    """
    grid = spec.cube.grid
    universe = len(spec.param_axis)
    other = [
        i for i in range(grid.n_dims) if i not in (spec.axis_index, spec.param_index)
    ]
    other_sizes = tuple(grid.dim_sizes[i] for i in other)
    rows: dict[str, np.ndarray] = {}
    for member in members:
        for label in spec.slots_of_member(member):
            data = np.full((universe, *other_sizes), np.nan)
            row = spec.slot_row(label)
            for t in spec.validity_of_slot[label]:
                cell = [0] * grid.n_dims
                cell[spec.axis_index] = row
                cell[spec.param_index] = t
                coord = grid.chunk_of_cell(tuple(cell))
                chunk = spec.cube.store.read(coord)
                origin = grid.chunk_origin(coord)
                indexer: list[object] = [slice(None)] * grid.n_dims
                indexer[spec.axis_index] = row - origin[spec.axis_index]
                indexer[spec.param_index] = t - origin[spec.param_index]
                vector = chunk[tuple(indexer)]
                out_region = tuple(
                    slice(origin[axis], origin[axis] + chunk.shape[axis])
                    for axis in other
                )
                data[(t, *out_region)] = vector
            rows[label] = data
    return rows


def _collapse(
    spec: VaryingAxisSpec,
    label: str,
    data: np.ndarray,
    dims: tuple[int, ...],
) -> tuple[tuple[object, ...], np.ndarray, np.ndarray]:
    """Collapse one instance-row array onto the retained dims.

    Returns (region indexer into the group-by array, sums, counts).
    """
    grid = spec.cube.grid
    other = [
        i for i in range(grid.n_dims) if i not in (spec.axis_index, spec.param_index)
    ]
    # data axes: 0 = parameter, 1.. = other axes in order.
    data_axis_of_dim = {spec.param_index: 0}
    for position, axis in enumerate(other):
        data_axis_of_dim[axis] = position + 1

    kept_dims = [d for d in dims if d != spec.axis_index]
    indexer: list[object] = [
        spec.slot_row(label) if dim == spec.axis_index else slice(None)
        for dim in dims
    ]
    keep_axes = {data_axis_of_dim[d] for d in kept_dims}
    collapse_axes = tuple(
        axis for axis in range(data.ndim) if axis not in keep_axes
    )
    mask = ~np.isnan(data)
    filled = np.where(mask, data, 0.0)
    if collapse_axes:
        sums = filled.sum(axis=collapse_axes)
        counts = mask.sum(axis=collapse_axes)
    else:
        sums, counts = filled, mask.astype(np.int64)
    # After collapsing, the remaining array axes correspond to the kept
    # data axes in ascending order; permute them to the dims order.
    kept_data_axes = sorted(keep_axes)
    current_position = {
        d: kept_data_axes.index(data_axis_of_dim[d]) for d in kept_dims
    }
    permutation = [current_position[d] for d in kept_dims]
    if permutation != list(range(len(permutation))):
        sums = np.transpose(sums, permutation)
        counts = np.transpose(counts, permutation)
    return tuple(indexer), sums, counts


def adjusted_group_by(
    spec: VaryingAxisSpec,
    result: PerspectiveQueryResult,
    members: Sequence[str],
    dims: Iterable[int],
    base: GroupByResult | None = None,
) -> GroupByResult:
    """Visual-mode group-by over the perspective cube via delta adjustment.

    ``dims`` are the retained axis indices (may include the varying axis —
    old and new rows both live at input-axis positions).  ``base`` lets
    the caller pass a cached base group-by; otherwise one shared scan
    computes it.
    """
    dims = tuple(sorted(dims))
    store = spec.cube.store
    if base is None:
        base = compute_group_bys(store, [dims])[dims]
    elif base.dims != dims:
        raise QueryError(
            f"cached base group-by is over dims {base.dims}, requested {dims}"
        )

    if base.counts is None:
        raise QueryError(
            "delta adjustment needs a base group-by with leaf counts "
            "(compute it via compute_group_bys)"
        )
    mask = ~np.isnan(base.data)
    sums = np.where(mask, base.data, 0.0)
    # True per-position leaf counts: removing every contribution restores ⊥.
    counts = base.counts.copy()

    for label, data in original_rows(spec, members).items():
        region, old_sums, old_counts = _collapse(spec, label, data, dims)
        sums[region] -= old_sums
        counts[region] -= old_counts
    for label, data in result.rows.items():
        region, new_sums, new_counts = _collapse(spec, label, data, dims)
        sums[region] += new_sums
        counts[region] += new_counts

    adjusted = np.where(counts > 0, sums, np.nan)
    return GroupByResult(dims, adjusted, base.memory_cells)
