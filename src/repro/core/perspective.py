"""Perspectives and the validity-set transform Φ (Sec. 3.3, 3.4, 4.2).

A *perspective set* P is a subset of the leaf members ("moments") of a
parameter dimension.  Applying perspectives to a cube transforms the
validity sets of the varying dimension's member instances; the operator Φ
(Defs. 4.2 and 4.3) captures every semantics the paper defines:

* **static** — identity on validity sets; only instances valid at some
  perspective survive.
* **forward** — the structure at each perspective point is imposed on the
  interval up to the next perspective point: ``Stretch(d) = { t >= Pmin :
  d valid at max{p in P : p <= t} }``; moments before Pmin keep their
  original assignment.
* **extended forward** — as forward, but all moments before Pmin are
  assigned to the instance valid at Pmin.
* **backward / extended backward** — mirror images with moments ordered
  descending (Sec. 3.3 closes with this symmetry).

Φ is a pure metadata operator: it maps validity sets to validity sets.
Moving the cell values accordingly is the job of the relocate operator ρ
(:mod:`repro.core.operators`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence, TypeVar

from repro.validity import ValiditySet
from repro.errors import QueryError
from repro.olap.instances import MemberInstance, VaryingDimension

__all__ = [
    "Semantics",
    "Mode",
    "PerspectiveSet",
    "stretch",
    "phi",
    "phi_member",
]

K = TypeVar("K")


class Semantics(enum.Enum):
    """Perspective semantics for negative scenarios (Sec. 3.3)."""

    STATIC = "static"
    FORWARD = "forward"
    EXTENDED_FORWARD = "extended_forward"
    BACKWARD = "backward"
    EXTENDED_BACKWARD = "extended_backward"

    @property
    def is_dynamic(self) -> bool:
        return self is not Semantics.STATIC

    @property
    def is_forward(self) -> bool:
        return self in (Semantics.FORWARD, Semantics.EXTENDED_FORWARD)

    @property
    def is_backward(self) -> bool:
        return self in (Semantics.BACKWARD, Semantics.EXTENDED_BACKWARD)

    @property
    def is_extended(self) -> bool:
        return self in (Semantics.EXTENDED_FORWARD, Semantics.EXTENDED_BACKWARD)


class Mode(enum.Enum):
    """Evaluation mode for non-leaf cells (Sec. 3.3).

    Non-visual retains input-cube aggregate values; visual re-evaluates the
    defining rules over the output cube.
    """

    NON_VISUAL = "non_visual"
    VISUAL = "visual"


class PerspectiveSet:
    """A non-empty, sorted set of perspective moments with a universe."""

    __slots__ = ("_moments", "_universe")

    def __init__(self, moments: Iterable[int], universe: int) -> None:
        unique = sorted(set(moments))
        if not unique:
            raise QueryError("a perspective set must contain at least one moment")
        for moment in unique:
            if not 0 <= moment < universe:
                raise QueryError(
                    f"perspective moment {moment} outside parameter range "
                    f"[0, {universe})"
                )
        self._moments = tuple(unique)
        self._universe = universe

    @classmethod
    def from_names(
        cls, names: Iterable[str], varying: VaryingDimension
    ) -> "PerspectiveSet":
        """Build from parameter-dimension leaf names (e.g. ``["Jan","Apr"]``)."""
        return cls(
            (varying.moment_index(name) for name in names), varying.universe
        )

    @property
    def moments(self) -> tuple[int, ...]:
        return self._moments

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def pmin(self) -> int:
        return self._moments[0]

    @property
    def pmax(self) -> int:
        return self._moments[-1]

    def __len__(self) -> int:
        return len(self._moments)

    def __iter__(self):
        return iter(self._moments)

    def __contains__(self, moment: int) -> bool:
        return moment in self._moments

    def governing_forward(self, t: int) -> int | None:
        """max{p in P : p <= t}, or None if t precedes every perspective."""
        governing = None
        for p in self._moments:
            if p <= t:
                governing = p
            else:
                break
        return governing

    def governing_backward(self, t: int) -> int | None:
        """min{p in P : p >= t}, or None if t follows every perspective."""
        for p in self._moments:
            if p >= t:
                return p
        return None

    def as_validity_set(self) -> ValiditySet:
        return ValiditySet(self._moments, self._universe)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerspectiveSet({list(self._moments)}, universe={self._universe})"


def stretch(validity: ValiditySet, perspectives: PerspectiveSet) -> ValiditySet:
    """``Stretch(d)`` of Def. 4.3 for one instance's input validity set.

    The union of intervals ``[p_i, p_{i+1})`` over the perspective points
    ``p_i`` at which the instance was valid (``p_{k+1} = +inf``).
    """
    if validity.universe != perspectives.universe:
        raise QueryError(
            "validity set and perspective set have different universes: "
            f"{validity.universe} vs {perspectives.universe}"
        )
    moments: set[int] = set()
    points = perspectives.moments
    for index, p in enumerate(points):
        if p not in validity:
            continue
        stop = points[index + 1] if index + 1 < len(points) else validity.universe
        moments.update(range(p, stop))
    return ValiditySet(moments, validity.universe)


def _stretch_backward(
    validity: ValiditySet, perspectives: PerspectiveSet
) -> ValiditySet:
    """Backward mirror of :func:`stretch`: intervals ``(p_{i-1}, p_i]``."""
    moments: set[int] = set()
    points = perspectives.moments
    for index, p in enumerate(points):
        if p not in validity:
            continue
        start = points[index - 1] + 1 if index > 0 else 0
        moments.update(range(start, p + 1))
    return ValiditySet(moments, validity.universe)


def phi(
    validity_in: Mapping[K, ValiditySet],
    perspectives: PerspectiveSet,
    semantics: Semantics,
) -> dict[K, ValiditySet]:
    """Apply Φ to the instances of **one** member (Defs. 4.2 / 4.3).

    ``validity_in`` maps instance keys to their (pairwise disjoint) input
    validity sets.  Returns output validity sets; instances that end up
    empty are dropped from the result, which also realises the
    active-member filter of Def. 3.4 (an instance survives iff
    VS_in ∩ P ≠ ∅ — for every semantics, an instance not valid at any
    perspective point gets an empty output set).
    """
    out: dict[K, ValiditySet] = {}
    p_moments = set(perspectives.moments)
    for key, validity in validity_in.items():
        if semantics is Semantics.STATIC:
            result = (
                validity
                if validity.intersects_moments(p_moments)
                else ValiditySet.empty(validity.universe)
            )
        elif semantics.is_forward:
            stretched = stretch(validity, perspectives)
            if stretched.is_empty:
                result = stretched
            elif semantics is Semantics.FORWARD:
                result = stretched | validity.restrict_before(perspectives.pmin)
            else:  # EXTENDED_FORWARD
                if perspectives.pmin in validity:
                    prefix = ValiditySet.interval(
                        0, perspectives.pmin, validity.universe
                    )
                else:
                    prefix = ValiditySet.empty(validity.universe)
                result = stretched | prefix
        else:  # backward family
            stretched = _stretch_backward(validity, perspectives)
            if stretched.is_empty:
                result = stretched
            elif semantics is Semantics.BACKWARD:
                result = stretched | validity.restrict_from(perspectives.pmax + 1)
            else:  # EXTENDED_BACKWARD
                if perspectives.pmax in validity:
                    suffix = ValiditySet.interval(
                        perspectives.pmax + 1, None, validity.universe
                    )
                else:
                    suffix = ValiditySet.empty(validity.universe)
                result = stretched | suffix
        if result:
            out[key] = result
    return out


def phi_member(
    instances: Sequence[MemberInstance],
    perspectives: PerspectiveSet,
    semantics: Semantics,
) -> dict[MemberInstance, ValiditySet]:
    """Φ over the instance list of one member (as produced by
    :meth:`VaryingDimension.instances_of`)."""
    return phi(
        {instance: instance.validity for instance in instances},
        perspectives,
        semantics,
    )
