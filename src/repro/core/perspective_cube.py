"""Chunk-level evaluation of perspective queries (Sec. 5).

This is the engine behind the paper's experiments: it evaluates a
perspective query directly over a :class:`~repro.storage.array_cube.ChunkedCube`,

1. applying Φ to the queried members' instances to learn which input
   instance supplies each output moment,
2. building the merge dependency graph between the chunks involved
   (:mod:`repro.core.merge_graph`),
3. ordering the chunk reads by the Sec. 5.2 pebbling heuristic (or a
   caller-supplied order, for ablations), and
4. streaming the chunks, copying/merging instance rows into per-instance
   output buffers while tracking I/O costs and the chunk-residency
   high-water mark.

:func:`run_multiple_mdx_simulation` reproduces the paper's "Multiple MDX"
baseline (Fig. 11): a k-perspective query simulated as k single-perspective
queries whose results are post-merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.merge_graph import VaryingAxisSpec, build_merge_graph
from repro.core.pebbling import pebble
from repro.core.perspective import PerspectiveSet, Semantics, phi
from repro.errors import QueryError
from repro.storage.chunk_store import ResidencyTracker

__all__ = [
    "PerspectiveQueryResult",
    "run_perspective_query",
    "run_multiple_mdx_simulation",
    "materialize_perspective_cube",
]


@dataclass
class PerspectiveQueryResult:
    """Output of a chunk-level perspective query.

    ``rows`` maps each surviving output instance label to an array of shape
    ``(universe, *other_axis_sizes)`` holding the relocated leaf values
    (NaN = ⊥).  ``validity_out`` records Φ's output validity sets.
    """

    rows: dict[str, np.ndarray]
    validity_out: dict[str, "object"]
    io: dict[str, float]
    memory_high_water: int
    chunks_read: int
    plane_order: list[tuple[int, ...]] = field(default_factory=list)

    def total(self, label: str) -> float:
        """Sum of one instance's non-⊥ output cells (simple check value)."""
        data = self.rows[label]
        mask = ~np.isnan(data)
        if not mask.any():
            return float("nan")
        return float(data[mask].sum())

    def parent_totals(self) -> dict[tuple[str, int], float]:
        """Visual-mode aggregate rows for the queried members.

        Maps ``(parent name, moment)`` to the sum over the instances whose
        path ends under that parent, summed across the remaining axes —
        the per-group rows of Fig. 4 (e.g. PTE at Qtr granularity is then
        a further rollup of these per-moment totals).  Moments with no
        non-⊥ contribution are omitted.
        """
        totals: dict[tuple[str, int], float] = {}
        for label, data in self.rows.items():
            parent = label.split("/")[-2] if "/" in label else label
            for t in range(data.shape[0]):
                vector = np.atleast_1d(data[t])
                mask = ~np.isnan(vector)
                if not mask.any():
                    continue
                key = (parent, t)
                totals[key] = totals.get(key, 0.0) + float(vector[mask].sum())
        return totals


def _other_axes(spec: VaryingAxisSpec) -> list[int]:
    return [
        i
        for i in range(spec.cube.grid.n_dims)
        if i not in (spec.axis_index, spec.param_index)
    ]


def _plane_chunk(spec: VaryingAxisSpec, row: int, t: int) -> tuple[int, ...]:
    grid = spec.cube.grid
    coord = [0] * grid.n_dims
    coord[spec.axis_index] = row // grid.chunk_shape[spec.axis_index]
    coord[spec.param_index] = t // grid.chunk_shape[spec.param_index]
    return tuple(coord)


def run_perspective_query(
    spec: VaryingAxisSpec,
    members: Sequence[str],
    perspectives: PerspectiveSet,
    semantics: Semantics = Semantics.STATIC,
    use_pebbling: bool = True,
    plane_order: Sequence[tuple[int, ...]] | None = None,
    memory_budget: int | None = None,
) -> PerspectiveQueryResult:
    """Evaluate one perspective query over the chunked cube.

    Parameters
    ----------
    spec:
        Varying-axis metadata for the cube.
    members:
        The varying-dimension members in the query scope (e.g. the
        "changing employees" sets of Sec. 6).
    perspectives, semantics:
        The perspective clause.
    use_pebbling:
        Order the involved plane chunks by the pebbling heuristic; with
        ``False`` they are read in naive linear order (ablation baseline).
    plane_order:
        Explicit read order for the involved plane chunks (overrides
        ``use_pebbling``); must cover every involved chunk.
    memory_budget:
        Maximum chunks allowed co-resident.  When the merge work would
        exceed it, the members are partitioned into batches whose pebble
        demand fits and the scan runs once per batch — the multi-pass
        strategy Zhao et al. use when the MMST exceeds memory, applied to
        merge graphs.  Later passes re-read chunks, trading I/O for
        memory.
    """
    if memory_budget is not None:
        return _run_with_budget(
            spec, members, perspectives, semantics, use_pebbling, memory_budget
        )
    cube = spec.cube
    grid = cube.grid
    universe = len(spec.param_axis)
    if perspectives.universe != universe:
        raise QueryError(
            f"perspective universe {perspectives.universe} does not match "
            f"parameter axis size {universe}"
        )

    # Step 1: Φ per member; build per-target moment -> source-slot plans.
    plans: dict[str, dict[int, str]] = {}
    validity_out: dict[str, object] = {}
    for member in members:
        labels = spec.slots_of_member(member)
        if not labels:
            raise QueryError(
                f"member {member!r} has no instance slots on axis "
                f"{spec.axis.name!r}"
            )
        validity_in = {label: spec.validity_of_slot[label] for label in labels}
        moment_owner = {
            t: label for label, vs in validity_in.items() for t in vs
        }
        transformed = phi(validity_in, perspectives, semantics)
        for target, vs_out in transformed.items():
            validity_out[target] = vs_out
            plan: dict[int, str] = {}
            for t in vs_out:
                source = moment_owner.get(t)
                if source is not None:
                    plan[t] = source
            plans[target] = plan

    # Step 2: involved plane chunks and their merge dependencies.
    merge_graph = build_merge_graph(spec, perspectives, semantics, members)
    involved: set[tuple[int, ...]] = set(merge_graph.nodes)
    for target, plan in plans.items():
        for t, source in plan.items():
            involved.add(_plane_chunk(spec, spec.slot_row(source), t))
    for chunk in involved:
        if chunk not in merge_graph:
            merge_graph.add_node(chunk)

    # Step 3: read order over the involved plane chunks.
    if plane_order is not None:
        order = list(plane_order)
        missing = involved - set(order)
        if missing:
            raise QueryError(
                f"plane_order does not cover involved chunks: {sorted(missing)}"
            )
    elif use_pebbling:
        order = pebble(merge_graph).order
    else:
        order = sorted(
            involved,
            key=lambda c: grid.linear_index(c, grid.default_order()),
        )

    # Step 4: stream chunks, merging rows into per-instance output buffers.
    other = _other_axes(spec)
    other_sizes = tuple(grid.dim_sizes[i] for i in other)
    rows = {
        target: np.full((universe, *other_sizes), np.nan) for target in plans
    }
    # (source slot label, t) -> list of targets wanting that cell row,
    # pre-indexed by the plane chunk holding the row so each chunk read
    # only visits its own work items.
    wanted: dict[tuple[str, int], list[str]] = {}
    for target, plan in plans.items():
        for t, source in plan.items():
            wanted.setdefault((source, t), []).append(target)
    wanted_by_plane: dict[tuple[int, ...], list[tuple[str, int, list[str]]]] = {}
    for (source, t), targets in wanted.items():
        plane = _plane_chunk(spec, spec.slot_row(source), t)
        wanted_by_plane.setdefault(plane, []).append((source, t, targets))

    tracker = ResidencyTracker()
    read_count_before = cube.store.stats.chunk_reads
    read_plane: set[tuple[int, ...]] = set()

    other_chunk_ranges = [range(grid.chunks_per_dim[i]) for i in other]

    def other_combos() -> Iterable[tuple[int, ...]]:
        if not other:
            yield ()
            return
        import itertools

        yield from itertools.product(*other_chunk_ranges)

    for combo in other_combos():
        for plane in order:
            coord = list(plane)
            for axis, chunk_index in zip(other, combo):
                coord[axis] = chunk_index
            coord_t = tuple(coord)
            data = cube.store.read(coord_t)
            tracker.acquire(coord_t)
            _copy_rows(
                spec, coord_t, data, wanted_by_plane.get(plane, ()), rows, other
            )
            read_plane.add(plane)
            # Release every held chunk whose merge partners have arrived.
            for held in list(tracker.resident):
                held_plane = _project_plane(spec, held)
                neighbors = list(merge_graph.neighbors(held_plane))
                if all(n in read_plane for n in neighbors):
                    tracker.release(held)
        read_plane.clear()

    return PerspectiveQueryResult(
        rows=rows,
        validity_out=validity_out,
        io=cube.store.stats.snapshot(),
        memory_high_water=max(tracker.high_water, 1 if order else 0),
        chunks_read=cube.store.stats.chunk_reads - read_count_before,
        plane_order=list(order),
    )


def _project_plane(
    spec: VaryingAxisSpec, coord: tuple[int, ...]
) -> tuple[int, ...]:
    plane = [0] * len(coord)
    plane[spec.axis_index] = coord[spec.axis_index]
    plane[spec.param_index] = coord[spec.param_index]
    return tuple(plane)


def _copy_rows(
    spec: VaryingAxisSpec,
    coord: tuple[int, ...],
    data: np.ndarray,
    work_items: Iterable[tuple[str, int, list[str]]],
    rows: dict[str, np.ndarray],
    other: list[int],
) -> None:
    """Copy every wanted (source row, moment) vector from a chunk into the
    output buffers of the targets that claim it."""
    grid = spec.cube.grid
    origin = grid.chunk_origin(coord)
    extent = data.shape
    row_lo = origin[spec.axis_index]
    t_lo = origin[spec.param_index]
    for source, t, targets in work_items:
        row = spec.slot_row(source)
        indexer: list[object] = [slice(None)] * data.ndim
        indexer[spec.axis_index] = row - row_lo
        indexer[spec.param_index] = t - t_lo
        vector = data[tuple(indexer)]
        out_region: list[object] = [
            slice(origin[axis], origin[axis] + extent[axis]) for axis in other
        ]
        for target in targets:
            rows[target][(t, *out_region)] = vector


def _member_pebble_demand(
    spec: VaryingAxisSpec,
    member: str,
    perspectives: PerspectiveSet,
    semantics: Semantics,
) -> int:
    graph = build_merge_graph(spec, perspectives, semantics, [member])
    if graph.number_of_nodes() == 0:
        return 1
    return pebble(graph).max_pebbles


def _run_with_budget(
    spec: VaryingAxisSpec,
    members: Sequence[str],
    perspectives: PerspectiveSet,
    semantics: Semantics,
    use_pebbling: bool,
    memory_budget: int,
) -> PerspectiveQueryResult:
    """Partition members into batches whose merge demand fits the budget,
    then run one scan per batch and merge the results."""
    if memory_budget < 1:
        raise QueryError("memory_budget must be at least 1 chunk")
    demands = {
        member: _member_pebble_demand(spec, member, perspectives, semantics)
        for member in members
    }
    oversized = [m for m, d in demands.items() if d > memory_budget]
    if oversized:
        raise QueryError(
            f"member {oversized[0]!r} alone needs {demands[oversized[0]]} "
            f"co-resident chunks, over the budget of {memory_budget}"
        )
    # Greedy first-fit packing by descending demand.  Pebble demands of
    # disjoint member graphs add in the worst case (their chunks interleave
    # in the scan), so the per-batch sum is the conservative bound.
    batches: list[list[str]] = []
    loads: list[int] = []
    for member in sorted(members, key=lambda m: -demands[m]):
        for i, load in enumerate(loads):
            if load + demands[member] <= memory_budget:
                batches[i].append(member)
                loads[i] += demands[member]
                break
        else:
            batches.append([member])
            loads.append(demands[member])

    partials = [
        run_perspective_query(
            spec, batch, perspectives, semantics, use_pebbling=use_pebbling
        )
        for batch in batches
    ]
    merged_rows: dict[str, np.ndarray] = {}
    merged_validity: dict[str, object] = {}
    for partial in partials:
        merged_rows.update(partial.rows)
        merged_validity.update(partial.validity_out)
    return PerspectiveQueryResult(
        rows=merged_rows,
        validity_out=merged_validity,
        io=spec.cube.store.stats.snapshot(),
        memory_high_water=max(p.memory_high_water for p in partials),
        chunks_read=sum(p.chunks_read for p in partials),
        plane_order=[c for p in partials for c in p.plane_order],
    )


def materialize_perspective_cube(
    spec: VaryingAxisSpec,
    result: PerspectiveQueryResult,
    chunk_shape: Sequence[int] | None = None,
) -> tuple["object", VaryingAxisSpec]:
    """Write a query result back out as a chunked perspective cube.

    The output cube's varying axis holds one row per surviving instance
    (in input-axis order); the remaining axes are copied from the input.
    Chunk writes are accounted in the output store's I/O stats.  Returns
    the new cube together with a :class:`VaryingAxisSpec` describing it, so
    further perspective queries can be chained on the materialised result
    — the paper's "result of any of the what-if queries … is a perspective
    cube".
    """
    from repro.storage.array_cube import Axis, ChunkedCube

    grid = spec.cube.grid
    input_order = {label: i for i, label in enumerate(spec.axis.labels)}
    labels = sorted(result.rows, key=lambda l: input_order.get(l, len(input_order)))
    if not labels:
        raise QueryError("cannot materialise an empty perspective cube")
    axes = [
        Axis(axis.name, labels) if i == spec.axis_index else axis
        for i, axis in enumerate(spec.cube.axes)
    ]
    if chunk_shape is None:
        chunk_shape = tuple(
            min(extent, len(axes[i]))
            for i, extent in enumerate(grid.chunk_shape)
        )

    other = _other_axes(spec)

    def cells():
        for label in labels:
            data = result.rows[label]
            row_labels = [""] * grid.n_dims
            row_labels[spec.axis_index] = label
            for t in range(data.shape[0]):
                row_labels[spec.param_index] = spec.param_axis.labels[t]
                for idx, value in np.ndenumerate(data[t]):
                    if np.isnan(value):
                        continue
                    for position, axis_index in zip(idx, other):
                        row_labels[axis_index] = spec.cube.axes[
                            axis_index
                        ].labels[int(position)]
                    yield tuple(row_labels), float(value)

    out = ChunkedCube.build(axes, cells(), chunk_shape)
    member_of_slot = {
        label: label.split("/")[-1] for label in labels
    }
    out_spec = VaryingAxisSpec(
        out,
        spec.axis.name,
        spec.param_axis.name,
        member_of_slot,
        {label: result.validity_out[label] for label in labels},
    )
    return out, out_spec


def run_multiple_mdx_simulation(
    spec: VaryingAxisSpec,
    members: Sequence[str],
    perspectives: PerspectiveSet,
    semantics: Semantics = Semantics.STATIC,
) -> PerspectiveQueryResult:
    """Fig. 11's "Multiple MDX" baseline: k single-perspective queries whose
    results are merged in post-processing (the paper notes even the merge
    overhead is not counted against this baseline; we count only the
    queries here too)."""
    partials: list[PerspectiveQueryResult] = []
    for p in perspectives.moments:
        partials.append(
            run_perspective_query(
                spec,
                members,
                PerspectiveSet([p], perspectives.universe),
                semantics,
            )
        )
    merged_rows: dict[str, np.ndarray] = {}
    merged_validity: dict[str, object] = {}
    for partial in partials:
        for label, data in partial.rows.items():
            if label in merged_rows:
                mask = ~np.isnan(data)
                merged_rows[label][mask] = data[mask]
            else:
                merged_rows[label] = data.copy()
            merged_validity[label] = partial.validity_out[label]
    return PerspectiveQueryResult(
        rows=merged_rows,
        validity_out=merged_validity,
        io=spec.cube.store.stats.snapshot(),
        memory_high_water=max(p.memory_high_water for p in partials),
        chunks_read=sum(p.chunks_read for p in partials),
        plane_order=[c for p in partials for c in p.plane_order],
    )
