"""Compressed perspective cubes (Sec. 8 future work).

The paper closes by naming "compression of perspective cubes" an open
problem.  The observation making it tractable: a perspective cube differs
from its input cube only on the sub-cubes of the *changing* members of the
varying dimension — typically ~1% of members (Sec. 6).  So a perspective
cube can be stored as a **delta**: a reference to the base cube plus the
leaf cells that were added/changed (*overrides*) and the base leaf cells
that disappeared (*deletions*), along with the output validity sets.

:func:`compress` builds the delta from a base cube and a what-if result;
:class:`CompressedPerspectiveCube` answers point reads directly from the
delta and can :meth:`materialize` the full cube back (a lossless
round-trip, property-tested).

Columnar plane compression
--------------------------
The same ~1%-changes observation applies one layer down, to the columnar
leaf kernel's value planes (:mod:`repro.storage.chunks`): a *cold* plane
— one pinned by a frozen snapshot or a fork, which will never be written
again — whose live density is low wastes most of its dense array.
:func:`compress_plane` re-encodes such planes as coordinate-sparse
(COO) pairs; :func:`decompress_plane` restores the dense form.  Both are
lossless and preserve liveness exactly (a live ``NaN`` survives the
round-trip as a live ``NaN``).  ``ColumnarLeafStore.compact`` applies the
policy to sealed chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, TypeAlias

from repro.core.scenario import WhatIfCube
from repro.errors import QueryError
from repro.olap.cube import Cube
from repro.olap.missing import MISSING, Missing
from repro.olap.schema import Address
from repro.storage.chunks import ChunkPlane, DensePlane
from repro.validity import ValiditySet

__all__ = [
    "CompressedPerspectiveCube",
    "SPARSE_DENSITY_CEILING",
    "compress",
    "compress_plane",
    "decompress_plane",
]

CellValue: TypeAlias = "float | Missing"

#: a cold plane at or below this live density is worth re-encoding as COO
#: (break-even: a COO entry costs an int32 + float64 = 12 bytes against 9
#: bytes/slot dense, so ~0.75 is the storage break-even; we compress well
#: below it so gathers on compressed planes stay one binary search cheap)
SPARSE_DENSITY_CEILING = 0.25


def compress_plane(
    plane: ChunkPlane, *, ceiling: float = SPARSE_DENSITY_CEILING
) -> ChunkPlane:
    """Re-encode a cold value plane as coordinate-sparse when it pays.

    Dense planes at or below ``ceiling`` live density become
    :class:`~repro.storage.chunks.SparsePlane`; anything else (already
    sparse, or too dense to win) is returned unchanged.  Lossless.
    """
    if plane.kind == "dense" and plane.density <= ceiling:
        return plane.to_sparse()
    return plane


def decompress_plane(plane: ChunkPlane) -> DensePlane:
    """Restore a plane to its dense form (no-op for dense planes)."""
    return plane.to_dense()


@dataclass
class CompressedPerspectiveCube:
    """Delta-encoded perspective cube over a base cube."""

    base: Cube
    overrides: dict[Address, float]
    deletions: frozenset[Address]
    validity_out: dict[str, ValiditySet] = field(default_factory=dict)

    # -- reads ---------------------------------------------------------------

    def value(self, address: Sequence[str]) -> CellValue:
        """Leaf-cell read straight from the delta."""
        addr = self.base.schema.validate_address(address)
        if addr in self.overrides:
            return self.overrides[addr]
        if addr in self.deletions:
            return MISSING
        return self.base.value(addr)

    def at(self, **coords: str) -> CellValue:
        return self.value(self.base.schema.address(**coords))

    # -- reconstruction -------------------------------------------------------

    def materialize(self) -> Cube:
        """Rebuild the full perspective cube (lossless)."""
        out = self.base.empty_like()
        for addr, value in self.base.leaf_cells():
            if addr in self.deletions or addr in self.overrides:
                continue
            out.set_value(addr, value)
        for addr, value in self.overrides.items():
            out.set_value(addr, value)
        return out

    # -- statistics ---------------------------------------------------------------

    @property
    def delta_cells(self) -> int:
        return len(self.overrides) + len(self.deletions)

    @property
    def compression_ratio(self) -> float:
        """Delta size relative to storing the full output cube.

        < 1 means the delta is smaller; with ~1% changing members this is
        typically a few percent.  Output size = base cells - deletions +
        overrides at addresses the base never stored.
        """
        new_addresses = sum(
            1 for addr in self.overrides if self.base.value(addr) is MISSING
        )
        output_cells = self.base.n_leaf_cells - len(self.deletions) + new_addresses
        return self.delta_cells / max(1, output_cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedPerspectiveCube({len(self.overrides)} overrides, "
            f"{len(self.deletions)} deletions, "
            f"ratio={self.compression_ratio:.3f})"
        )


def compress(
    base: Cube,
    result: "WhatIfCube | Cube",
    validity_out: Mapping[str, ValiditySet] | None = None,
) -> CompressedPerspectiveCube:
    """Delta-encode a what-if result against its base cube.

    ``result`` may be a :class:`WhatIfCube` (its leaf cube and validity
    sets are used) or a plain cube (pass ``validity_out`` separately if
    wanted).
    """
    if isinstance(result, WhatIfCube):
        leaf_cube = result.leaf_cube
        validity = dict(result.validity_out)
    else:
        leaf_cube = result
        validity = dict(validity_out or {})
    if leaf_cube.schema is not base.schema:
        raise QueryError(
            "compress() requires the result and base to share a schema"
        )

    base_cells = dict(base.leaf_cells())
    out_cells = dict(leaf_cube.leaf_cells())
    overrides: dict[Address, float] = {}
    for addr, value in out_cells.items():
        if base_cells.get(addr) != value:
            overrides[addr] = value
    deletions = frozenset(addr for addr in base_cells if addr not in out_cells)
    return CompressedPerspectiveCube(base, overrides, deletions, validity)
