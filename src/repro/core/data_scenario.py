"""Data-driven what-if scenarios (Sec. 1 and Sec. 3's closing remark).

Besides structural scenarios, the paper notes hypothetical scenarios "can
also be data-driven.  E.g., assume that 10% of PTEs' salary during first
quarter in NY was instead given to PTEs in MA — structure stays the same
but data allocation changes."  (Balmin et al.'s Sesame system handles this
family; the paper positions its structural scenarios as complementary.)

:class:`AllocationScenario` implements exactly that re-allocation shape: a
*source region* (a coordinate filter), a fraction, and a *target*
coordinate override.  Each matching leaf cell loses ``fraction`` of its
value; the removed amount is added to the cell at the same address with
the target coordinates substituted.  The result is a
:class:`~repro.core.scenario.WhatIfCube`, so data-driven and structural
scenarios compose through :func:`~repro.core.scenario.apply_scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.perspective import Mode
from repro.core.scenario import WhatIfCube
from repro.errors import QueryError
from repro.olap.cube import Cube
from repro.olap.instances import VaryingDimension
from repro.olap.missing import is_missing

__all__ = ["AllocationScenario"]


@dataclass
class AllocationScenario:
    """Move a fraction of matching leaf-cell values to other coordinates.

    Parameters
    ----------
    source:
        ``{dimension: coordinate}`` filter; a leaf cell matches when each
        filtered dimension's coordinate equals or rolls up into the given
        one (e.g. ``{"Organization": "PTE", "Location": "NY",
        "Time": "Qtr1"}``).
    target:
        ``{dimension: coordinate}`` overrides applied to matching cells'
        addresses to find the receiving cell (e.g. ``{"Location": "MA"}``).
        Target coordinates must be leaf level.
    fraction:
        Share of each matching value to move, in (0, 1].
    mode:
        Visual re-aggregates over the reallocated cube; non-visual keeps
        the input cube's aggregate values.
    """

    source: Mapping[str, str]
    target: Mapping[str, str]
    fraction: float
    mode: Mode = Mode.NON_VISUAL

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise QueryError(
                f"allocation fraction must be in (0, 1], got {self.fraction}"
            )
        if not self.target:
            raise QueryError("an allocation needs at least one target override")

    def apply(
        self, cube: Cube, varying: VaryingDimension | None = None
    ) -> WhatIfCube:
        schema = cube.schema
        source_index = {
            schema.dim_index(name): coord for name, coord in self.source.items()
        }
        target_index = {
            schema.dim_index(name): coord for name, coord in self.target.items()
        }
        for dim_index, coord in target_index.items():
            if not schema.coordinate_is_leaf(dim_index, coord):
                raise QueryError(
                    f"allocation target {coord!r} on dimension "
                    f"{schema.dimensions[dim_index].name!r} is not leaf level"
                )
        overlap = set(source_index) & set(target_index)
        # A target may override a filtered dimension (that is the point:
        # NY -> MA overrides Location), but then source and target
        # coordinates must differ or the allocation is a no-op cycle.
        for dim_index in overlap:
            if source_index[dim_index] == target_index[dim_index]:
                raise QueryError(
                    "allocation target equals its source coordinate on "
                    f"dimension {schema.dimensions[dim_index].name!r}"
                )

        out = cube.empty_like()
        moved: dict[tuple, float] = {}
        for addr, value in cube.leaf_cells():
            matches = all(
                cube.coord_rolls_up(dim_index, addr[dim_index], coord)
                for dim_index, coord in source_index.items()
            )
            if not matches:
                out.set_value(addr, value)
                continue
            amount = value * self.fraction
            out.set_value(addr, value - amount)
            target_addr = list(addr)
            for dim_index, coord in target_index.items():
                target_addr[dim_index] = coord
            key = tuple(target_addr)
            moved[key] = moved.get(key, 0.0) + amount
        for addr, amount in moved.items():
            existing = out.value(addr)
            base = 0.0 if is_missing(existing) else float(existing)
            out.set_value(addr, base + amount)

        if self.mode is Mode.VISUAL:
            out.clear_stored_derived()
            return WhatIfCube(out, out, self.mode)
        return WhatIfCube(out, cube, self.mode)
