"""The what-if algebra: selection σ, relocate ρ, split S, evaluate E (Sec. 4).

Together with the validity-set transform Φ (:mod:`repro.core.perspective`),
these operators capture the full class of what-if queries (Theorem 4.1):
negative scenarios are ``E ∘ ρ(·, Φ(VS_in)) ∘ σ`` and positive scenarios are
``E ∘ S``, applied to the result of the core MDX query.

All operators are pure: they return new cubes and never mutate their input.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.predicates import Predicate
from repro.validity import ValiditySet
from repro.errors import InvalidChangeError, QueryError
from repro.olap.cube import Cube
from repro.olap.instances import VaryingDimension
from repro.olap.schema import Address

__all__ = ["select", "relocate", "split", "evaluate", "ChangeTuple", "ChangeRelation"]


# ---------------------------------------------------------------------------
# Selection (Def. 4.1)
# ---------------------------------------------------------------------------


def select(cube: Cube, dim_name: str, predicate: Predicate) -> Cube:
    """σ_p(C): drop sub-cubes of members of ``dim_name`` failing ``predicate``.

    A member is active in the output iff it is active in the input (has some
    data) and satisfies the predicate; the output is the input with the
    sub-cubes of non-active members removed (Def. 4.1).
    """
    dim_index = cube.schema.dim_index(dim_name)
    decisions: dict[str, bool] = {}

    def keep(coord: str) -> bool:
        hit = decisions.get(coord)
        if hit is None:
            hit = predicate(cube, dim_index, coord)
            decisions[coord] = hit
        return hit

    return cube.filter_dimension(dim_name, keep)


# ---------------------------------------------------------------------------
# Relocate (Def. 4.4)
# ---------------------------------------------------------------------------


def relocate(
    cube: Cube,
    varying_name: str,
    validity_out: Mapping[str, ValiditySet],
    varying: VaryingDimension | None = None,
) -> Cube:
    """ρ(C, 𝒱): move leaf-cell values according to output validity sets.

    ``validity_out`` maps member-instance full paths (output coordinates) to
    their output validity sets 𝒱(d).  For every output leaf cell (d, t, ē)
    with ``t ∈ 𝒱(d)`` the value is copied from the input cell (d_t, t, ē),
    where d_t is the instance of the same member valid at t in the *input*;
    if no d_t exists the cell is ⊥.  Stored non-leaf cells are carried over
    unchanged, so the result holds the correct values for non-visual mode
    (Def. 4.4's closing remark).
    """
    schema = cube.schema
    varying = varying or schema.varying_dimension(varying_name)
    dim_index = schema.dim_index(varying_name)
    param_index = schema.dim_index(varying.parameter.name)
    param_leaves = [m.name for m in varying.parameter.leaf_members()]
    moment_of = {name: i for i, name in enumerate(param_leaves)}

    # Index input leaf cells by (member, moment) so the d_t lookup is O(1).
    by_member_moment: dict[tuple[str, int], list[tuple[Address, float]]] = {}
    input_instance_path: dict[tuple[str, int], str] = {}
    for addr, value in cube.leaf_cells():
        vcoord = addr[dim_index]
        member = vcoord.split("/")[-1]
        tcoord = addr[param_index]
        t = moment_of.get(tcoord)
        if t is None:
            raise QueryError(
                f"leaf cell parameter coordinate {tcoord!r} is not a leaf of "
                f"{varying.parameter.name!r}"
            )
        by_member_moment.setdefault((member, t), []).append((addr, value))
        existing = input_instance_path.setdefault((member, t), vcoord)
        if existing != vcoord:
            raise QueryError(
                f"input cube has two instances of member {member!r} with "
                f"data at the same moment {tcoord!r}: {existing!r} and "
                f"{vcoord!r} (validity sets must be disjoint)"
            )

    out = cube.empty_like()
    for out_coord, validity in validity_out.items():
        member = out_coord.split("/")[-1]
        for t in validity:
            for addr, value in by_member_moment.get((member, t), ()):
                if addr[dim_index] == out_coord:
                    out.set_value(addr, value)
                else:
                    moved = list(addr)
                    moved[dim_index] = out_coord
                    out.set_value(tuple(moved), value)
    for addr, value in cube.stored_derived_cells():
        out.set_value(addr, value)
    return out


# ---------------------------------------------------------------------------
# Split (Def. 4.5) — positive changes
# ---------------------------------------------------------------------------


class ChangeTuple:
    """One tuple (m, o, n, t) of the positive-change relation R.

    ``member`` m is currently a child of ``old_parent`` o at moment ``t``
    and is hypothetically reparented under ``new_parent`` n from t onward.
    """

    __slots__ = ("member", "old_parent", "new_parent", "moment")

    def __init__(self, member: str, old_parent: str, new_parent: str, moment: str) -> None:
        self.member = member
        self.old_parent = old_parent
        self.new_parent = new_parent
        self.moment = moment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChangeTuple({self.member!r}, {self.old_parent!r} -> "
            f"{self.new_parent!r} @ {self.moment!r})"
        )


ChangeRelation = Sequence[ChangeTuple]


def _hypothetical_structure(
    varying: VaryingDimension, changes: ChangeRelation
) -> VaryingDimension:
    """Apply R to a copy of the varying structure, validating old parents."""
    hypo = varying.copy()
    ordered = sorted(changes, key=lambda c: hypo.moment_index(c.moment))
    for change in ordered:
        t = hypo.moment_index(change.moment)
        current = hypo.parent_at(change.member, t)
        if current is None:
            raise InvalidChangeError(
                f"member {change.member!r} has no instance at {change.moment!r}; "
                "cannot apply positive change there"
            )
        if current != change.old_parent:
            raise InvalidChangeError(
                f"positive change for {change.member!r} at {change.moment!r} "
                f"names old parent {change.old_parent!r} but the current "
                f"parent is {current!r}"
            )
        hypo.reparent(change.member, change.new_parent, t)
    return hypo


def split(
    cube: Cube,
    varying_name: str,
    changes: ChangeRelation,
    varying: VaryingDimension | None = None,
) -> tuple[Cube, VaryingDimension]:
    """S(C, R): split member sub-cubes at the change moments (Def. 4.5).

    Returns the output cube together with the *hypothetical* varying
    structure (the copy of the input structure with R applied), which
    downstream consumers (MDX rendering, further operators) use as the
    output metadata.

    Per the definition, each affected leaf cell moves from the pre-change
    instance to the post-change instance for moments ≥ t: the original
    sub-cube keeps τ < t, the added sub-cube keeps τ ≥ t.  Non-leaf cells
    default to the input values (non-visual); apply :func:`evaluate` for
    visual mode.
    """
    schema = cube.schema
    varying = varying or schema.varying_dimension(varying_name)
    hypo = _hypothetical_structure(varying, changes)
    dim_index = schema.dim_index(varying_name)
    param_index = schema.dim_index(varying.parameter.name)
    moment_of = {
        m.name: i for i, m in enumerate(varying.parameter.leaf_members())
    }
    affected = {change.member for change in changes}

    def transform(addr: Address, value: float):
        member = addr[dim_index].split("/")[-1]
        if member not in affected:
            return addr, value
        t = moment_of[addr[param_index]]
        new_path = hypo.path_at(member, t)
        if new_path is None:
            return None
        new_coord = "/".join(new_path)
        if new_coord == addr[dim_index]:
            return addr, value
        moved = list(addr)
        moved[dim_index] = new_coord
        return tuple(moved), value

    return cube.map_leaf_cells(transform), hypo


# ---------------------------------------------------------------------------
# Evaluate (Def. 4.6)
# ---------------------------------------------------------------------------


def evaluate(
    rule_cube: Cube,
    data_cube: Cube,
    addresses: Iterable[Sequence[str]] | None = None,
) -> Cube:
    """E(C1, C2): leaves from C2, non-leaf cells from C1's rules over C2.

    ``addresses`` selects which non-leaf cells to materialise; by default
    every address with a stored derived value in C1 is re-evaluated over
    C2's leaves.  The result carries C1's rule engine, so any further
    non-leaf cell queried on it is also evaluated over C2's leaves — this
    realises visual mode.
    """
    out = data_cube.copy()
    out.rules = rule_cube.rules
    out.clear_stored_derived()
    if addresses is None:
        addresses = [addr for addr, _ in rule_cube.stored_derived_cells()]
    out.materialize_derived(addresses)
    return out
