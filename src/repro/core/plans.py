"""Algebraic what-if query plans.

Sec. 8 names "further optimization of what-if queries by manipulation of
the proposed algebraic operators" as future work; this module provides the
machinery: a *plan* is an explicit algebra expression tree over a base
cube — Selection σ, Perspective (Φ combined with relocate ρ), Split S, and
Evaluate E nodes — that can be inspected, rewritten
(:mod:`repro.core.optimizer`), costed, and executed.

Predicates here are *structured* (dataclasses) rather than opaque
callables, so rewrite rules can reason about them; ``compile()`` lowers
them to the callable form used by :func:`repro.core.operators.select`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core import predicates as predicate_funcs
from repro.core.operators import ChangeTuple, evaluate, relocate, select, split
from repro.core.perspective import PerspectiveSet, Semantics, phi_member
from repro.errors import QueryError
from repro.olap.cube import Cube
from repro.olap.instances import VaryingDimension

__all__ = [
    "Pred",
    "MemberEquals",
    "MemberIn",
    "DescendantOf",
    "ValidityIntersects",
    "ValueCompare",
    "And",
    "Or",
    "Not",
    "PlanNode",
    "BaseCube",
    "SelectNode",
    "PerspectiveNode",
    "SplitNode",
    "EvaluateNode",
    "execute_plan",
    "explain",
]


# ---------------------------------------------------------------------------
# Structured predicates
# ---------------------------------------------------------------------------


class Pred:
    """Base class for structured selection predicates."""

    def compile(self) -> predicate_funcs.Predicate:
        raise NotImplementedError

    @property
    def is_member_level(self) -> bool:
        """True when the predicate depends only on the *member name* a
        coordinate denotes — never on instance parentage, validity, or
        cell values.  Member-level predicates commute with perspectives
        and splits on the same dimension (those operators move data
        between instances of the *same* member)."""
        return False


@dataclass(frozen=True)
class MemberEquals(Pred):
    name: str

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.member_equals(self.name)

    @property
    def is_member_level(self) -> bool:
        return True


@dataclass(frozen=True)
class MemberIn(Pred):
    names: frozenset[str]

    def __init__(self, names) -> None:
        object.__setattr__(self, "names", frozenset(names))

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.member_in(self.names)

    @property
    def is_member_level(self) -> bool:
        return True


@dataclass(frozen=True)
class DescendantOf(Pred):
    ancestor: str
    include_self: bool = False

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.descendant_of(self.ancestor, self.include_self)


@dataclass(frozen=True)
class ValidityIntersects(Pred):
    moments: frozenset[int]

    def __init__(self, moments) -> None:
        object.__setattr__(self, "moments", frozenset(moments))

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.validity_intersects(self.moments)


@dataclass(frozen=True)
class ValueCompare(Pred):
    fixed: tuple[tuple[str, str], ...]
    relop: str
    threshold: float

    def __init__(self, fixed: Mapping[str, str], relop: str, threshold: float):
        object.__setattr__(self, "fixed", tuple(sorted(fixed.items())))
        object.__setattr__(self, "relop", relop)
        object.__setattr__(self, "threshold", threshold)

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.value_predicate(
            dict(self.fixed), self.relop, self.threshold
        )


@dataclass(frozen=True)
class And(Pred):
    parts: tuple[Pred, ...]

    def __init__(self, *parts: Pred) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.and_(*(p.compile() for p in self.parts))

    @property
    def is_member_level(self) -> bool:
        return all(p.is_member_level for p in self.parts)


@dataclass(frozen=True)
class Or(Pred):
    parts: tuple[Pred, ...]

    def __init__(self, *parts: Pred) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.or_(*(p.compile() for p in self.parts))

    @property
    def is_member_level(self) -> bool:
        return all(p.is_member_level for p in self.parts)


@dataclass(frozen=True)
class Not(Pred):
    inner: Pred

    def compile(self) -> predicate_funcs.Predicate:
        return predicate_funcs.not_(self.inner.compile())

    @property
    def is_member_level(self) -> bool:
        return self.inner.is_member_level


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class PlanNode:
    """Base class for plan nodes (immutable trees)."""

    @property
    def child(self) -> "PlanNode | None":
        return getattr(self, "input_plan", None)

    def label(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class BaseCube(PlanNode):
    """The plan leaf: the core MDX query's result cube, bound at execution."""

    def label(self) -> str:
        return "BaseCube"


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """σ_p over one dimension."""

    input_plan: PlanNode
    dimension: str
    predicate: Pred

    def label(self) -> str:
        return f"Select[{self.dimension}: {self.predicate}]"


@dataclass(frozen=True)
class PerspectiveNode(PlanNode):
    """Φ_sem(VS_in, P) followed by ρ — a negative scenario's data movement."""

    input_plan: PlanNode
    dimension: str
    perspectives: tuple[int, ...]
    semantics: Semantics

    def label(self) -> str:
        return (
            f"Perspective[{self.dimension}: P={list(self.perspectives)}, "
            f"{self.semantics.value}]"
        )


@dataclass(frozen=True)
class SplitNode(PlanNode):
    """S(·, R) — a positive scenario's data movement."""

    input_plan: PlanNode
    dimension: str
    changes: tuple[tuple[str, str, str, str], ...]  # (m, o, n, t)

    def label(self) -> str:
        return f"Split[{self.dimension}: {len(self.changes)} changes]"


@dataclass(frozen=True)
class EvaluateNode(PlanNode):
    """E(C1, C2): re-evaluate C1's materialised aggregates over the child.

    ``rule_source`` is "input" (C1 = the original base cube, the common
    visual-mode case) — the executor resolves it at run time.
    """

    input_plan: PlanNode
    rule_source: str = "input"

    def label(self) -> str:
        return f"Evaluate[{self.rule_source}]"


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _execute(node: PlanNode, base: Cube, varying: Mapping[str, VaryingDimension]) -> Cube:
    if isinstance(node, BaseCube):
        return base
    if isinstance(node, SelectNode):
        child = _execute(node.input_plan, base, varying)
        return select(child, node.dimension, node.predicate.compile())
    if isinstance(node, PerspectiveNode):
        child = _execute(node.input_plan, base, varying)
        vdim = varying.get(node.dimension) or child.schema.varying_dimension(
            node.dimension
        )
        pset = PerspectiveSet(node.perspectives, vdim.universe)
        dim_index = child.schema.dim_index(node.dimension)
        members = {
            coord.split("/")[-1]
            for coord in {addr[dim_index] for addr, _ in child.leaf_cells()}
        }
        validity_out = {}
        for member in sorted(members):
            for instance, vs in phi_member(
                vdim.instances_of(member), pset, node.semantics
            ).items():
                validity_out[instance.full_path] = vs
        return relocate(child, node.dimension, validity_out, vdim)
    if isinstance(node, SplitNode):
        child = _execute(node.input_plan, base, varying)
        vdim = varying.get(node.dimension) or child.schema.varying_dimension(
            node.dimension
        )
        changes = [ChangeTuple(*spec) for spec in node.changes]
        out, _hypo = split(child, node.dimension, changes, vdim)
        return out
    if isinstance(node, EvaluateNode):
        child = _execute(node.input_plan, base, varying)
        return evaluate(base, child)
    raise QueryError(f"unknown plan node {node!r}")


def execute_plan(
    plan: PlanNode,
    base: Cube,
    varying: Mapping[str, VaryingDimension] | None = None,
    analyze: bool = True,
) -> Cube:
    """Execute a plan against a base cube; returns the result cube.

    With ``analyze=True`` (the default) the plan analyzer runs first and
    error-level findings abort execution with
    :class:`~repro.errors.PlanAnalysisError`; ``analyze=False`` skips the
    check.
    """
    from repro.obs.trace import trace_span

    with trace_span("plan.execute") as span:
        if analyze:
            from repro.analysis.plan_analyzer import analyze_plan
            from repro.errors import PlanAnalysisError

            with trace_span("plan.analyze"):
                report = analyze_plan(plan, base.schema, varying)
            if report.has_errors:
                raise PlanAnalysisError(report)
        if span is not None:
            span.set(plan=plan.label())
        return _execute(plan, base, dict(varying or {}))


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Indented textual rendering of a plan tree."""
    line = "  " * indent + plan.label()
    child = plan.child
    if child is None:
        return line
    return line + "\n" + explain(child, indent + 1)
