"""Graph pebbling for chunk-read ordering (Sec. 5.2).

The problem: given a merge dependency graph, order the chunk reads so the
fewest chunks are co-resident in memory.  The paper models this as
pebbling: place at most one pebble per node; a pebble may be removed from a
node once **all its neighbours have been pebbled** (at some point); minimise
the number of pebbles simultaneously on the graph.

:func:`pebble` implements the paper's heuristic verbatim:

* ``cost(x) = min over neighbours y of (deg(y) - 1)`` — the minimum number
  of *other* nodes that must be pebbled before a pebble on one of x's
  neighbours can be freed;
* start at a minimum-cost node (ties broken deterministically);
* repeatedly: free any freeable pebble; otherwise pebble an unpebbled
  neighbour of the pebbled region that *enables a removal*, preferring
  smaller cost; fall back to any fringe node, then to a fresh minimum-cost
  node (next connected component).

:func:`optimal_pebbles` finds the true optimum by state-space search (for
validation on small graphs, e.g. Fig. 9's 3-pebble answer), and
:func:`pebbles_for_order` evaluates the pebble demand of a *fixed* read
order (the naive sequential baseline discussed before Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Hashable, Sequence

import networkx as nx

__all__ = [
    "PebblingResult",
    "node_cost",
    "pebble",
    "pebbles_for_order",
    "optimal_pebbles",
]

Node = Hashable


@dataclass
class PebblingResult:
    """Outcome of a pebbling run."""

    order: list[Node]
    max_pebbles: int
    #: (step, "place"/"remove", node) trace, for inspection and tests
    events: list[tuple[int, str, Node]] = field(default_factory=list)


def node_cost(graph: nx.Graph, node: Node) -> int:
    """The paper's cost: min over neighbours y of deg(y) - 1."""
    degrees = [graph.degree(y) for y in graph.neighbors(node)]
    if not degrees:
        return 0
    return min(d - 1 for d in degrees)


def _removable(graph: nx.Graph, node: Node, pebbled: set[Node]) -> bool:
    return all(neighbor in pebbled for neighbor in graph.neighbors(node))


def pebble(graph: nx.Graph, tie_break=None) -> PebblingResult:
    """Run the Sec. 5.2 heuristic; isolated nodes cost one transient pebble.

    ``tie_break`` optionally maps nodes to a sort key used to break ties
    deterministically (default: ``repr`` of the node).
    """
    if tie_break is None:
        tie_break = repr
    order: list[Node] = []
    events: list[tuple[int, str, Node]] = []
    pebbled: set[Node] = set()  # P: ever pebbled
    holding: set[Node] = set()  # Q: currently holding a pebble
    max_pebbles = 0
    step = 0

    def place(node: Node) -> None:
        nonlocal max_pebbles, step
        pebbled.add(node)
        holding.add(node)
        order.append(node)
        events.append((step, "place", node))
        step += 1
        max_pebbles = max(max_pebbles, len(holding))

    def sweep_removals() -> None:
        nonlocal step
        changed = True
        while changed:
            changed = False
            for node in sorted(holding, key=tie_break):
                if _removable(graph, node, pebbled):
                    holding.discard(node)
                    events.append((step, "remove", node))
                    step += 1
                    changed = True
                    break

    remaining = set(graph.nodes)
    while remaining - pebbled:
        if not holding:
            # New component (or start): pebble a minimum-cost node.
            candidates = sorted(
                remaining - pebbled,
                key=lambda n: (node_cost(graph, n), tie_break(n)),
            )
            place(candidates[0])
            sweep_removals()
            continue
        fringe = sorted(
            {
                y
                for x in pebbled
                for y in graph.neighbors(x)
                if y not in pebbled
            },
            key=lambda n: (node_cost(graph, n), tie_break(n)),
        )
        if not fringe:
            # Current component exhausted but pebbles may remain held
            # (should not happen on finite graphs, but stay safe): drop them.
            for node in sorted(holding, key=tie_break):
                holding.discard(node)
                events.append((step, "remove", node))
                step += 1
            continue
        enabling = [
            y
            for y in fringe
            if any(
                _removable(graph, q, pebbled | {y})
                for q in holding
            )
        ]
        place(enabling[0] if enabling else fringe[0])
        sweep_removals()
    sweep_removals()
    return PebblingResult(order, max_pebbles, events)


def pebbles_for_order(graph: nx.Graph, order: Sequence[Node]) -> int:
    """Pebble demand of a fixed read order (removing whenever allowed)."""
    nodes = set(graph.nodes)
    missing = nodes - set(order)
    if missing:
        raise ValueError(f"order does not cover nodes: {sorted(map(repr, missing))}")
    pebbled: set[Node] = set()
    holding: set[Node] = set()
    max_pebbles = 0
    for node in order:
        if node not in nodes or node in pebbled:
            continue
        pebbled.add(node)
        holding.add(node)
        max_pebbles = max(max_pebbles, len(holding))
        changed = True
        while changed:
            changed = False
            for held in list(holding):
                if _removable(graph, held, pebbled):
                    holding.discard(held)
                    changed = True
    return max_pebbles


def optimal_pebbles(graph: nx.Graph, limit: int = 14) -> int:
    """Exact minimum pebbles via best-first state search (small graphs).

    State = (frozenset pebbled, frozenset holding); cost = max pebbles so
    far.  Raises ``ValueError`` beyond ``limit`` nodes to avoid blow-up.
    """
    nodes = tuple(graph.nodes)
    if not nodes:
        return 0
    if len(nodes) > limit:
        raise ValueError(
            f"optimal_pebbles is exponential; graph has {len(nodes)} nodes "
            f"(> limit {limit})"
        )
    start = (frozenset(), frozenset())
    best: dict[tuple[frozenset, frozenset], int] = {start: 0}
    heap: list[tuple[int, int, tuple[frozenset, frozenset]]] = [(0, 0, start)]
    counter = 0
    all_nodes = frozenset(nodes)
    while heap:
        cost, _, (pebbled, holding) = heappop(heap)
        if cost > best.get((pebbled, holding), float("inf")):
            continue
        if pebbled == all_nodes:
            return cost
        # Removals are always beneficial: apply greedily to a closure.
        h = set(holding)
        changed = True
        while changed:
            changed = False
            for node in list(h):
                if _removable(graph, node, set(pebbled)):
                    h.discard(node)
                    changed = True
        holding = frozenset(h)
        state = (pebbled, holding)
        if cost > best.get(state, float("inf")):
            continue
        best[state] = min(best.get(state, cost), cost)
        for node in all_nodes - pebbled:
            new_state = (pebbled | {node}, holding | {node})
            new_cost = max(cost, len(holding) + 1)
            if new_cost < best.get(new_state, float("inf")):
                best[new_state] = new_cost
                counter += 1
                heappush(heap, (new_cost, counter, new_state))
    raise RuntimeError("search exhausted without pebbling all nodes")
