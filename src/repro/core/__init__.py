"""The paper's primary contribution: perspectives and what-if queries.

Contents: validity sets (Sec. 2), the perspective transform Φ with all five
semantics (Secs. 3.3–3.4, 4.2), the what-if algebra σ/ρ/S/E (Sec. 4),
scenario application per Theorem 4.1, and the perspective-cube evaluation
machinery of Sec. 5 (merge dependency graphs, pebbling, dimension-order
selection, the chunk-level perspective cube builder).
"""

from repro.core.compression import CompressedPerspectiveCube, compress
from repro.core.data_scenario import AllocationScenario
from repro.core.delta_aggregate import adjusted_group_by, original_rows
from repro.core.operators import (
    ChangeRelation,
    ChangeTuple,
    evaluate,
    relocate,
    select,
    split,
)
from repro.core.optimizer import OptimizationTrace, optimize
from repro.core.plans import (
    BaseCube,
    EvaluateNode,
    PerspectiveNode,
    PlanNode,
    SelectNode,
    SplitNode,
    execute_plan,
    explain,
)
from repro.core.perspective import (
    Mode,
    PerspectiveSet,
    Semantics,
    phi,
    phi_member,
    stretch,
)
from repro.core.validation import Finding, check_warehouse
from repro.core.scenario import (
    NegativeScenario,
    PositiveScenario,
    WhatIfCube,
    apply_scenarios,
)
from repro.validity import ValiditySet

__all__ = [
    "AllocationScenario",
    "adjusted_group_by",
    "original_rows",
    "Finding",
    "check_warehouse",
    "CompressedPerspectiveCube",
    "compress",
    "OptimizationTrace",
    "optimize",
    "BaseCube",
    "EvaluateNode",
    "PerspectiveNode",
    "PlanNode",
    "SelectNode",
    "SplitNode",
    "execute_plan",
    "explain",
    "ChangeRelation",
    "ChangeTuple",
    "evaluate",
    "relocate",
    "select",
    "split",
    "Mode",
    "PerspectiveSet",
    "Semantics",
    "phi",
    "phi_member",
    "stretch",
    "NegativeScenario",
    "PositiveScenario",
    "WhatIfCube",
    "apply_scenarios",
    "ValiditySet",
]
