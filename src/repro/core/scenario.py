"""What-if scenarios: negative (perspectives) and positive (changes).

This module composes the algebra of Sec. 4 exactly as Theorem 4.1
prescribes:

* a **negative scenario** (Sec. 3.3) with perspectives P, semantics *sem*
  and mode *mode* evaluates as ``E ∘ ρ(·, Φ_sem(VS_in, P)) ∘ σ`` — the
  active-instance filter σ is folded into Φ (instances whose output
  validity set is empty are dropped);
* a **positive scenario** (Sec. 3.4) with change relation R evaluates as
  ``E ∘ S(·, R)``.

The result of applying a scenario is a :class:`WhatIfCube` — the paper's
*perspective cube* — a read-only facade pairing the hypothetical leaf data
with the mode-appropriate source of non-leaf (aggregate) values: the
re-evaluated output for **visual** mode, the original input cube for
**non-visual** mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, TypeAlias

from repro.core.operators import ChangeTuple, relocate, split
from repro.core.perspective import Mode, PerspectiveSet, Semantics, phi_member
from repro.validity import ValiditySet
from repro.errors import QueryError
from repro.olap.cube import Cube
from repro.olap.instances import VaryingDimension
from repro.olap.missing import Missing
from repro.olap.schema import CubeSchema

__all__ = [
    "WhatIfCube",
    "NegativeScenario",
    "PositiveScenario",
    "apply_scenarios",
]

CellValue: TypeAlias = "float | Missing"


class WhatIfCube:
    """A perspective cube: hypothetical leaves + mode-appropriate aggregates.

    Supports the same read API as :class:`~repro.olap.cube.Cube`
    (``effective_value`` / ``value``), so MDX evaluation and the algebra
    operators can consume it transparently.
    """

    def __init__(
        self,
        leaf_cube: Cube,
        aggregate_cube: Cube,
        mode: Mode,
        validity_out: Mapping[str, ValiditySet] | None = None,
        varying_out: VaryingDimension | None = None,
    ) -> None:
        self.leaf_cube = leaf_cube
        self.aggregate_cube = aggregate_cube
        self.mode = mode
        #: output validity sets keyed by member-instance full path
        self.validity_out: dict[str, ValiditySet] = dict(validity_out or {})
        #: hypothetical varying structure (positive scenarios)
        self.varying_out = varying_out

    @property
    def schema(self) -> CubeSchema:
        return self.leaf_cube.schema

    def effective_value(self, address: Sequence[str]) -> CellValue:
        addr = self.schema.validate_address(address)
        if self.schema.is_leaf_address(addr):
            return self.leaf_cube.effective_value(addr)
        return self.aggregate_cube.effective_value(addr)

    def value(self, address: Sequence[str]) -> CellValue:
        return self.effective_value(address)

    def at(self, **coords: str) -> CellValue:
        return self.effective_value(self.schema.address(**coords))

    def as_cube(self) -> Cube:
        """The leaf cube (useful for chaining scenarios or exporting)."""
        return self.leaf_cube

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WhatIfCube(mode={self.mode.value}, "
            f"{self.leaf_cube.n_leaf_cells} leaf cells, "
            f"{len(self.validity_out)} instances)"
        )


def _members_with_data(cube: Cube, dim_index: int) -> set[str]:
    return {
        coord.split("/")[-1]
        for coord in {addr[dim_index] for addr, _ in cube.leaf_cells()}
    }


@dataclass
class NegativeScenario:
    """Perspectives over one varying dimension (Sec. 3.3, extended MDX
    ``WITH PERSPECTIVE {...} FOR <dim> <semantics> <mode>``)."""

    dimension: str
    perspectives: Sequence[str]
    semantics: Semantics = Semantics.STATIC
    mode: Mode = Mode.NON_VISUAL

    def fingerprint(self) -> tuple:
        """Canonical cache key: Theorem 4.1 makes :meth:`apply` a pure
        function of the base cube and this normalised clause, so two
        clauses with equal fingerprints yield the same perspective cube.
        Perspective order is irrelevant to Φ, hence the sort."""
        return (
            "negative",
            self.dimension,
            self.semantics.value,
            self.mode.value,
            tuple(sorted(self.perspectives)),
        )

    def apply(self, cube: Cube, varying: VaryingDimension | None = None) -> WhatIfCube:
        schema = cube.schema
        varying = varying or schema.varying_dimension(self.dimension)
        if not self.perspectives:
            raise QueryError("a perspective clause needs at least one moment")
        if self.semantics.is_dynamic and not varying.parameter.ordered:
            raise QueryError(
                f"{self.semantics.value} semantics requires an ordered "
                f"parameter dimension; {varying.parameter.name!r} is unordered"
            )
        pset = PerspectiveSet.from_names(self.perspectives, varying)
        dim_index = schema.dim_index(self.dimension)

        # Φ per member (Def. 3.4 / 4.3); σ (active filter) is implicit in
        # dropping instances with empty output validity.
        validity_out: dict[str, ValiditySet] = {}
        for member in sorted(_members_with_data(cube, dim_index)):
            transformed = phi_member(
                varying.instances_of(member), pset, self.semantics
            )
            for instance, validity in transformed.items():
                validity_out[instance.full_path] = validity

        out = relocate(cube, self.dimension, validity_out, varying)
        if self.mode is Mode.VISUAL:
            out.clear_stored_derived()
            return WhatIfCube(out, out, self.mode, validity_out)
        return WhatIfCube(out, cube, self.mode, validity_out)


@dataclass
class PositiveScenario:
    """Hypothetical changes R(m, o, n, t) (Sec. 3.4, extended MDX
    ``WITH CHANGES R <mode>``)."""

    dimension: str
    changes: Sequence[ChangeTuple] = field(default_factory=list)
    mode: Mode = Mode.NON_VISUAL

    def fingerprint(self) -> tuple:
        """Canonical cache key over the normalised change relation R:
        a set of (m, o, n, t) tuples, so listing order is irrelevant."""
        return (
            "positive",
            self.dimension,
            self.mode.value,
            tuple(
                sorted(
                    (c.member, c.old_parent, c.new_parent, c.moment)
                    for c in self.changes
                )
            ),
        )

    def apply(self, cube: Cube, varying: VaryingDimension | None = None) -> WhatIfCube:
        schema = cube.schema
        varying = varying or schema.varying_dimension(self.dimension)
        if not self.changes:
            raise QueryError("a changes clause needs at least one change tuple")
        out, hypo = split(cube, self.dimension, list(self.changes), varying)

        dim_index = schema.dim_index(self.dimension)
        validity_out: dict[str, ValiditySet] = {}
        for member in sorted(_members_with_data(out, dim_index)):
            source = hypo if hypo.is_managed(member) else varying
            for instance in source.instances_of(member):
                validity_out[instance.full_path] = instance.validity

        if self.mode is Mode.VISUAL:
            out.clear_stored_derived()
            return WhatIfCube(out, out, self.mode, validity_out, varying_out=hypo)
        return WhatIfCube(out, cube, self.mode, validity_out, varying_out=hypo)


Scenario: TypeAlias = "NegativeScenario | PositiveScenario"


def apply_scenarios(
    cube: Cube, scenarios: Sequence[NegativeScenario | PositiveScenario]
) -> WhatIfCube:
    """Apply a sequence of scenarios left to right (a query may carry both
    positive and negative scenarios, Sec. 3.2)."""
    if not scenarios:
        raise QueryError("apply_scenarios() needs at least one scenario")
    current = cube
    result: WhatIfCube | None = None
    varying_overrides: dict[str, VaryingDimension] = {}
    for scenario in scenarios:
        # Data-driven scenarios (e.g. AllocationScenario) have no varying
        # dimension; structural ones thread the hypothetical structure.
        dimension = getattr(scenario, "dimension", None)
        varying = varying_overrides.get(dimension) if dimension else None
        result = scenario.apply(current, varying)
        if dimension and result.varying_out is not None:
            varying_overrides[dimension] = result.varying_out
        current = result.leaf_cube
    assert result is not None
    return result
