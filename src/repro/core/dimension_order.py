"""Dimension-order selection for perspective cube scans (Lemma 5.1).

Lemma 5.1: when computing a perspective cube, reading chunks with the
**varying dimension first** (varying fastest) needs less memory than any
order that does not lead with it — the chunks holding instances of the same
member meet sooner, so fewer chunks must be held for merging.  With several
varying dimensions, they should form a *prefix* of the order.

:func:`memory_for_dimension_order` measures the merge-induced memory of a
scan order directly: a chunk participating in merges stays resident until
all its merge-graph neighbours have been read (this is exactly the pebble
demand of the scan order restricted to the graph), while non-merging chunks
stream through one at a time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.core.pebbling import pebbles_for_order
from repro.storage.chunks import ChunkGrid

__all__ = ["memory_for_dimension_order", "choose_dimension_order"]


def memory_for_dimension_order(
    graph: nx.Graph, grid: ChunkGrid, order: Sequence[int]
) -> int:
    """Max chunks co-resident when scanning in ``order`` (merging chunks
    held until their merge partners arrive, plus one streaming chunk)."""
    scan = [coord for coord in grid.iter_chunks(order) if coord in graph]
    if not scan:
        return 1
    merge_demand = pebbles_for_order(graph, scan)
    # One extra buffer for the chunk currently streaming through the scan
    # (non-merging chunks never pile up).
    return merge_demand + 1


def choose_dimension_order(
    grid: ChunkGrid, varying_axes: Iterable[int]
) -> tuple[int, ...]:
    """Lemma 5.1 order: varying dimensions first (they form a prefix),
    then the rest; within each block, ascending chunk count (Zhao's
    cardinality heuristic)."""
    varying = set(varying_axes)
    for axis in varying:
        if not 0 <= axis < grid.n_dims:
            raise ValueError(f"varying axis {axis} out of range")
    head = sorted(varying, key=lambda d: (grid.chunks_per_dim[d], d))
    tail = sorted(
        (d for d in range(grid.n_dims) if d not in varying),
        key=lambda d: (grid.chunks_per_dim[d], d),
    )
    return tuple(head + tail)
