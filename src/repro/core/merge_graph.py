"""Merge dependency graphs between chunks (Sec. 5.2, Figs. 8 and 9).

When a perspective query merges the sub-cubes (rows) of a varying member's
instances, chunks holding different instances of the same member cannot be
fully processed until all of them have been read.  The *merge dependency
graph* has chunks as nodes and an edge between two chunks whenever one must
be merged into the other; for the purpose of ordering reads, direction is
irrelevant (the paper: "neither c_i nor c_j can be fully processed before
both of them are read in").

Two builders are provided:

* :func:`merge_graph_from_occurrences` — directly from a map
  ``member -> occurrence chunks`` (the form of the Fig. 8 example: product
  p occurs in chunks 1, 5, 9, 10 ⇒ edges 5–1, 9–1, 10–1 from the paper's
  narrative, where later occurrences merge into the first);
* :func:`build_merge_graph` — from a chunked cube with a varying axis and a
  perspective query: each instance's occurrence chunks are computed from
  its row slot and validity set, and every source chunk is linked to the
  chunk holding the governing (merge-target) instance at the same
  parameter-chunk position.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.core.perspective import PerspectiveSet, Semantics, phi
from repro.errors import QueryError
from repro.storage.array_cube import ChunkedCube
from repro.validity import ValiditySet

__all__ = [
    "merge_graph_from_occurrences",
    "build_merge_graph",
    "occurrence_chunks",
    "VaryingAxisSpec",
    "fig8_example_graph",
]


def merge_graph_from_occurrences(
    occurrences: Mapping[str, Sequence[Hashable]],
) -> nx.Graph:
    """Build the graph from per-member occurrence chunk lists.

    The first chunk in each member's list is the merge target (as in the
    Fig. 8 walkthrough); every other occurrence gets an edge to it.
    Self-loops (a member contained in a single chunk) are ignored.
    """
    graph = nx.Graph()
    for member, chunks in occurrences.items():
        if not chunks:
            continue
        target, *rest = chunks
        graph.add_node(target)
        for chunk in rest:
            if chunk != target:
                graph.add_edge(target, chunk, member=member)
    return graph


def fig8_example_graph() -> nx.Graph:
    """The exact example of Figs. 8/9: products p, q, r, s.

    p occurs in chunks 1, 5, 9, 10; q in 5 and 3; r in 10 and 7; s in 9
    and 6.  The resulting merge dependency graph (Fig. 9) has edges
    1–5, 1–9, 1–10, 5–3, 10–7, 9–6.
    """
    return merge_graph_from_occurrences(
        {"p": [1, 5, 9, 10], "q": [5, 3], "r": [10, 7], "s": [9, 6]}
    )


class VaryingAxisSpec:
    """Metadata tying a chunked cube's axis to varying-member instances.

    Parameters
    ----------
    cube:
        The chunked cube.
    axis_name:
        Name of the varying axis (slots are member-instance labels).
    parameter_axis_name:
        Name of the parameter axis (slots are moments in leaf order).
    member_of_slot:
        Member name for each slot label of the varying axis.
    validity_of_slot:
        Validity set for each slot label (moments are positions on the
        parameter axis).
    """

    def __init__(
        self,
        cube: ChunkedCube,
        axis_name: str,
        parameter_axis_name: str,
        member_of_slot: Mapping[str, str],
        validity_of_slot: Mapping[str, ValiditySet],
    ) -> None:
        self.cube = cube
        self.axis_index = cube.axis_position(axis_name)
        self.param_index = cube.axis_position(parameter_axis_name)
        self.axis = cube.axis(axis_name)
        self.param_axis = cube.axis(parameter_axis_name)
        self.member_of_slot = dict(member_of_slot)
        self.validity_of_slot = dict(validity_of_slot)
        universe = len(self.param_axis)
        for label, validity in self.validity_of_slot.items():
            if validity.universe != universe:
                raise QueryError(
                    f"validity of slot {label!r} has universe "
                    f"{validity.universe}, parameter axis has {universe}"
                )

    def slots_of_member(self, member: str) -> list[str]:
        return [
            label
            for label, owner in self.member_of_slot.items()
            if owner == member
        ]

    def slot_row(self, label: str) -> int:
        return self.axis.index(label)

    def changing_members(self) -> list[str]:
        """Members with more than one instance slot, in axis order."""
        counts: dict[str, int] = {}
        for owner in self.member_of_slot.values():
            counts[owner] = counts.get(owner, 0) + 1
        order = {label: i for i, label in enumerate(self.axis.labels)}
        firsts: dict[str, int] = {}
        for label, owner in self.member_of_slot.items():
            position = order.get(label, len(order))
            firsts[owner] = min(firsts.get(owner, position), position)
        return sorted(
            (m for m, c in counts.items() if c > 1), key=firsts.__getitem__
        )


def occurrence_chunks(
    spec: VaryingAxisSpec, label: str, moments: Iterable[int] | None = None
) -> list[tuple[int, ...]]:
    """Plane chunks containing the (row, moment) cells of one instance.

    ``moments`` defaults to the instance's validity set.  This is the
    "product p occurs in chunks 1, 5, 9, 10" notion of Fig. 8.
    """
    grid = spec.cube.grid
    if moments is None:
        moments = spec.validity_of_slot[label]
    row = spec.slot_row(label)
    row_chunk = row // grid.chunk_shape[spec.axis_index]
    seen: set[int] = set()
    chunks: list[tuple[int, ...]] = []
    for t in moments:
        t_chunk = t // grid.chunk_shape[spec.param_index]
        if t_chunk in seen:
            continue
        seen.add(t_chunk)
        coord = [0] * grid.n_dims
        coord[spec.axis_index] = row_chunk
        coord[spec.param_index] = t_chunk
        chunks.append(tuple(coord))
    return chunks


def build_merge_graph(
    spec: VaryingAxisSpec,
    perspectives: PerspectiveSet,
    semantics: Semantics,
    members: Iterable[str] | None = None,
) -> nx.Graph:
    """Merge dependency graph for a perspective query over a chunked cube.

    Nodes are chunk coordinates in the (varying axis × parameter axis)
    plane (all other chunk coordinates fixed at 0 — the dependency pattern
    repeats identically across the remaining dimensions).  For each
    changing member, the Φ transform determines which target instance
    absorbs each moment; an edge links the chunk holding the source
    instance's cells to the chunk holding the target row at the same
    parameter position.
    """
    graph = nx.Graph()
    if members is None:
        members = spec.changing_members()
    grid = spec.cube.grid
    for member in members:
        labels = spec.slots_of_member(member)
        if len(labels) < 2:
            continue
        validity_in = {label: spec.validity_of_slot[label] for label in labels}
        validity_out = phi(validity_in, perspectives, semantics)
        for target_label, out_validity in validity_out.items():
            target_row_chunk = (
                spec.slot_row(target_label) // grid.chunk_shape[spec.axis_index]
            )
            for source_label in labels:
                if source_label == target_label:
                    continue
                moved = out_validity & validity_in[source_label]
                for t_chunk in {
                    t // grid.chunk_shape[spec.param_index] for t in moved
                }:
                    target = [0] * grid.n_dims
                    target[spec.axis_index] = target_row_chunk
                    target[spec.param_index] = t_chunk
                    source = list(target)
                    source[spec.axis_index] = (
                        spec.slot_row(source_label)
                        // grid.chunk_shape[spec.axis_index]
                    )
                    if tuple(source) != tuple(target):
                        graph.add_edge(
                            tuple(target), tuple(source), member=member
                        )
                    else:
                        graph.add_node(tuple(target))
    return graph
