"""Merge dependency graphs between chunks (Sec. 5.2, Figs. 8 and 9).

When a perspective query merges the sub-cubes (rows) of a varying member's
instances, chunks holding different instances of the same member cannot be
fully processed until all of them have been read.  The *merge dependency
graph* has chunks as nodes and an edge between two chunks whenever one must
be merged into the other; for the purpose of ordering reads, direction is
irrelevant (the paper: "neither c_i nor c_j can be fully processed before
both of them are read in").

Two builders are provided:

* :func:`merge_graph_from_occurrences` — directly from a map
  ``member -> occurrence chunks`` (the form of the Fig. 8 example: product
  p occurs in chunks 1, 5, 9, 10 ⇒ edges 5–1, 9–1, 10–1 from the paper's
  narrative, where later occurrences merge into the first);
* :func:`build_merge_graph` — from a chunked cube with a varying axis and a
  perspective query: each instance's occurrence chunks are computed from
  its row slot and validity set, and every source chunk is linked to the
  chunk holding the governing (merge-target) instance at the same
  parameter-chunk position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.core.perspective import PerspectiveSet, Semantics, phi
from repro.errors import QueryError
from repro.storage.array_cube import ChunkedCube
from repro.validity import ValiditySet

__all__ = [
    "merge_graph_from_occurrences",
    "build_merge_graph",
    "occurrence_chunks",
    "plan_axis_shards",
    "ShardPlan",
    "VaryingAxisSpec",
    "fig8_example_graph",
]


def merge_graph_from_occurrences(
    occurrences: Mapping[str, Sequence[Hashable]],
) -> nx.Graph:
    """Build the graph from per-member occurrence chunk lists.

    The first chunk in each member's list is the merge target (as in the
    Fig. 8 walkthrough); every other occurrence gets an edge to it.
    Self-loops (a member contained in a single chunk) are ignored.
    """
    graph = nx.Graph()
    for member, chunks in occurrences.items():
        if not chunks:
            continue
        target, *rest = chunks
        graph.add_node(target)
        for chunk in rest:
            if chunk != target:
                graph.add_edge(target, chunk, member=member)
    return graph


def fig8_example_graph() -> nx.Graph:
    """The exact example of Figs. 8/9: products p, q, r, s.

    p occurs in chunks 1, 5, 9, 10; q in 5 and 3; r in 10 and 7; s in 9
    and 6.  The resulting merge dependency graph (Fig. 9) has edges
    1–5, 1–9, 1–10, 5–3, 10–7, 9–6.
    """
    return merge_graph_from_occurrences(
        {"p": [1, 5, 9, 10], "q": [5, 3], "r": [10, 7], "s": [9, 6]}
    )


class VaryingAxisSpec:
    """Metadata tying a chunked cube's axis to varying-member instances.

    Parameters
    ----------
    cube:
        The chunked cube.
    axis_name:
        Name of the varying axis (slots are member-instance labels).
    parameter_axis_name:
        Name of the parameter axis (slots are moments in leaf order).
    member_of_slot:
        Member name for each slot label of the varying axis.
    validity_of_slot:
        Validity set for each slot label (moments are positions on the
        parameter axis).
    """

    def __init__(
        self,
        cube: ChunkedCube,
        axis_name: str,
        parameter_axis_name: str,
        member_of_slot: Mapping[str, str],
        validity_of_slot: Mapping[str, ValiditySet],
    ) -> None:
        self.cube = cube
        self.axis_index = cube.axis_position(axis_name)
        self.param_index = cube.axis_position(parameter_axis_name)
        self.axis = cube.axis(axis_name)
        self.param_axis = cube.axis(parameter_axis_name)
        self.member_of_slot = dict(member_of_slot)
        self.validity_of_slot = dict(validity_of_slot)
        universe = len(self.param_axis)
        for label, validity in self.validity_of_slot.items():
            if validity.universe != universe:
                raise QueryError(
                    f"validity of slot {label!r} has universe "
                    f"{validity.universe}, parameter axis has {universe}"
                )

    def slots_of_member(self, member: str) -> list[str]:
        return [
            label
            for label, owner in self.member_of_slot.items()
            if owner == member
        ]

    def slot_row(self, label: str) -> int:
        return self.axis.index(label)

    def changing_members(self) -> list[str]:
        """Members with more than one instance slot, in axis order."""
        counts: dict[str, int] = {}
        for owner in self.member_of_slot.values():
            counts[owner] = counts.get(owner, 0) + 1
        order = {label: i for i, label in enumerate(self.axis.labels)}
        firsts: dict[str, int] = {}
        for label, owner in self.member_of_slot.items():
            position = order.get(label, len(order))
            firsts[owner] = min(firsts.get(owner, position), position)
        return sorted(
            (m for m, c in counts.items() if c > 1), key=firsts.__getitem__
        )


def occurrence_chunks(
    spec: VaryingAxisSpec, label: str, moments: Iterable[int] | None = None
) -> list[tuple[int, ...]]:
    """Plane chunks containing the (row, moment) cells of one instance.

    ``moments`` defaults to the instance's validity set.  This is the
    "product p occurs in chunks 1, 5, 9, 10" notion of Fig. 8.
    """
    grid = spec.cube.grid
    if moments is None:
        moments = spec.validity_of_slot[label]
    row = spec.slot_row(label)
    row_chunk = row // grid.chunk_shape[spec.axis_index]
    seen: set[int] = set()
    chunks: list[tuple[int, ...]] = []
    for t in moments:
        t_chunk = t // grid.chunk_shape[spec.param_index]
        if t_chunk in seen:
            continue
        seen.add(t_chunk)
        coord = [0] * grid.n_dims
        coord[spec.axis_index] = row_chunk
        coord[spec.param_index] = t_chunk
        chunks.append(tuple(coord))
    return chunks


def build_merge_graph(
    spec: VaryingAxisSpec,
    perspectives: PerspectiveSet,
    semantics: Semantics,
    members: Iterable[str] | None = None,
) -> nx.Graph:
    """Merge dependency graph for a perspective query over a chunked cube.

    Nodes are chunk coordinates in the (varying axis × parameter axis)
    plane (all other chunk coordinates fixed at 0 — the dependency pattern
    repeats identically across the remaining dimensions).  For each
    changing member, the Φ transform determines which target instance
    absorbs each moment; an edge links the chunk holding the source
    instance's cells to the chunk holding the target row at the same
    parameter position.
    """
    graph = nx.Graph()
    if members is None:
        members = spec.changing_members()
    grid = spec.cube.grid
    for member in members:
        labels = spec.slots_of_member(member)
        if len(labels) < 2:
            continue
        validity_in = {label: spec.validity_of_slot[label] for label in labels}
        validity_out = phi(validity_in, perspectives, semantics)
        for target_label, out_validity in validity_out.items():
            target_row_chunk = (
                spec.slot_row(target_label) // grid.chunk_shape[spec.axis_index]
            )
            for source_label in labels:
                if source_label == target_label:
                    continue
                moved = out_validity & validity_in[source_label]
                for t_chunk in {
                    t // grid.chunk_shape[spec.param_index] for t in moved
                }:
                    target = [0] * grid.n_dims
                    target[spec.axis_index] = target_row_chunk
                    target[spec.param_index] = t_chunk
                    source = list(target)
                    source[spec.axis_index] = (
                        spec.slot_row(source_label)
                        // grid.chunk_shape[spec.axis_index]
                    )
                    if tuple(source) != tuple(target):
                        graph.add_edge(
                            tuple(target), tuple(source), member=member
                        )
                    else:
                        graph.add_node(tuple(target))
    return graph


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic placement of a varying axis onto shard processes.

    ``shards[i]`` is the tuple of member names owned by shard ``i`` (in
    axis order); ``member_shard`` maps each member name to its shard and
    ``label_shard`` maps each instance slot label (full path) to the
    shard holding its member.  Co-residency is total per member: every
    slot of a member lives on exactly one shard, so a cell whose varying
    coordinate is one instance can be evaluated by that shard alone.
    """

    dimension: str
    n_shards: int
    shards: tuple[tuple[str, ...], ...]
    member_shard: Mapping[str, int]
    label_shard: Mapping[str, int]

    def shard_of_coordinate(self, coord: str) -> "int | None":
        """Owning shard of a cell coordinate on the shard axis, or
        ``None`` when no single shard covers its scope (spanning cell).

        Accepts either a slot label (instance full path) or a bare
        member name; anything else — a category, the dimension root —
        spans shards.
        """
        shard = self.label_shard.get(coord)
        if shard is not None:
            return shard
        shard = self.member_shard.get(coord)
        if shard is not None:
            return shard
        return self.member_shard.get(coord.rsplit("/", 1)[-1])


def plan_axis_shards(
    dimension: str,
    slots_of_member: Mapping[str, Sequence[str]],
    n_shards: int,
    chunk: int = 8,
) -> ShardPlan:
    """Partition a varying axis across shard processes.

    The axis's slot labels (member-instance rows, in axis order) are cut
    into chunks of ``chunk`` slots; :func:`merge_graph_from_occurrences`
    over each member's occurrence chunks yields the merge dependency
    graph, whose connected components are the *co-residency groups*:
    chunks in one component hold instances that a perspective merge may
    need together, so the whole group — and with it every slot of every
    member touching it — is placed on a single shard.  Groups are then
    **range-packed**: swept in axis (lowest-chunk) order into ``n_shards``
    contiguous bins of roughly equal slot count.  Contiguity is the
    point — the axis is laid out in outline order, so members that are
    queried together (one department, one organisational unit) stay on
    one shard and a scoped query touches a single shard instead of
    scattering to all of them; the equal-load sweep keeps the bins as
    balanced as group granularity allows.  The sweep is deterministic,
    so coordinator and shards can both derive the identical plan from
    the schema alone.
    """
    if n_shards < 1:
        raise QueryError("n_shards must be >= 1")
    if chunk < 1:
        raise QueryError("chunk must be >= 1")
    members = list(slots_of_member)
    slot_order: list[str] = []
    for member in members:
        slot_order.extend(slots_of_member[member])
    chunk_of_slot = {
        label: position // chunk for position, label in enumerate(slot_order)
    }
    occurrences = {
        member: sorted({chunk_of_slot[label] for label in slots_of_member[member]})
        for member in members
    }
    graph = merge_graph_from_occurrences(occurrences)
    # Every chunk must be a node even when edge-free (single-member chunks
    # form their own singleton component).
    for chunks in occurrences.values():
        graph.add_nodes_from(chunks)

    members_of_chunk: dict[int, list[str]] = {}
    for member, chunks in occurrences.items():
        for c in chunks:
            members_of_chunk.setdefault(c, []).append(member)

    member_rank = {member: i for i, member in enumerate(members)}
    groups: list[tuple[int, int, list[str]]] = []  # (min_chunk, weight, members)
    for component in nx.connected_components(graph):
        group_members: set[str] = set()
        for c in component:
            group_members.update(members_of_chunk.get(c, ()))
        if not group_members:
            continue
        ordered = sorted(group_members, key=member_rank.__getitem__)
        weight = sum(len(slots_of_member[m]) for m in ordered)
        groups.append((min(component), weight, ordered))
    groups.sort()

    # Range packing: sweep the groups in axis order and close each bin
    # once its cumulative load crosses the bin's fair-share boundary —
    # contiguous, balanced, and locality-preserving.
    total_slots = sum(weight for _, weight, _ in groups)
    bins: list[list[str]] = [[] for _ in range(n_shards)]
    cumulative = 0
    for _, weight, group_members in groups:
        # midpoint assignment: the group goes to the bin its centre falls
        # into, so a group straddling a boundary is not always pushed right
        centre = cumulative + weight / 2.0
        target = min(n_shards - 1, int(centre * n_shards // max(total_slots, 1)))
        bins[target].extend(group_members)
        cumulative += weight

    member_shard: dict[str, int] = {}
    label_shard: dict[str, int] = {}
    for index, owned in enumerate(bins):
        owned.sort(key=member_rank.__getitem__)
        for member in owned:
            member_shard[member] = index
            for label in slots_of_member[member]:
                label_shard[label] = index
    return ShardPlan(
        dimension=dimension,
        n_shards=n_shards,
        shards=tuple(tuple(owned) for owned in bins),
        member_shard=member_shard,
        label_shard=label_shard,
    )
