"""Warehouse consistency checking for changing dimensions.

The data model puts invariants on a warehouse that are easy to violate
when loading data from outside (Sec. 2/3.1): validity sets of one member's
instances never overlap; data must not be stored at meaningless
(instance, moment) combinations — "a cube never stores data corresponding
to non-active members"; coordinates must resolve against the schema.

:func:`check_warehouse` audits a warehouse and returns structured
findings, so ETL pipelines can gate loads the way the paper's engine
enforces these rules natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MdxEvaluationError, SchemaError
from repro.olap.schema import Address
from repro.warehouse import Warehouse

__all__ = ["Finding", "check_warehouse"]


@dataclass(frozen=True)
class Finding:
    """One consistency problem.

    ``code`` is stable and machine-checkable:

    * ``meaningless-cell`` — data stored at a moment outside the
      instance's validity set (a ⊥ combination holding a value);
    * ``unknown-instance`` — a varying-dimension leaf coordinate that is
      not any current instance path of its member;
    * ``unknown-coordinate`` — a coordinate that resolves to no member;
    * ``orphan-named-set`` — a named set referencing a missing member.
    """

    code: str
    message: str
    address: Address | None = None


def _iter_cell_findings(warehouse: Warehouse) -> Iterator[Finding]:
    schema = warehouse.schema
    varying_dims = {
        name: (schema.dim_index(name), varying)
        for name, varying in schema.varying.items()
    }
    param_orders: dict[str, tuple[int, dict[str, int]]] = {}
    for name, (_, varying) in varying_dims.items():
        param_orders[name] = (
            schema.dim_index(varying.parameter.name),
            {m.name: i for i, m in enumerate(varying.parameter.leaf_members())},
        )

    instance_paths: dict[str, dict[str, object]] = {}
    for name, (_, varying) in varying_dims.items():
        table = {}
        members = {
            label.split("/")[-1]
            for label in warehouse.cube.coordinates_used(name)
            if "/" in label
        }
        for member in members:
            try:
                for instance in varying.instances_of(member):
                    table[instance.full_path] = instance.validity
            except SchemaError:
                continue
        instance_paths[name] = table

    for addr, _value in warehouse.cube.leaf_cells():
        for dim_index, coord in enumerate(addr):
            dimension = schema.dimensions[dim_index]
            if dimension.name in varying_dims and "/" in coord:
                validity = instance_paths[dimension.name].get(coord)
                if validity is None:
                    yield Finding(
                        "unknown-instance",
                        f"coordinate {coord!r} is not a current instance "
                        f"path in dimension {dimension.name!r}",
                        addr,
                    )
                    continue
                param_index, order = param_orders[dimension.name]
                moment = order.get(addr[param_index])
                if moment is not None and moment not in validity:
                    yield Finding(
                        "meaningless-cell",
                        f"data stored at ({coord}, {addr[param_index]}) but "
                        "the instance is not valid at that moment",
                        addr,
                    )
            elif "/" not in coord and coord not in dimension:
                yield Finding(
                    "unknown-coordinate",
                    f"coordinate {coord!r} resolves to no member of "
                    f"dimension {dimension.name!r}",
                    addr,
                )


def check_warehouse(warehouse: Warehouse) -> list[Finding]:
    """Audit a warehouse; an empty list means every invariant holds."""
    findings = list(_iter_cell_findings(warehouse))
    for named in warehouse.named_sets():
        for member in named.members:
            try:
                warehouse.resolve_member((member,))
            except MdxEvaluationError:
                findings.append(
                    Finding(
                        "orphan-named-set",
                        f"named set {named.name!r} references missing "
                        f"member {member!r}",
                    )
                )
    return findings
