"""Predicates for the selection operator σ (Sec. 4.1).

A predicate is a callable ``(cube, dim_index, coord) -> bool`` applied to
the coordinates of one dimension.  Factories below build the predicate
forms the paper enumerates:

* ``member_equals`` — ``σ_{Product = TV}``;
* ``descendant_of`` — ``σ_{Product descendant-of AudioVideo}``;
* ``validity_intersects`` — ``σ_{Product.VS ∩ {Feb, Apr} ≠ ∅}``;
* ``value_predicate`` — ``σ_{Location=NY ∧ Time=Jan ∧ Measure=Sales ∧
  Value > 1000}`` (member instances having some cell satisfying a value
  comparison under fixed coordinates on other dimensions);

plus the boolean combinators ``and_``, ``or_``, ``not_``.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Mapping

from repro.errors import QueryError
from repro.olap.cube import Cube

__all__ = [
    "Predicate",
    "member_equals",
    "member_in",
    "descendant_of",
    "validity_intersects",
    "value_predicate",
    "and_",
    "or_",
    "not_",
]

Predicate = Callable[[Cube, int, str], bool]

_RELOPS: dict[str, Callable[[float, float], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _coord_member_name(coord: str) -> str:
    """The member a coordinate denotes (instance paths end in the member)."""
    return coord.split("/")[-1] if "/" in coord else coord


def member_equals(name: str) -> Predicate:
    """Coordinates denoting member ``name`` (any instance of it)."""

    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        return _coord_member_name(coord) == name

    return predicate


def member_in(names: Iterable[str]) -> Predicate:
    """Coordinates denoting any of the given members."""
    name_set = set(names)

    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        return _coord_member_name(coord) in name_set

    return predicate


def descendant_of(ancestor: str, include_self: bool = False) -> Predicate:
    """Coordinates rolling up into ``ancestor`` on this dimension."""

    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        if coord == ancestor:
            return include_self
        schema = cube.schema
        if schema.coordinate_is_leaf(dim_index, coord):
            return schema.is_under(dim_index, coord, ancestor)
        dimension = schema.dimensions[dim_index]
        if coord in dimension and ancestor in dimension:
            return dimension.member(coord).is_descendant_of(
                dimension.member(ancestor)
            )
        return False

    return predicate


def validity_intersects(moments: Iterable[int]) -> Predicate:
    """Instances whose validity set meets the given moments.

    Non-instance coordinates (non-leaf members, or members of non-varying
    dimensions) are treated as always-valid and pass.
    """
    moment_set = set(moments)

    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        instance = cube.schema.instance_for_coordinate(dim_index, coord)
        if instance is None:
            return True
        return instance.validity.intersects_moments(moment_set)

    return predicate


def value_predicate(
    fixed: Mapping[str, str], relop: str, threshold: float
) -> Predicate:
    """Members having *some* leaf cell satisfying a value comparison.

    ``fixed`` pins coordinates on other dimensions (e.g. Location=NY,
    Time="Jan", Measure="Sales"); the comparison runs over every leaf cell
    of the candidate coordinate consistent with those pins.  Follows the
    paper's example σ over "products with Sales over $1000 in Jan in some
    market".
    """
    try:
        compare = _RELOPS[relop]
    except KeyError:
        raise QueryError(
            f"unknown relational operator {relop!r}; expected one of "
            f"{sorted(_RELOPS)}"
        ) from None

    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        schema = cube.schema
        pin_indices = {schema.dim_index(name): value for name, value in fixed.items()}
        if dim_index in pin_indices:
            raise QueryError(
                "value predicate pins the selection dimension itself"
            )
        for addr, value in cube.leaf_cells():
            if not cube.coord_rolls_up(dim_index, addr[dim_index], coord):
                continue
            if all(
                cube.coord_rolls_up(i, addr[i], pin)
                for i, pin in pin_indices.items()
            ):
                if compare(value, threshold):
                    return True
        return False

    return predicate


def and_(*predicates: Predicate) -> Predicate:
    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        return all(p(cube, dim_index, coord) for p in predicates)

    return predicate


def or_(*predicates: Predicate) -> Predicate:
    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        return any(p(cube, dim_index, coord) for p in predicates)

    return predicate


def not_(inner: Predicate) -> Predicate:
    def predicate(cube: Cube, dim_index: int, coord: str) -> bool:
        return not inner(cube, dim_index, coord)

    return predicate
