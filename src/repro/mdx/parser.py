"""Recursive-descent parser for the extended MDX dialect.

Handles the classic MDX core (SELECT ... ON COLUMNS/ROWS ... FROM ...
WHERE ...) plus the paper's extensions:

* ``WITH PERSPECTIVE {(Jan), (Jul)} FOR Department STATIC|DYNAMIC FORWARD
  ... [VISUAL|NON_VISUAL]`` (negative scenarios, Sec. 3.3);
* ``WITH CHANGES {(member, old, new, moment), ...} [FOR dim] [mode]``
  (positive scenarios, Sec. 3.4).

All three queries of Fig. 10 parse verbatim.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import MdxSyntaxError
from repro.mdx.ast_nodes import (
    AxisSpec,
    ChangeSpec,
    ChangesClause,
    ChildrenExpr,
    CrossJoinExpr,
    DescendantsExpr,
    FilterExpr,
    HeadExpr,
    LevelsMembersExpr,
    MdxQuery,
    MemberPath,
    MembersExpr,
    OrderExpr,
    PerspectiveClause,
    SetExpr,
    SetLiteral,
    TailExpr,
    TupleExpr,
    UnionExpr,
)
from repro.mdx.lexer import Token, tokenize
from repro.mdx.span import SourceSpan

__all__ = ["parse_query"]

_SET_FUNCTIONS = {
    "CROSSJOIN", "UNION", "HEAD", "TAIL", "DESCENDANTS", "FILTER", "ORDER",
}
_RELOPS = {"<", "<=", ">", ">=", "=", "<>"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> MdxSyntaxError:
        token = token or self._peek()
        return MdxSyntaxError(message, token.line, token.column)

    def _expect_punct(self, value: str) -> Token:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise self._error(f"expected {value!r}, found {token.value!r}", token)
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if not token.matches_keyword(keyword):
            raise self._error(
                f"expected keyword {keyword!r}, found {token.value!r}", token
            )
        return token

    def _expect_name(self) -> Token:
        token = self._next()
        if token.kind != "name":
            raise self._error(f"expected a name, found {token.value!r}", token)
        return token

    def _expect_number(self) -> int:
        token = self._next()
        if token.kind != "number":
            raise self._error(f"expected a number, found {token.value!r}", token)
        return int(float(token.value))

    def _expect_float(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise self._error(f"expected a number, found {token.value!r}", token)
        return float(token.value)

    def _at_keyword(self, keyword: str, ahead: int = 0) -> bool:
        return self._peek(ahead).matches_keyword(keyword)

    def _at_punct(self, value: str, ahead: int = 0) -> bool:
        token = self._peek(ahead)
        return token.kind == "punct" and token.value == value

    # -- query ----------------------------------------------------------------

    def parse(self) -> MdxQuery:
        perspective = None
        changes = None
        named_sets: list[tuple[str, SetExpr]] = []
        if self._at_keyword("WITH"):
            self._next()
            while not self._at_keyword("SELECT"):
                if self._at_keyword("PERSPECTIVE"):
                    if perspective is not None:
                        raise self._error("duplicate PERSPECTIVE clause")
                    perspective = self._perspective_clause()
                elif self._at_keyword("CHANGES"):
                    if changes is not None:
                        raise self._error("duplicate CHANGES clause")
                    changes = self._changes_clause()
                elif self._at_keyword("SET"):
                    named_sets.append(self._set_definition())
                else:
                    raise self._error(
                        "expected SET, PERSPECTIVE or CHANGES after WITH"
                    )
        self._expect_keyword("SELECT")
        axes = [self._axis_spec()]
        while self._at_punct(","):
            self._next()
            axes.append(self._axis_spec())
        self._expect_keyword("FROM")
        cube_span = SourceSpan.from_token(self._peek())
        cube = self._dotted_names()
        slicer = None
        if self._at_keyword("WHERE"):
            self._next()
            slicer = self._slicer_tuple()
        trailing = self._peek()
        if trailing.kind != "eof":
            raise self._error(
                f"unexpected trailing input {trailing.value!r}", trailing
            )
        return MdxQuery(
            axes=tuple(axes),
            cube=cube,
            slicer=slicer,
            perspective=perspective,
            changes=changes,
            named_sets=tuple(named_sets),
            cube_span=cube_span,
        )

    def _set_definition(self) -> tuple[str, SetExpr]:
        """WITH SET [Name] AS {...} — a query-scoped named set."""
        self._expect_keyword("SET")
        name = self._expect_name().value
        self._expect_keyword("AS")
        return name, self._set_expr()

    # -- WITH clauses -------------------------------------------------------------

    def _perspective_clause(self) -> PerspectiveClause:
        span = SourceSpan.from_token(self._peek())
        self._expect_keyword("PERSPECTIVE")
        self._expect_punct("{")
        perspectives = [self._perspective_point()]
        while self._at_punct(","):
            self._next()
            perspectives.append(self._perspective_point())
        self._expect_punct("}")
        self._expect_keyword("FOR")
        dimension = self._expect_name().value
        semantics = self._semantics()
        mode = self._mode()
        return PerspectiveClause(
            perspectives=tuple(perspectives),
            dimension=dimension,
            semantics=semantics,
            mode=mode,
            span=span,
        )

    def _perspective_point(self) -> str:
        if self._at_punct("("):
            self._next()
            name = self._expect_name().value
            self._expect_punct(")")
            return name
        return self._expect_name().value

    def _semantics(self) -> str:
        if self._at_keyword("STATIC"):
            self._next()
            return "static"
        dynamic = False
        extended = False
        if self._at_keyword("DYNAMIC"):
            self._next()
            dynamic = True
        if self._at_keyword("EXTENDED"):
            self._next()
            extended = True
        if self._at_keyword("FORWARD"):
            self._next()
            return "extended_forward" if extended else "forward"
        if self._at_keyword("BACKWARD"):
            self._next()
            return "extended_backward" if extended else "backward"
        if dynamic or extended:
            raise self._error(
                "DYNAMIC/EXTENDED must be followed by FORWARD or BACKWARD"
            )
        return "static"

    def _mode(self) -> str:
        if self._at_keyword("VISUAL"):
            self._next()
            return "visual"
        if self._at_keyword("NON_VISUAL") or self._at_keyword("NONVISUAL"):
            self._next()
            return "non_visual"
        # Paper: "when mode is not explicitly specified, non-visual mode is
        # assumed by default."
        return "non_visual"

    def _changes_clause(self) -> ChangesClause:
        span = SourceSpan.from_token(self._peek())
        self._expect_keyword("CHANGES")
        self._expect_punct("{")
        changes = [self._change_tuple()]
        while self._at_punct(","):
            self._next()
            changes.append(self._change_tuple())
        self._expect_punct("}")
        dimension = None
        if self._at_keyword("FOR"):
            self._next()
            dimension = self._expect_name().value
        mode = self._mode()
        return ChangesClause(tuple(changes), dimension, mode, span=span)

    def _change_tuple(self) -> ChangeSpec:
        span = SourceSpan.from_token(self._peek())
        self._expect_punct("(")
        member_expr = self._member_path_with_suffixes()
        expand = isinstance(member_expr, ChildrenExpr)
        member = member_expr.base if expand else member_expr
        if not isinstance(member, MemberPath):
            raise self._error(
                "first component of a change tuple must be a member or "
                "member.Children"
            )
        self._expect_punct(",")
        old_parent = self._expect_name().value
        self._expect_punct(",")
        new_parent = self._expect_name().value
        self._expect_punct(",")
        moment = self._expect_name().value
        self._expect_punct(")")
        return ChangeSpec(member, old_parent, new_parent, moment, expand, span=span)

    # -- axes --------------------------------------------------------------------

    def _axis_spec(self) -> AxisSpec:
        span = SourceSpan.from_token(self._peek())
        non_empty = False
        if self._at_keyword("NON") and self._peek(1).matches_keyword("EMPTY"):
            self._next()
            self._next()
            non_empty = True
        expr = self._set_expr()
        properties: list[MemberPath] = []
        if self._at_keyword("DIMENSION"):
            self._next()
            self._expect_keyword("PROPERTIES")
            # Every comma before the closing ON belongs to the property
            # list (the axis spec only ends at ON).
            properties.append(self._plain_member_path())
            while self._at_punct(","):
                self._next()
                properties.append(self._plain_member_path())
        self._expect_keyword("ON")
        axis = self._axis_name()
        return AxisSpec(expr, axis, tuple(properties), non_empty, span=span)

    def _axis_name(self) -> str:
        token = self._next()
        if token.matches_keyword("COLUMNS"):
            return "columns"
        if token.matches_keyword("ROWS"):
            return "rows"
        if token.kind == "number":
            return f"axis{int(float(token.value))}"
        if token.matches_keyword("AXIS"):
            self._expect_punct("(")
            number = self._expect_number()
            self._expect_punct(")")
            return f"axis{number}"
        raise self._error(f"bad axis name {token.value!r}", token)

    # -- set expressions --------------------------------------------------------------

    def _set_expr(self) -> SetExpr:
        if self._at_punct("{"):
            self._next()
            elements: list[SetExpr] = []
            if not self._at_punct("}"):
                elements.append(self._set_expr())
                while self._at_punct(","):
                    self._next()
                    elements.append(self._set_expr())
            self._expect_punct("}")
            return SetLiteral(tuple(elements))
        if self._at_punct("("):
            return self._tuple_expr()
        token = self._peek()
        if (
            token.kind == "name"
            and not token.bracketed
            and token.value.upper() in _SET_FUNCTIONS
            and self._at_punct("(", ahead=1)
        ):
            return self._function_call()
        return self._member_path_with_suffixes()

    def _tuple_expr(self) -> TupleExpr:
        self._expect_punct("(")
        members = [self._require_member_path()]
        while self._at_punct(","):
            self._next()
            members.append(self._require_member_path())
        self._expect_punct(")")
        return TupleExpr(tuple(members))

    def _require_member_path(self) -> MemberPath:
        expr = self._member_path_with_suffixes()
        if not isinstance(expr, MemberPath):
            raise self._error("tuples may only contain plain member references")
        return expr

    def _function_call(self) -> SetExpr:
        name = self._expect_name().value.upper()
        self._expect_punct("(")
        if name == "CROSSJOIN":
            left = self._set_expr()
            self._expect_punct(",")
            right = self._set_expr()
            self._expect_punct(")")
            return CrossJoinExpr(left, right)
        if name == "UNION":
            left = self._set_expr()
            self._expect_punct(",")
            right = self._set_expr()
            self._expect_punct(")")
            return UnionExpr(left, right)
        if name in ("HEAD", "TAIL"):
            base = self._set_expr()
            self._expect_punct(",")
            count = self._expect_number()
            self._expect_punct(")")
            return HeadExpr(base, count) if name == "HEAD" else TailExpr(base, count)
        if name == "FILTER":
            base = self._set_expr()
            self._expect_punct(",")
            if self._at_punct("("):
                condition = self._tuple_expr()
            else:
                condition = TupleExpr((self._plain_member_path(),))
            relop_token = self._next()
            if relop_token.kind != "punct" or relop_token.value not in _RELOPS:
                raise self._error(
                    f"expected a relational operator, found {relop_token.value!r}",
                    relop_token,
                )
            threshold = self._expect_float()
            self._expect_punct(")")
            return FilterExpr(base, condition, relop_token.value, threshold)
        if name == "ORDER":
            base = self._set_expr()
            self._expect_punct(",")
            if self._at_punct("("):
                condition = self._tuple_expr()
            else:
                condition = TupleExpr((self._plain_member_path(),))
            descending = False
            if self._at_punct(","):
                self._next()
                direction = self._expect_name().value.upper()
                if direction not in ("ASC", "DESC", "BASC", "BDESC"):
                    raise self._error(
                        f"Order direction must be ASC or DESC, got {direction!r}"
                    )
                descending = direction.endswith("DESC")
            self._expect_punct(")")
            return OrderExpr(base, condition, descending)
        # DESCENDANTS
        base = self._plain_member_path()
        depth = 0
        flag = "self"
        if self._at_punct(","):
            self._next()
            depth = self._expect_number()
        if self._at_punct(","):
            self._next()
            flag = self._expect_name().value.lower()
        self._expect_punct(")")
        return DescendantsExpr(base, depth, flag)

    def _plain_member_path(self) -> MemberPath:
        span = SourceSpan.from_token(self._peek())
        parts = [self._expect_name().value]
        while self._at_punct("."):
            suffix = self._peek(1)
            if suffix.kind == "name" and not suffix.bracketed and (
                suffix.value.upper() in ("MEMBERS", "CHILDREN", "LEVELS")
            ):
                break
            self._next()
            parts.append(self._expect_name().value)
        return MemberPath(tuple(parts), span=span)

    def _member_path_with_suffixes(self) -> SetExpr:
        path = self._plain_member_path()
        if not self._at_punct("."):
            return path
        suffix = self._peek(1)
        if suffix.matches_keyword("MEMBERS"):
            self._next()
            self._next()
            return MembersExpr(path)
        if suffix.matches_keyword("CHILDREN"):
            self._next()
            self._next()
            return ChildrenExpr(path)
        if suffix.matches_keyword("LEVELS"):
            self._next()
            self._next()
            self._expect_punct("(")
            level = self._expect_number()
            self._expect_punct(")")
            self._expect_punct(".")
            self._expect_keyword("MEMBERS")
            return LevelsMembersExpr(path, level)
        return path

    # -- FROM / WHERE -------------------------------------------------------------

    def _dotted_names(self) -> tuple[str, ...]:
        parts = [self._expect_name().value]
        while self._at_punct("."):
            self._next()
            parts.append(self._expect_name().value)
        return tuple(parts)

    def _slicer_tuple(self) -> TupleExpr:
        if self._at_punct("("):
            return self._tuple_expr()
        return TupleExpr((self._plain_member_path(),))


@lru_cache(maxsize=256)
def _parse_cached(text: str) -> MdxQuery:
    return _Parser(tokenize(text)).parse()


def parse_query(text: str) -> MdxQuery:
    """Parse extended-MDX text into an :class:`MdxQuery`.

    Parses are memoised on the query text: every AST node is a frozen
    dataclass, so a cached query object is safely shared between callers
    and across threads.  Repeated-query workloads (the benchmark's, and
    any dashboard refresh) skip tokenisation entirely.
    """
    return _parse_cached(text)
