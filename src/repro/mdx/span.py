"""Source spans for extended-MDX text.

The lexer has always tracked line/column on every :class:`~repro.mdx.lexer.Token`;
this module gives that position a first-class type shared by parse errors
(:class:`~repro.errors.MdxSyntaxError`) and analyzer diagnostics
(:mod:`repro.analysis.diagnostics`), so both render positions the same way:
``line L, column C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["SourceSpan"]


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based (line, column) position in the query text."""

    line: int
    column: int

    @classmethod
    def from_token(cls, token: Any) -> "SourceSpan":
        """Span of anything carrying ``line`` and ``column`` attributes."""
        return cls(token.line, token.column)

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"
