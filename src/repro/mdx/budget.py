"""Query budgets: wall-clock deadlines and cell-evaluation caps.

A :class:`QueryBudget` bounds how much work one query may do.  Budgets
degrade rather than fail: when the cell-fill loop breaches the budget, the
remaining cells are returned as ⊥ and the result carries a structured
:class:`Degradation` record (``result.degradations``) saying what was cut
and why.  Only the *axis resolution* phase — where there is no meaningful
partial answer — raises :class:`~repro.errors.QueryBudgetExceededError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import QueryBudgetExceededError

__all__ = ["BudgetTracker", "Degradation", "QueryBudget"]


@dataclass(frozen=True)
class QueryBudget:
    """Limits for one query evaluation.

    Parameters
    ----------
    deadline_ms:
        Wall-clock budget in milliseconds, measured from the start of
        evaluation.  ``None`` = unlimited.
    max_cells:
        Maximum number of cell evaluations (result cells plus
        Filter/Order condition probes).  ``None`` = unlimited.
    clock:
        Monotonic clock used for the deadline; ``None`` = the real
        ``time.monotonic``.  Injectable so degradation behaviour (e.g.
        a deadline tripping mid-row) is testable deterministically on
        both the per-cell and the batched evaluation paths.
    """

    deadline_ms: "float | None" = None
    max_cells: "int | None" = None
    clock: "Callable[[], float] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0")
        if self.max_cells is not None and self.max_cells < 0:
            raise ValueError("max_cells must be >= 0")

    @property
    def unlimited(self) -> bool:
        return self.deadline_ms is None and self.max_cells is None

    def narrowed(self, deadline_ms: "float | None") -> "QueryBudget":
        """This budget with its deadline capped at ``deadline_ms``.

        The query service propagates admission deadlines this way: a
        query that waited W ms in the queue of a service with deadline D
        executes under ``budget.narrowed(D - W)`` — queue time counts
        against the caller's deadline, it is not a free extension.  A
        negative cap clamps to 0 (the budget degrades everything
        immediately rather than pretending time is left).  ``None`` means
        no cap and returns ``self`` unchanged.
        """
        if deadline_ms is None:
            return self
        capped = max(deadline_ms, 0.0)
        if self.deadline_ms is not None and self.deadline_ms <= capped:
            return self
        return QueryBudget(
            deadline_ms=capped, max_cells=self.max_cells, clock=self.clock
        )


@dataclass(frozen=True)
class Degradation:
    """One structured record of work a query gave up on."""

    reason: str  #: ``"deadline"`` or ``"cell-cap"``
    detail: str  #: human-readable explanation
    cells_evaluated: int  #: cells computed before the breach
    cells_skipped: int  #: cells returned as ⊥ without evaluation

    def to_dict(self) -> dict[str, object]:
        return {
            "reason": self.reason,
            "detail": self.detail,
            "cells_evaluated": self.cells_evaluated,
            "cells_skipped": self.cells_skipped,
        }


class BudgetTracker:
    """Mutable evaluation-time state for one query's budget."""

    def __init__(
        self,
        budget: QueryBudget,
        *,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        self.budget = budget
        self._clock = clock or budget.clock or time.monotonic
        self._started = self._clock()
        self.cells_evaluated = 0
        #: breach reason ("deadline" | "cell-cap") once tripped, else None
        self.breached: "str | None" = None

    # -- checks -------------------------------------------------------------------

    def _deadline_passed(self) -> bool:
        if self.budget.deadline_ms is None:
            return False
        elapsed_ms = (self._clock() - self._started) * 1000.0
        return elapsed_ms >= self.budget.deadline_ms

    def charge_cell(self) -> bool:
        """Account for one upcoming cell evaluation.

        Returns True when the evaluation may proceed; False when the
        budget is breached (and records the breach reason).
        """
        if self.breached is not None:
            return False
        if (
            self.budget.max_cells is not None
            and self.cells_evaluated >= self.budget.max_cells
        ):
            self.breached = "cell-cap"
            return False
        if self._deadline_passed():
            self.breached = "deadline"
            return False
        self.cells_evaluated += 1
        return True

    def charge_cells(self, count: int) -> int:
        """Account for a batch of up to ``count`` upcoming cell evaluations.

        Returns how many of them may proceed (0..``count``).  Cell caps are
        exact: the grant never exceeds the remaining cap, and exhausting it
        mid-batch records the breach.  The wall-clock deadline is checked
        once per batch — which is why the batched evaluator only uses this
        method for cap-only budgets and falls back to per-cell
        :meth:`charge_cell` whenever a deadline is set, so a deadline
        tripping mid-row degrades at exactly the same cell (identical
        ``cells_evaluated``/``cells_skipped``) as the per-cell loop.
        """
        if count <= 0 or self.breached is not None:
            return 0
        remaining = count
        if self.budget.max_cells is not None:
            remaining = self.budget.max_cells - self.cells_evaluated
            if remaining <= 0:
                self.breached = "cell-cap"
                return 0
        if self._deadline_passed():
            self.breached = "deadline"
            return 0
        granted = min(count, remaining)
        self.cells_evaluated += granted
        if granted < count:
            self.breached = "cell-cap"
        return granted

    def charge_cell_or_raise(self, phase: str) -> None:
        """Like :meth:`charge_cell`, but raise
        :class:`~repro.errors.QueryBudgetExceededError` on breach — for
        phases (axis resolution) that cannot return a partial result."""
        if not self.charge_cell():
            assert self.breached is not None
            raise QueryBudgetExceededError(
                f"query budget breached ({self._describe()}) during {phase}; "
                "axis resolution cannot return a partial result",
                reason=self.breached,
            )

    def _describe(self) -> str:
        if self.breached == "cell-cap":
            return (
                f"cell-evaluation cap of {self.budget.max_cells} reached"
            )
        return (
            f"wall-clock deadline of {self.budget.deadline_ms}ms exceeded"
        )

    def degradation(self, cells_skipped: int) -> Degradation:
        """The structured record for a breach in the cell-fill loop."""
        assert self.breached is not None
        return Degradation(
            reason=self.breached,
            detail=self._describe(),
            cells_evaluated=self.cells_evaluated,
            cells_skipped=cells_skipped,
        )
