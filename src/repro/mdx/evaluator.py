"""Evaluation of extended-MDX queries against a warehouse.

The pipeline follows the paper's semantics exactly:

1. The WITH clause (if any) is turned into a scenario
   (:class:`~repro.core.scenario.NegativeScenario` /
   :class:`~repro.core.scenario.PositiveScenario`) and applied to the
   warehouse cube, yielding a perspective cube (WhatIfCube).
2. Axis set expressions are evaluated to lists of tuples.  Leaf members of
   a varying dimension expand to their member *instances* — restricted to
   instances surviving the scenario (non-empty output validity).
3. Each result cell is the perspective cube's value at the address formed
   by the slicer, the axis coordinates, and dimension roots for every
   unmentioned dimension (the Essbase default member).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.operators import ChangeTuple
from repro.core.perspective import Mode, Semantics
from repro.core.scenario import NegativeScenario, PositiveScenario, WhatIfCube
from repro.errors import MdxEvaluationError
from repro.faults import inject_io_fault, register_failpoint
from repro.mdx.budget import BudgetTracker, QueryBudget
from repro.mdx.ast_nodes import (
    AxisSpec,
    ChangesClause,
    ChildrenExpr,
    CrossJoinExpr,
    DescendantsExpr,
    FilterExpr,
    HeadExpr,
    LevelsMembersExpr,
    MdxQuery,
    MemberPath,
    MembersExpr,
    OrderExpr,
    SetExpr,
    SetLiteral,
    TailExpr,
    TupleExpr,
    UnionExpr,
)
from repro.mdx.parser import parse_query
from repro.mdx.result import AxisTuple, MdxResult
from repro.obs.trace import trace_span
from repro.olap.dimension import Dimension, Member
from repro.perf import config as perf_config

__all__ = ["evaluate_query", "execute"]

# A coordinate binding: (dimension name, coordinate, display label)
Binding = tuple[str, str, str]

FP_MDX_CELL = register_failpoint("mdx.cell")


class _Context:
    """Evaluation context: warehouse bindings plus the applied scenario."""

    def __init__(
        self,
        warehouse,
        query: MdxQuery,
        budget: "QueryBudget | None" = None,
    ) -> None:
        self.warehouse = warehouse
        self.schema = warehouse.schema
        self.query = query
        self.tracker = (
            None
            if budget is None or budget.unlimited
            else BudgetTracker(budget)
        )
        #: query-scoped named sets (WITH SET ... AS ...), by name
        self.query_sets = dict(query.named_sets)
        self._expanding_sets: set[str] = set()
        self.scenarios = self._build_scenarios(query)
        self.varying_view = dict(self.schema.varying)
        #: scenario-cache hits/misses/builds for this one query
        self.scenario_stats: dict[str, int] = {}
        if not self.scenarios:
            self.view = warehouse.cube
            self.surviving: dict[str, set[str]] | None = None
        else:
            self._apply_scenario_chain(warehouse)

    def _apply_scenario_chain(self, warehouse) -> None:
        """Materialise the scenario view, consulting the warehouse's
        scenario cache (Theorem 4.1 purity: same fingerprints + same base
        cube version ⇒ same perspective cube)."""
        cache = getattr(warehouse, "scenario_cache", None)
        key = version = None
        if cache is not None and perf_config.engine_enabled():
            try:
                key = tuple(s.fingerprint() for s in self.scenarios)
            except AttributeError:
                key = None  # ad-hoc scenario without a canonical form
        if key is not None:
            version = warehouse.cube.version
            hit = cache.get(key, version)
            if hit is not None:
                base, view, varying_view, surviving = hit
                if base is warehouse.cube:
                    # Defensive copies: the entry must not observe later
                    # per-query mutation of these maps.
                    self.view = view
                    self.varying_view = dict(varying_view)
                    self.surviving = {
                        dim: set(paths) for dim, paths in surviving.items()
                    }
                    self.scenario_stats["scenario_cache_hits"] = 1
                    return
                # Same fingerprints + version but a different cube object:
                # the warehouse swapped cubes.  Drop and rebuild.
                cache.discard(key)
        # Apply left to right (changes first, then perspectives view
        # the hypothetical history), threading the hypothetical varying
        # structure exactly like apply_scenarios().
        current = warehouse.cube
        applied: WhatIfCube | None = None
        for scenario in self.scenarios:
            varying = self.varying_view.get(scenario.dimension)
            with trace_span(
                "scenario.apply",
                kind=type(scenario).__name__,
                dimension=scenario.dimension,
            ):
                applied = scenario.apply(current, varying)
            if applied.varying_out is not None:
                self.varying_view[scenario.dimension] = applied.varying_out
            current = applied.leaf_cube
        assert applied is not None
        self.view = applied
        self.surviving = self._surviving_instances(applied)
        if key is not None:
            assert version is not None
            evictions_before = cache.stats.evictions
            cache.put(
                key,
                version,
                (
                    warehouse.cube,
                    applied,
                    dict(self.varying_view),
                    {dim: set(paths) for dim, paths in self.surviving.items()},
                ),
            )
            cache.stats.builds += 1
            self.scenario_stats["scenario_cache_misses"] = 1
            evicted = cache.stats.evictions - evictions_before
            if evicted:
                self.scenario_stats["scenario_cache_evictions"] = evicted

    # -- scenario construction ---------------------------------------------------

    def _build_scenarios(
        self, query: MdxQuery
    ) -> "list[NegativeScenario | PositiveScenario]":
        scenarios: list[NegativeScenario | PositiveScenario] = []
        if query.changes is not None:
            scenarios.append(self._build_positive(query.changes))
        if query.perspective is not None:
            clause = query.perspective
            scenarios.append(
                NegativeScenario(
                    dimension=clause.dimension,
                    perspectives=list(clause.perspectives),
                    semantics=Semantics(clause.semantics),
                    mode=Mode(clause.mode),
                )
            )
        return scenarios

    def _build_positive(self, clause: ChangesClause) -> PositiveScenario:
        dimension = clause.dimension
        changes: list[ChangeTuple] = []
        for spec in clause.changes:
            if spec.expand:
                dim, parent = self.warehouse.resolve_member(spec.member.parts)
                members = [child.name for child in parent.children]
            else:
                dim, member = self.warehouse.resolve_member(spec.member.parts)
                members = [member.name]
            if dimension is None:
                dimension = dim.name
            elif dimension != dim.name:
                raise MdxEvaluationError(
                    f"change tuple member {spec.member.display()} belongs to "
                    f"{dim.name!r}, clause names {dimension!r}"
                )
            for name in members:
                changes.append(
                    ChangeTuple(name, spec.old_parent, spec.new_parent, spec.moment)
                )
        if dimension is None:
            raise MdxEvaluationError("cannot infer the changes dimension")
        return PositiveScenario(dimension, changes, Mode(clause.mode))

    def _surviving_instances(self, applied: WhatIfCube) -> dict[str, set[str]]:
        surviving: dict[str, set[str]] = {}
        dim = self.scenarios[-1].dimension
        surviving[dim] = set(applied.validity_out)
        return surviving

    # -- member expansion -----------------------------------------------------------

    def expand_member(
        self, dim: Dimension, member: Member, ancestors: Sequence[str]
    ) -> list[Binding]:
        """Bindings for one member: instance rows for varying leaves,
        the member name otherwise."""
        name = dim.name
        if not self.schema.is_varying(name) or not member.is_leaf:
            return [(name, member.name, member.name)]
        varying = self.varying_view[name]
        allowed = None if self.surviving is None else self.surviving.get(name)
        bindings: list[Binding] = []
        for instance in varying.instances_of(member.name):
            if ancestors and not set(ancestors) <= set(instance.path[:-1]):
                continue
            if allowed is not None and instance.full_path not in allowed:
                continue
            bindings.append(
                (name, instance.full_path, instance.qualified_name)
            )
        return bindings

    def property_value(self, binding_coord: str, property_dim: str) -> str:
        """DIMENSION PROPERTIES value: the instance's parent in the
        requested (varying) dimension."""
        if "/" in binding_coord:
            parts = binding_coord.split("/")
            return parts[-2]
        return binding_coord


def _as_set(expr: SetExpr, context: _Context) -> list[tuple[Binding, ...]]:
    """Evaluate a set expression to a list of binding tuples."""
    if isinstance(expr, SetLiteral):
        result: list[tuple[Binding, ...]] = []
        for element in expr.elements:
            result.extend(_as_set(element, context))
        return result
    if isinstance(expr, TupleExpr):
        bindings: list[Binding] = []
        for path in expr.members:
            expanded = _member_bindings(path, context)
            if len(expanded) != 1:
                raise MdxEvaluationError(
                    f"tuple component {path.display()} is ambiguous "
                    f"({len(expanded)} instances); name the instance via its "
                    "parent"
                )
            bindings.append(expanded[0])
        return [tuple(bindings)]
    if isinstance(expr, MemberPath):
        if len(expr.parts) == 1 and expr.parts[0] in context.query_sets:
            name = expr.parts[0]
            if name in context._expanding_sets:
                raise MdxEvaluationError(
                    f"named set {name!r} is defined in terms of itself"
                )
            context._expanding_sets.add(name)
            try:
                return _as_set(context.query_sets[name], context)
            finally:
                context._expanding_sets.discard(name)
        return [(binding,) for binding in _member_bindings(expr, context)]
    if isinstance(expr, ChildrenExpr):
        return _children(expr.base, context)
    if isinstance(expr, MembersExpr):
        return _members(expr.base, context)
    if isinstance(expr, LevelsMembersExpr):
        return _levels_members(expr, context)
    if isinstance(expr, DescendantsExpr):
        return _descendants(expr, context)
    if isinstance(expr, CrossJoinExpr):
        left = _as_set(expr.left, context)
        right = _as_set(expr.right, context)
        return [lhs + rhs for lhs in left for rhs in right]
    if isinstance(expr, UnionExpr):
        left = _as_set(expr.left, context)
        seen = set(left)
        merged = list(left)
        for item in _as_set(expr.right, context):
            if item not in seen:
                seen.add(item)
                merged.append(item)
        return merged
    if isinstance(expr, FilterExpr):
        return _filter(expr, context)
    if isinstance(expr, OrderExpr):
        return _order(expr, context)
    if isinstance(expr, HeadExpr):
        return _as_set(expr.base, context)[: expr.count]
    if isinstance(expr, TailExpr):
        base = _as_set(expr.base, context)
        # max() guards against count > len(base): a negative start would
        # wrap around and silently drop the head of the set.
        return base[max(0, len(base) - expr.count) :] if expr.count else []
    raise MdxEvaluationError(f"unsupported set expression {expr!r}")


_RELOP_FUNCS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
}


def _filter(expr: FilterExpr, context: _Context) -> list[tuple[Binding, ...]]:
    """Filter(set, (tuple) relop n): σ with a value predicate (Sec. 4.1).

    For each candidate position, the condition tuple's coordinates are
    combined with the candidate's own and dimension-root defaults; the
    cell is evaluated on the scenario view, and ⊥ cells fail every
    comparison.
    """
    from repro.olap.missing import is_missing

    compare = _RELOP_FUNCS[expr.relop]
    condition_bindings = _resolve_condition(expr.condition, context, "Filter")
    kept: list[tuple[Binding, ...]] = []
    for candidate in _as_set(expr.base, context):
        value = _condition_value(candidate, condition_bindings, context)
        if not is_missing(value) and compare(float(value), expr.threshold):
            kept.append(candidate)
    return kept


def _condition_value(
    candidate: tuple[Binding, ...],
    condition_bindings: list[Binding],
    context: _Context,
):
    """Cell value for a Filter/Order condition at a candidate position.

    Condition probes count against the query budget; a breach here raises
    (axis resolution has no meaningful partial result — see
    :mod:`repro.mdx.budget`).
    """
    if context.tracker is not None:
        context.tracker.charge_cell_or_raise("axis resolution")
    inject_io_fault(FP_MDX_CELL)
    defaults = {d.name: d.root.name for d in context.schema.dimensions}
    coords = dict(defaults)
    coords.update({dim: coord for dim, coord, _ in condition_bindings})
    coords.update({dim: coord for dim, coord, _ in candidate})
    return context.view.effective_value(context.schema.address(**coords))


def _resolve_condition(
    condition: TupleExpr, context: _Context, what: str
) -> list[Binding]:
    bindings: list[Binding] = []
    for path in condition.members:
        expanded = _member_bindings(path, context)
        if len(expanded) != 1:
            raise MdxEvaluationError(
                f"{what} condition component {path.display()} is ambiguous"
            )
        bindings.append(expanded[0])
    return bindings


def _order(expr: OrderExpr, context: _Context) -> list[tuple[Binding, ...]]:
    """Order(set, (tuple), ASC|DESC): sort by cell value, ⊥ last."""
    from repro.olap.missing import is_missing

    condition_bindings = _resolve_condition(expr.condition, context, "Order")
    candidates = _as_set(expr.base, context)
    keyed = []
    for position, candidate in enumerate(candidates):
        value = _condition_value(candidate, condition_bindings, context)
        missing = is_missing(value)
        sort_value = 0.0 if missing else float(value)
        if expr.descending:
            sort_value = -sort_value
        # ⊥ sorts after every real value; ties keep input order.
        keyed.append(((missing, sort_value, position), candidate))
    keyed.sort(key=lambda pair: pair[0])
    return [candidate for _, candidate in keyed]


def _member_bindings(path: MemberPath, context: _Context) -> list[Binding]:
    named = context.warehouse.named_set(path.parts[-1])
    if named is not None and len(path.parts) == 1:
        bindings: list[Binding] = []
        for name in named.members:
            dim, member = context.warehouse.resolve_member((name,))
            bindings.extend(context.expand_member(dim, member, ()))
        return bindings
    dim, member = context.warehouse.resolve_member(path.parts)
    ancestors = path.parts[:-1]
    ancestors = tuple(a for a in ancestors if a != dim.name)
    return context.expand_member(dim, member, ancestors)


def _children(path: MemberPath, context: _Context) -> list[tuple[Binding, ...]]:
    named = context.warehouse.named_set(path.parts[-1])
    if named is not None:
        bindings: list[Binding] = []
        for name in named.members:
            dim, member = context.warehouse.resolve_member((name,))
            bindings.extend(context.expand_member(dim, member, ()))
        return [(b,) for b in bindings]
    dim, member = context.warehouse.resolve_member(path.parts)
    result: list[tuple[Binding, ...]] = []
    for child in member.children:
        for binding in context.expand_member(dim, child, ()):
            result.append((binding,))
    return result


def _members(path: MemberPath, context: _Context) -> list[tuple[Binding, ...]]:
    dim, member = context.warehouse.resolve_member(path.parts)
    result: list[tuple[Binding, ...]] = []
    for descendant in member.descendants(include_self=True):
        for binding in context.expand_member(dim, descendant, ()):
            result.append((binding,))
    return result


def _levels_members(
    expr: LevelsMembersExpr, context: _Context
) -> list[tuple[Binding, ...]]:
    dim, member = context.warehouse.resolve_member(expr.base.parts)
    result: list[tuple[Binding, ...]] = []
    for descendant in member.descendants(include_self=True):
        if descendant.level != expr.level:
            continue
        for binding in context.expand_member(dim, descendant, ()):
            result.append((binding,))
    return result


def _descendants(
    expr: DescendantsExpr, context: _Context
) -> list[tuple[Binding, ...]]:
    dim, member = context.warehouse.resolve_member(expr.base.parts)
    base_depth = member.depth
    flag = expr.flag
    want_depth = base_depth + expr.depth

    def keep(node: Member) -> bool:
        distance = node.depth
        if flag == "self":
            return distance == want_depth
        if flag == "self_and_after":
            return distance >= want_depth
        if flag == "after":
            return distance > want_depth
        if flag == "self_and_before":
            return distance <= want_depth
        if flag == "before":
            return distance < want_depth
        raise MdxEvaluationError(f"unknown Descendants flag {expr.flag!r}")

    result: list[tuple[Binding, ...]] = []
    for node in member.descendants(include_self=True):
        if not keep(node):
            continue
        for binding in context.expand_member(dim, node, ()):
            result.append((binding,))
    return result


def _axis_tuples(
    axis: AxisSpec, context: _Context
) -> list[AxisTuple]:
    tuples = _as_set(axis.expr, context)
    property_dims = [p.parts[-1] for p in axis.properties]
    result: list[AxisTuple] = []
    for bindings in tuples:
        coordinates = tuple((dim, coord) for dim, coord, _ in bindings)
        labels = tuple(label for _, _, label in bindings)
        properties = []
        for property_dim in property_dims:
            for dim, coord, _ in bindings:
                if dim == property_dim:
                    properties.append(
                        (property_dim, context.property_value(coord, property_dim))
                    )
                    break
        result.append(AxisTuple(coordinates, labels, tuple(properties)))
    return result


def evaluate_query(
    warehouse,
    query: MdxQuery,
    analyze: bool = True,
    budget: "QueryBudget | None" = None,
) -> MdxResult:
    """Evaluate a parsed query against a warehouse.

    With ``analyze=True`` (the default) the static analyzer runs first and
    error-level findings abort evaluation with
    :class:`~repro.errors.MdxAnalysisError` before any cube data is read;
    ``analyze=False`` is the escape hatch that goes straight to execution.

    A ``budget`` (:class:`~repro.mdx.budget.QueryBudget`) bounds the work:
    on breach during cell evaluation the result is *partial* — remaining
    cells are ⊥ and ``result.degradations`` is non-empty.  Degraded
    results skip NON EMPTY pruning so the ⊥-marked positions stay visible.
    """
    if analyze:
        with trace_span("mdx.analyze"):
            from repro.analysis.query_analyzer import analyze_query
            from repro.errors import MdxAnalysisError

            report = analyze_query(warehouse, query)
        if report.has_errors:
            raise MdxAnalysisError(report)
    if not query.axes:
        raise MdxEvaluationError("a query needs at least one axis")
    if len(query.axes) > 2:
        raise MdxEvaluationError(
            "only COLUMNS and ROWS axes are supported in this implementation"
        )
    seen_axes: set[str] = set()
    for axis in query.axes:
        if axis.axis in seen_axes:
            raise MdxEvaluationError(
                f"axis {axis.axis!r} is bound more than once"
            )
        seen_axes.add(axis.axis)
    warehouse.check_cube_name(query.cube)
    with trace_span("mdx.scenario") as scenario_span:
        context = _Context(warehouse, query, budget)
        if scenario_span is not None and context.scenarios:
            scenario_span.set(scenarios=len(context.scenarios))

    with trace_span("mdx.axes") as axes_span:
        by_axis = {axis.axis: axis for axis in query.axes}
        if "columns" not in by_axis:
            raise MdxEvaluationError("a query must place a set ON COLUMNS")
        columns = _axis_tuples(by_axis["columns"], context)
        rows = (
            _axis_tuples(by_axis["rows"], context)
            if "rows" in by_axis
            else [AxisTuple((), ())]
        )

        slicer: dict[str, str] = {}
        if query.slicer is not None:
            for binding_tuple in _as_set(query.slicer, context):
                for dim, coord, _ in binding_tuple:
                    slicer[dim] = coord
        if axes_span is not None:
            axes_span.set(columns=len(columns), rows=len(rows))

    from repro.olap.missing import MISSING, is_missing

    defaults = {d.name: d.root.name for d in context.schema.dimensions}
    tracker = context.tracker
    stats = dict(context.scenario_stats)
    with trace_span("mdx.cells") as cells_span:
        if perf_config.engine_enabled():
            from repro.perf.batch import evaluate_grid

            base_coords = dict(defaults)
            base_coords.update(slicer)
            cells, cells_skipped, grid_stats = evaluate_grid(
                context.view,
                context.schema,
                base_coords,
                rows,
                columns,
                tracker,
                FP_MDX_CELL,
            )
            stats.update(grid_stats)
        else:
            cells = []
            cells_skipped = 0
            cells_evaluated = 0
            for row in rows:
                row_cells: list[object] = []
                for column in columns:
                    # Graceful degradation: once the budget is breached,
                    # every remaining cell is ⊥ — cheap, so the grid shape
                    # survives.
                    if tracker is not None and not tracker.charge_cell():
                        row_cells.append(MISSING)
                        cells_skipped += 1
                        continue
                    inject_io_fault(FP_MDX_CELL)
                    cells_evaluated += 1
                    coords = dict(defaults)
                    coords.update(slicer)
                    coords.update(dict(row.coordinates))
                    coords.update(dict(column.coordinates))
                    address = context.schema.address(**coords)
                    row_cells.append(context.view.effective_value(address))
                cells.append(row_cells)
            stats["cells_evaluated"] = cells_evaluated
            stats["cells_skipped"] = cells_skipped
        if cells_span is not None:
            cells_span.set(
                evaluated=stats.get("cells_evaluated", 0),
                skipped=cells_skipped,
            )

    with trace_span("mdx.finalize"):
        degradations = []
        if tracker is not None and tracker.breached is not None:
            degradations.append(tracker.degradation(cells_skipped))
            # Skip NON EMPTY pruning: an all-⊥ row produced by the budget
            # cut must stay visible as partial, not vanish as empty.
            return MdxResult(
                columns=columns,
                rows=rows,
                cells=cells,
                degradations=degradations,
                stats=stats,
            )

        if "rows" in by_axis and by_axis["rows"].non_empty:
            keep = [
                i
                for i, row_cells in enumerate(cells)
                if any(not is_missing(v) for v in row_cells)
            ]
            rows = [rows[i] for i in keep]
            cells = [cells[i] for i in keep]
        if by_axis["columns"].non_empty:
            keep = [
                j
                for j in range(len(columns))
                if any(not is_missing(row_cells[j]) for row_cells in cells)
            ]
            columns = [columns[j] for j in keep]
            cells = [[row_cells[j] for j in keep] for row_cells in cells]
        return MdxResult(columns=columns, rows=rows, cells=cells, stats=stats)


def execute(
    warehouse,
    text: str,
    analyze: bool = True,
    budget: "QueryBudget | None" = None,
) -> MdxResult:
    """Parse and evaluate extended-MDX text."""
    with trace_span("mdx.parse"):
        query = parse_query(text)
    return evaluate_query(warehouse, query, analyze=analyze, budget=budget)
