"""AST for the extended MDX dialect.

Set-valued expressions evaluate to lists of *tuples*; a tuple is a mapping
from dimension name to a coordinate.  Member paths keep their raw part
lists (``Organization.[FTE].[Joe]`` → ``("Organization", "FTE", "Joe")``)
and are resolved against the warehouse by the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mdx.span import SourceSpan

__all__ = [
    "SetExpr",
    "MemberPath",
    "TupleExpr",
    "SetLiteral",
    "FilterExpr",
    "OrderExpr",
    "ChildrenExpr",
    "MembersExpr",
    "LevelsMembersExpr",
    "DescendantsExpr",
    "CrossJoinExpr",
    "UnionExpr",
    "HeadExpr",
    "TailExpr",
    "AxisSpec",
    "PerspectiveClause",
    "ChangeSpec",
    "ChangesClause",
    "MdxQuery",
]


class SetExpr:
    """Base class for set-valued expressions."""


@dataclass(frozen=True)
class MemberPath(SetExpr):
    """A (possibly dotted) member reference, e.g. Organization.[FTE].[Joe].

    ``span`` is the source position of the first path component; it is
    excluded from equality/hashing so paths still compare by content.
    """

    parts: tuple[str, ...]
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    @property
    def leaf_name(self) -> str:
        return self.parts[-1]

    def display(self) -> str:
        return ".".join(f"[{p}]" for p in self.parts)


@dataclass(frozen=True)
class TupleExpr(SetExpr):
    """A tuple of member references: ([Current], [Local], ...)."""

    members: tuple[MemberPath, ...]


@dataclass(frozen=True)
class SetLiteral(SetExpr):
    """{ elem, elem, ... } — elements are any set expressions."""

    elements: tuple[SetExpr, ...]


@dataclass(frozen=True)
class ChildrenExpr(SetExpr):
    """m.Children — hierarchy children, or contents of a named set."""

    base: MemberPath


@dataclass(frozen=True)
class MembersExpr(SetExpr):
    """d.Members — every member of a dimension (or below a member)."""

    base: MemberPath


@dataclass(frozen=True)
class LevelsMembersExpr(SetExpr):
    """d.Levels(n).Members — members of a dimension at level n (0=leaves)."""

    base: MemberPath
    level: int


@dataclass(frozen=True)
class DescendantsExpr(SetExpr):
    """Descendants(m, depth, flag) — Fig. 10 uses
    ``Descendants([Period], 1, self_and_after)``."""

    base: MemberPath
    depth: int = 0
    flag: str = "self"


@dataclass(frozen=True)
class CrossJoinExpr(SetExpr):
    left: SetExpr
    right: SetExpr


@dataclass(frozen=True)
class UnionExpr(SetExpr):
    left: SetExpr
    right: SetExpr


@dataclass(frozen=True)
class HeadExpr(SetExpr):
    base: SetExpr
    count: int


@dataclass(frozen=True)
class TailExpr(SetExpr):
    base: SetExpr
    count: int


@dataclass(frozen=True)
class FilterExpr(SetExpr):
    """Filter(set, (m1, m2, ...) relop number) — keeps set positions whose
    cell value under the condition tuple satisfies the comparison.  This is
    the MDX surface form of the paper's value-predicate selection
    (σ with value restrictions, Sec. 4.1)."""

    base: SetExpr
    condition: TupleExpr
    relop: str  # one of < <= > >= = <>
    threshold: float


@dataclass(frozen=True)
class OrderExpr(SetExpr):
    """Order(set, (tuple) [, ASC|DESC]) — sort set positions by the cell
    value under the condition tuple.  ⊥ cells sort last in either
    direction (they have no value to compare)."""

    base: SetExpr
    condition: TupleExpr
    descending: bool = False


@dataclass(frozen=True)
class AxisSpec:
    """One query axis: a set expression, its axis name, and display
    properties (``DIMENSION PROPERTIES [Department]``)."""

    expr: SetExpr
    axis: str  # "columns" | "rows" | "axis2", ...
    properties: tuple[MemberPath, ...] = ()
    #: NON EMPTY: drop axis positions whose cells are all ⊥
    non_empty: bool = False
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PerspectiveClause:
    """WITH PERSPECTIVE {(p1), ..., (pk)} FOR <dim> <semantics> <mode>."""

    perspectives: tuple[str, ...]
    dimension: str
    semantics: str = "static"  # Semantics enum value name (lowered)
    mode: str = "non_visual"
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ChangeSpec:
    """One positive-change tuple (m, o, n, t)."""

    member: MemberPath
    old_parent: str
    new_parent: str
    moment: str
    #: when True, `member` denotes a set (e.g. [FTE].Children) and the
    #: change applies to each element (Sec. 3.4).
    expand: bool = False
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ChangesClause:
    """WITH CHANGES {(m, o, n, t), ...} FOR <dim> <mode>."""

    changes: tuple[ChangeSpec, ...]
    dimension: str | None = None
    mode: str = "non_visual"
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MdxQuery:
    axes: tuple[AxisSpec, ...]
    cube: tuple[str, ...]  # e.g. ("App", "Db")
    slicer: TupleExpr | None = None
    perspective: PerspectiveClause | None = None
    changes: ChangesClause | None = None
    #: query-scoped named sets: WITH SET [Name] AS {...}
    named_sets: tuple[tuple[str, SetExpr], ...] = ()
    #: span of the FROM-clause cube reference
    cube_span: SourceSpan | None = field(default=None, compare=False, repr=False)
