"""MDX result grids.

An :class:`MdxResult` is the two-axis rendering of a query (Fig. 3): column
tuples, row tuples, and a cell matrix.  ⊥ cells render as ``-`` in text
output, matching the paper's convention of showing meaningless
intersections as empty/null.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, TypeAlias

from repro.mdx.budget import Degradation
from repro.olap.missing import Missing, is_missing

__all__ = ["AxisTuple", "MdxResult"]

CellValue: TypeAlias = "float | Missing"


@dataclass(frozen=True)
class AxisTuple:
    """One position on a result axis: coordinates keyed by dimension."""

    coordinates: tuple[tuple[str, str], ...]  # ((dim, coord), ...)
    labels: tuple[str, ...]  # display labels, one per coordinate
    properties: tuple[tuple[str, str], ...] = ()  # (property dim, value)

    def coordinate(self, dim: str) -> str | None:
        for name, coord in self.coordinates:
            if name == dim:
                return coord
        return None

    def label(self) -> str:
        parts = list(self.labels)
        parts.extend(value for _, value in self.properties)
        return " / ".join(parts)


@dataclass
class MdxResult:
    """A rendered query result."""

    columns: list[AxisTuple]
    rows: list[AxisTuple]
    cells: list[list[CellValue]] = field(default_factory=list)
    #: structured records of work the evaluator gave up on (query-budget
    #: breaches); empty for a complete result
    degradations: list[Degradation] = field(default_factory=list)
    #: per-query engine counters (scenario-cache hits/misses/invalidations,
    #: rollup-index activity, cell counts); see docs/performance.md
    stats: dict[str, int] = field(default_factory=dict)
    #: :class:`~repro.obs.profile.QueryProfile` when the query ran under
    #: tracing (``repro query --profile``); ``None`` otherwise.  Typed
    #: loosely to keep this module free of engine imports.
    profile: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.columns))

    @property
    def is_partial(self) -> bool:
        """True when some cells were skipped (⊥) under a query budget."""
        return bool(self.degradations)

    def cell(self, row: int, column: int) -> CellValue:
        return self.cells[row][column]

    def cell_by_labels(self, row_label: str, column_label: str) -> CellValue:
        row_index = self._find(self.rows, row_label)
        column_index = self._find(self.columns, column_label)
        return self.cells[row_index][column_index]

    @staticmethod
    def _find(axis: Sequence[AxisTuple], label: str) -> int:
        for index, axis_tuple in enumerate(axis):
            if axis_tuple.label() == label or label in axis_tuple.labels:
                return index
        raise KeyError(f"no axis position labelled {label!r}")

    def row_labels(self) -> list[str]:
        return [r.label() for r in self.rows]

    def column_labels(self) -> list[str]:
        return [c.label() for c in self.columns]

    def to_records(self) -> list[dict[str, object]]:
        """Flatten the grid into one dict per cell (for DataFrame-style
        consumption).  ⊥ cells are represented as ``None``; coordinate
        columns are keyed by dimension name."""
        records: list[dict[str, object]] = []
        for row, row_cells in zip(self.rows, self.cells):
            for column, value in zip(self.columns, row_cells):
                record: dict[str, object] = {}
                for dim, coord in row.coordinates + column.coordinates:
                    record[dim] = coord
                for property_dim, property_value in row.properties:
                    record[f"{property_dim} (property)"] = property_value
                record["value"] = None if is_missing(value) else float(value)
                records.append(record)
        return records

    def to_csv(self, missing: str = "") -> str:
        """Comma-separated rendering: header of column labels, one line per
        row, values quoted only when needed."""

        def quote(text: str) -> str:
            if "," in text or '"' in text:
                return '"' + text.replace('"', '""') + '"'
            return text

        def fmt(value: CellValue) -> str:
            if is_missing(value):
                return missing
            return repr(float(value))

        lines = [
            ",".join([""] + [quote(label) for label in self.column_labels()])
        ]
        for axis_tuple, row_cells in zip(self.rows, self.cells):
            lines.append(
                ",".join(
                    [quote(axis_tuple.label())]
                    + [fmt(value) for value in row_cells]
                )
            )
        return "\n".join(lines)

    def to_text(self, width: int = 12, missing: str = "-") -> str:
        """Spreadsheet-style rendering (Fig. 3)."""

        def fmt(value: CellValue) -> str:
            if is_missing(value):
                return missing
            if float(value).is_integer():
                return str(int(value))
            return f"{float(value):.2f}"

        row_header_width = max(
            [len(label) for label in self.row_labels()] + [0]
        )
        header = " " * row_header_width + " | " + " | ".join(
            label.rjust(width) for label in self.column_labels()
        )
        lines = [header, "-" * len(header)]
        for axis_tuple, row_cells in zip(self.rows, self.cells):
            rendered = " | ".join(fmt(v).rjust(width) for v in row_cells)
            lines.append(f"{axis_tuple.label().ljust(row_header_width)} | {rendered}")
        for degradation in self.degradations:
            lines.append(
                f"[partial: {degradation.detail}; "
                f"{degradation.cells_skipped} cell(s) returned as {missing}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MdxResult({len(self.rows)} rows x {len(self.columns)} columns)"
