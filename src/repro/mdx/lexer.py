"""Tokenizer for the extended MDX dialect (Sec. 3.2 and Fig. 10).

Token kinds:

* ``name`` — bare identifiers (``Organization``, ``self_and_after``) and
  bracketed names (``[BU Version_1]``, ``[EmployeesWithAtleastOneMove-Set1]``);
  bracketed names may contain anything but ``]``.
* ``number`` — integer or decimal literals.
* ``punct`` — one of ``( ) { } , .``.

Keywords are *not* a separate kind: the parser matches names
case-insensitively where the grammar expects a keyword, so member names
that collide with keywords still work when bracketed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MdxSyntaxError

__all__ = ["Token", "tokenize"]

_PUNCT = set("(){},.")


@dataclass(frozen=True)
class Token:
    kind: str  # "name" | "number" | "punct" | "eof"
    value: str
    line: int
    column: int
    bracketed: bool = False

    def matches_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword match; bracketed names never match."""
        return (
            self.kind == "name"
            and not self.bracketed
            and self.value.upper() == keyword.upper()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize MDX text; raises :class:`MdxSyntaxError` on bad input."""
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        if ch in "<>=":
            # Relational operators (used by Filter conditions): one of
            # <  >  =  <=  >=  <>
            if ch in "<>" and i + 1 < n and text[i + 1] in "=>":
                op = ch + text[i + 1]
                i += 2
                column += 2
            else:
                op = ch
                i += 1
                column += 1
            tokens.append(Token("punct", op, line, column - len(op)))
            continue
        if ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise MdxSyntaxError("unterminated '[' name", line, column)
            value = text[i + 1 : end].strip()
            if not value:
                raise MdxSyntaxError("empty bracketed name", line, column)
            tokens.append(Token("name", value, line, column, bracketed=True))
            column += end - i + 1
            i = end + 1
            continue
        if ch.isdigit():
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            value = text[start:i]
            if value.count(".") > 1:
                raise MdxSyntaxError(f"bad number {value!r}", line, column)
            tokens.append(Token("number", value, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_-%"):
                i += 1
            tokens.append(Token("name", text[start:i], line, column))
            column += i - start
            continue
        raise MdxSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
