"""The extended MDX query language (Sec. 3.2, Fig. 10).

Lexer, parser, AST, and evaluator for classic MDX (SELECT / ON COLUMNS /
ON ROWS / FROM / WHERE with CrossJoin, Union, Children, Members,
Descendants, Levels, Head, Tail, DIMENSION PROPERTIES) extended with the
paper's ``WITH PERSPECTIVE`` and ``WITH CHANGES`` clauses.
"""

from repro.mdx.ast_nodes import MdxQuery, PerspectiveClause, ChangesClause
from repro.mdx.budget import BudgetTracker, Degradation, QueryBudget
from repro.mdx.evaluator import evaluate_query, execute
from repro.mdx.lexer import tokenize
from repro.mdx.parser import parse_query
from repro.mdx.result import AxisTuple, MdxResult

__all__ = [
    "MdxQuery",
    "PerspectiveClause",
    "ChangesClause",
    "BudgetTracker",
    "Degradation",
    "QueryBudget",
    "evaluate_query",
    "execute",
    "tokenize",
    "parse_query",
    "AxisTuple",
    "MdxResult",
]
