"""The warehouse facade: schema + data + named sets + the query entry point.

A :class:`Warehouse` bundles everything a client needs: the cube schema
(with its varying-dimension registry), the base cube, named sets (the
``[EmployeesWithAtleastOneMove-Set1]`` style sets used in Fig. 10), and
``query()`` — the extended-MDX front door.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import (
    AmbiguousMemberError,
    MdxEvaluationError,
    SchemaError,
    UnknownMemberError,
)
from repro.faults import FAULTS
from repro.lint.lockdep import make_lock
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import TRACER
from repro.olap.cube import Cube
from repro.olap.dimension import Dimension, Member
from repro.olap.instances import VaryingDimension
from repro.olap.schema import CubeSchema
from repro.perf.scenario_cache import ScenarioCache

__all__ = ["NamedSet", "Warehouse"]


@dataclass(frozen=True)
class NamedSet:
    """A named collection of member names (all from one dimension)."""

    name: str
    members: tuple[str, ...]


class Warehouse:
    """A queryable OLAP warehouse.

    Parameters
    ----------
    schema:
        The cube schema.
    cube:
        The base cube (leaf data; materialised aggregates optional).
    name:
        The cube's canonical name, accepted in ``FROM`` clauses.
    aliases:
        Additional names (each component of a dotted ``FROM`` reference is
        checked against name+aliases; ``[App].[Db]`` works by aliasing both).
    """

    def __init__(
        self,
        schema: CubeSchema,
        cube: Cube,
        name: str = "Warehouse",
        aliases: Iterable[str] = (),
    ) -> None:
        if cube.schema is not schema:
            raise SchemaError("cube and warehouse must share one schema object")
        self.schema = schema
        self.cube = cube
        self.name = name
        self.aliases = set(aliases)
        self._named_sets: dict[str, NamedSet] = {}
        #: LRU of applied what-if scenarios keyed by fingerprint chain;
        #: entries are invalidated by the cube's mutation version (see
        #: :mod:`repro.perf.scenario_cache`)
        self.scenario_cache = ScenarioCache()
        #: per-warehouse metrics: query counters/latency histogram plus
        #: pull-based collectors over the engine cache stats
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(
            "scenario_cache", self.scenario_cache.stats.snapshot
        )
        self.metrics.register_collector(
            "rollup_index", self._rollup_index_stats
        )
        #: threshold-gated ring buffer of the slowest queries (always on)
        self.slow_log = SlowQueryLog()
        # one cached snapshot per version (see snapshot()); guarded so two
        # concurrent first-snapshots of a version don't copy the cube twice
        self._snapshot_lock = make_lock("Warehouse._snapshot_lock", reentrant=False)
        self._snapshot_cache: "object | None" = None
        #: durable scenario catalog, bound via attach_catalog()
        self._catalog: "object | None" = None

    # -- durable scenarios --------------------------------------------------------

    def attach_catalog(self, root, **options):
        """Open (and recover) a durable scenario catalog rooted at
        ``root``, bound to this warehouse's base cube.

        Returns the :class:`~repro.catalog.ScenarioCatalog`; it is also
        available as :attr:`catalog` afterwards, and its scenario/byte
        counters join this warehouse's metrics collectors.  Opening *is*
        recovery — check ``warehouse.catalog.recovery`` for what a crash
        left behind.
        """
        from repro.catalog import ScenarioCatalog

        catalog = ScenarioCatalog(root, base=self.cube, **options)
        self._catalog = catalog
        self.metrics.register_collector("catalog", catalog.stats)
        return catalog

    @property
    def catalog(self):
        """The attached :class:`~repro.catalog.ScenarioCatalog`, or
        ``None`` before :meth:`attach_catalog`."""
        return self._catalog

    def snapshot(self):
        """An immutable read view pinned to the current cube version.

        Returns a :class:`~repro.service.snapshot.WarehouseSnapshot` — a
        queryable warehouse whose cube is a *frozen* copy taken under the
        cube's write lock, so it can never contain a torn mutation.
        Queries against the snapshot are repeatable: the same query always
        produces the same grid, no matter what writers do to the live cube
        meanwhile.  Snapshots are cached per version, so in a read-mostly
        workload every query between two mutations shares one copy (and
        its rollup index).  Mutating a snapshot's cube raises
        :class:`~repro.errors.SnapshotImmutableError`.
        """
        from repro.service.snapshot import WarehouseSnapshot

        with self._snapshot_lock:
            cached = self._snapshot_cache
            if (
                isinstance(cached, WarehouseSnapshot)
                and cached.version == self.cube.version
                and cached.origin is self
            ):
                return cached
            snapshot = WarehouseSnapshot(self, self.cube.frozen_copy())
            self._snapshot_cache = snapshot
            return snapshot

    def _rollup_index_stats(self) -> dict[str, int]:
        """Rollup-index cache counters — empty until the index is built
        (the collector must not force a build)."""
        index = self.cube._rollup_index
        return index.stats.snapshot() if index is not None else {}

    # -- named sets ---------------------------------------------------------------

    def define_named_set(self, name: str, members: Sequence[str]) -> NamedSet:
        """Define (or replace) a named set of member names."""
        for member in members:
            self.resolve_member((member,))  # validates existence
        named = NamedSet(name, tuple(members))
        self._named_sets[name] = named
        return named

    def named_set(self, name: str) -> NamedSet | None:
        return self._named_sets.get(name)

    def named_sets(self) -> list[NamedSet]:
        return list(self._named_sets.values())

    # -- member resolution ----------------------------------------------------------

    def resolve_member(self, parts: Sequence[str]) -> tuple[Dimension, Member]:
        """Resolve a dotted member path to (dimension, member).

        The first component may be a dimension name; intermediate
        components must exist in the dimension (they are *not* required to
        be current hierarchy ancestors — ``Organization.[PTE].[Joe]`` is a
        valid reference to an instance of Joe under PTE even though the
        skeleton has Joe under FTE; instance filtering happens at set
        expansion).
        """
        if not parts:
            raise MdxEvaluationError("empty member path")
        candidates: list[Dimension]
        rest = list(parts)
        first_dim = next(
            (d for d in self.schema.dimensions if d.name == parts[0]), None
        )
        if first_dim is not None and len(parts) > 1:
            candidates = [first_dim]
            rest = list(parts[1:])
        elif first_dim is not None and len(parts) == 1:
            return first_dim, first_dim.root
        else:
            candidates = list(self.schema.dimensions)
        leaf = rest[-1]
        matches = [d for d in candidates if leaf in d]
        if not matches:
            raise UnknownMemberError(f"unknown member {'.'.join(parts)!r}")
        if len(matches) > 1:
            names = [d.name for d in matches]
            raise AmbiguousMemberError(
                f"member {leaf!r} is ambiguous across dimensions {names}; "
                "qualify it with the dimension name"
            )
        dimension = matches[0]
        for intermediate in rest[:-1]:
            if intermediate not in dimension:
                raise UnknownMemberError(
                    f"path component {intermediate!r} does not exist in "
                    f"dimension {dimension.name!r}"
                )
        return dimension, dimension.member(leaf)

    # -- varying access ----------------------------------------------------------------

    def varying(self, dim_name: str) -> VaryingDimension:
        return self.schema.varying_dimension(dim_name)

    # -- querying ------------------------------------------------------------------------

    def check_cube_name(self, ref: Sequence[str]) -> None:
        """Validate a FROM-clause cube reference."""
        if not ref:
            raise MdxEvaluationError("empty cube reference")
        acceptable = {self.name} | self.aliases
        if not any(part in acceptable for part in ref):
            raise MdxEvaluationError(
                f"query addresses cube {'.'.join(ref)!r}; this warehouse is "
                f"{self.name!r}"
            )

    def query(self, text: str, analyze: bool = True, budget=None):
        """Run an extended-MDX query; returns an
        :class:`~repro.mdx.result.MdxResult`.

        The static analyzer (:mod:`repro.analysis`) runs first unless
        ``analyze=False``; error-level findings raise
        :class:`~repro.errors.MdxAnalysisError` before any data is read.

        ``budget`` (:class:`~repro.mdx.budget.QueryBudget`) bounds the
        evaluation: a wall-clock deadline and/or cell-evaluation cap.  On
        breach the query *degrades* instead of failing — the result is
        partial, unevaluated cells are ⊥, and ``result.degradations``
        carries a structured report of what was cut.

        Observability: the call is always wall-timed (metrics histogram +
        slow-query log); when the global tracer is enabled the evaluation
        runs under an ``mdx.query`` root span and the result carries a
        :class:`~repro.obs.profile.QueryProfile` (``result.profile``).
        """
        from repro.mdx.evaluator import execute

        span = TRACER.start("mdx.query") if TRACER.enabled else None
        fired_before = FAULTS.fired_counts()
        t0 = time.perf_counter()
        result = None
        error: "str | None" = None
        try:
            result = execute(self, text, analyze=analyze, budget=budget)
            return result
        except BaseException as exc:
            error = repr(exc)
            raise
        finally:
            wall_ms = (time.perf_counter() - t0) * 1000.0
            if span is not None:
                span.error = error
                TRACER.end(span)
            self._observe_query(text, wall_ms, result, error, fired_before, span)

    def _observe_query(
        self, text, wall_ms, result, error, fired_before, span
    ) -> None:
        """Post-query bookkeeping: metrics, slow log, profile attach."""
        fault_events = {
            name: fired - fired_before.get(name, 0)
            for name, fired in FAULTS.fired_counts().items()
            if fired - fired_before.get(name, 0)
        }
        partial = result is not None and bool(result.degradations)
        status = "error" if error is not None else (
            "partial" if partial else "ok"
        )
        self.metrics.counter("mdx_queries_total", status=status).inc()
        self.metrics.histogram("mdx_query_ms").observe(wall_ms)
        stats = dict(result.stats) if result is not None else {}
        self.slow_log.record(
            text,
            wall_ms,
            partial=partial,
            error=error,
            stats=stats,
        )
        if span is not None and result is not None:
            from repro.obs.profile import QueryProfile

            result.profile = QueryProfile.from_span(
                span,
                stats=stats,
                degradations=[d.to_dict() for d in result.degradations],
                fault_events=fault_events,
            )

    def analyze(self, text: str):
        """Statically analyze a query without executing it; returns a
        :class:`~repro.analysis.DiagnosticReport`."""
        from repro.analysis.query_analyzer import analyze_query

        return analyze_query(self, text)

    def explain(self, text: str) -> str:
        """EXPLAIN a query without filling its grid: the scenario
        pipeline, analyzer diagnostics, axis shapes, and rollup-index
        scope estimates (see :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_query

        return explain_query(self, text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warehouse({self.name!r}, {self.schema!r}, "
            f"{self.cube.n_leaf_cells} leaf cells)"
        )
