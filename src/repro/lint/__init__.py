"""reprolint: the project's self-hosted concurrency/hygiene linter.

Static side (``repro lint``): five AST checkers over ``src/`` —
lock-order (RPL1xx, against the hierarchy declared in
:mod:`repro.lint.lock_hierarchy`), unguarded shared-state writes
(RPL2xx), failpoint hygiene (RPL3xx), metrics/span hygiene (RPL4xx),
and error-taxonomy enforcement at public entry points (RPL5xx).

Dynamic side: the lockdep witness (:mod:`repro.lint.lockdep`), enabled
with ``REPRO_LOCKDEP=1``, which fails fast on lock-order inversions the
static pass cannot see.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import (
    RULE_CATALOG,
    LintFinding,
    LintReport,
    LintSeverity,
)
from repro.lint.runner import run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "LintFinding",
    "LintReport",
    "LintSeverity",
    "RULE_CATALOG",
    "run_lint",
]
