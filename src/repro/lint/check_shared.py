"""RPL201: unguarded writes to thread-shared state.

For every class registered in
:data:`~repro.lint.lock_hierarchy.THREAD_SHARED`, each assignment to a
guarded ``self.<attr>`` must be lexically inside ``with self.<lock>:``
(or in a method whose ``def`` carries ``# reprolint: locked``, meaning
every caller already holds the lock).  ``__init__``/``__post_init__``
are exempt: construction happens-before publication.
"""

from __future__ import annotations

import ast

from repro.lint.findings import LintFinding
from repro.lint.lock_hierarchy import THREAD_SHARED
from repro.lint.model import ProjectModel

__all__ = ["run"]

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _self_attr(node: ast.expr) -> "str | None":
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _WriteVisitor(ast.NodeVisitor):
    def __init__(self, class_name: str, method_name: str, lock_attr: str,
                 guarded: "frozenset[str]", path: str, locked: bool) -> None:
        self.class_name = class_name
        self.method_name = method_name
        self.lock_attr = lock_attr
        self.guarded = guarded
        self.path = path
        self.depth = 1 if locked else 0
        self.findings: list[LintFinding] = []

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        pushed = 0
        for item in node.items:
            if _self_attr(item.context_expr) == self.lock_attr:
                pushed += 1
            else:
                self.visit(item.context_expr)
        self.depth += pushed
        for statement in node.body:
            self.visit(statement)
        self.depth -= pushed

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, node)
            return
        if isinstance(target, ast.Subscript):
            # self._collectors[name] = ... mutates the guarded container
            self._check_target(target.value, node)
            return
        attr = _self_attr(target)
        if attr is not None and attr in self.guarded and self.depth == 0:
            self.findings.append(
                LintFinding.make(
                    "RPL201",
                    f"writes {self.class_name}.{attr} outside "
                    f"'with self.{self.lock_attr}:' "
                    f"(in {self.class_name}.{self.method_name})",
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    column=getattr(node, "col_offset", 0),
                    symbol=f"{self.class_name}.{attr}",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)


def run(model: ProjectModel) -> "list[LintFinding]":
    findings: list[LintFinding] = []
    for source in model.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            spec = THREAD_SHARED.get(node.name)
            if spec is None:
                continue
            guarded = frozenset(spec.guarded)
            for statement in node.body:
                if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if statement.name in _CONSTRUCTORS:
                    continue
                visitor = _WriteVisitor(
                    node.name,
                    statement.name,
                    spec.lock_attr,
                    guarded,
                    source.path,
                    locked=source.is_locked_def(statement),
                )
                for body_statement in statement.body:
                    visitor.visit(body_statement)
                findings.extend(visitor.findings)
    return findings
